// MiniSan static pass: lock-order deadlock prediction without running
// the program.
//
// Two workers take the same two mutexes in opposite orders. Whether
// the process actually deadlocks depends on the schedule — most runs
// sail through. The lint doesn't run anything: it abstractly
// interprets the bytecode, builds the lock-order graph (a -> b on one
// path, b -> a on another) and reports the cycle with the file:line of
// both acquire sites. The same pass flags a lock leak: an early
// return that skips the unlock.
#include <cstdio>

#include "analysis/analysis.hpp"
#include "vm/compiler.hpp"

using namespace dionea;

namespace {

constexpr const char* kInversion = R"(a = mutex()
b = mutex()

fn transfer()
  lock(a)
  lock(b)
  unlock(b)
  unlock(a)
end

fn audit()
  lock(b)
  lock(a)
  unlock(a)
  unlock(b)
end

t1 = spawn(transfer)
t2 = spawn(audit)
join(t1)
join(t2)
)";

constexpr const char* kLeak = R"(m = mutex()

fn risky(flag)
  lock(m)
  if flag
    return 0
  end
  unlock(m)
  return 1
end

risky(true)
)";

int lint(const char* source, const char* file) {
  auto proto = vm::compile_source(source, file);
  if (!proto.is_ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 proto.error().to_string().c_str());
    return 1;
  }
  analysis::Report report = analysis::lint_program(*proto.value());
  if (report.empty()) {
    std::puts("  (no findings — the lint missed the seeded bug)");
    return 1;
  }
  for (const analysis::Finding& finding : report.findings) {
    std::printf("  %s\n", finding.to_string().c_str());
  }
  return 0;
}

}  // namespace

int main() {
  std::puts("=== lock-order inversion (potential deadlock, no run) ===");
  if (lint(kInversion, "transfer.ml") != 0) return 1;

  std::puts("");
  std::puts("=== lock leak (early return skips the unlock) ===");
  if (lint(kLeak, "risky.ml") != 0) return 1;

  std::puts("");
  std::puts("the same reports come from DIONEA_LINT=1 at startup, or the");
  std::puts("console `lint` verb against a live process");
  return 0;
}
