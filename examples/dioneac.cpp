// dioneac — interactive debug client (the command shell of Fig. 2,
// headless). Attaches either to every process in a port file or to a
// single endpoint (a debug hub, or one direct server) and offers the
// Console command set; `help` lists commands.
//
//   dioneac [--port-file PATH | --connect PORT]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "client/console.hpp"
#include "support/temp_file.hpp"

using namespace dionea;

int main(int argc, char** argv) {
  std::string port_file = "./dionea.ports";
  int connect_port = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: dioneac [--port-file PATH | --connect PORT]\n");
      return 64;
    }
  }

  std::unique_ptr<client::Client> cc;
  if (connect_port > 0) {
    auto connected = client::Client::connect(
        static_cast<std::uint16_t>(connect_port), 3000);
    if (!connected.is_ok()) {
      std::fprintf(stderr, "dioneac: %s\n",
                   connected.error().to_string().c_str());
      return 69;
    }
    cc = std::move(connected).value();
    std::printf("connected to %s on port %d\n",
                cc->hub_mode() ? "hub" : "server", connect_port);
  } else {
    if (!file_exists(port_file)) {
      std::fprintf(stderr,
                   "dioneac: port file %s not found (start dioneas first)\n",
                   port_file.c_str());
      return 66;
    }
    cc = client::Client::discover(port_file);
    auto attached = cc->refresh(3000);
    if (!attached.is_ok()) {
      std::fprintf(stderr, "dioneac: %s\n",
                   attached.error().to_string().c_str());
      return 69;
    }
  }
  std::printf("attached to %zu process(es); `help` for commands\n",
              cc->session_count());

  client::Console console(*cc);
  std::string line;
  while (!console.quit_requested()) {
    std::fputs(console.prompt().c_str(), stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::fputs(console.execute(line).c_str(), stdout);
  }
  return 0;
}
