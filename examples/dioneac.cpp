// dioneac — interactive debug client (the command shell of Fig. 2,
// headless). Attaches to every process in the port file and offers the
// Console command set; `help` lists commands.
//
//   dioneac [--port-file PATH]
#include <cstdio>
#include <iostream>
#include <string>

#include "client/console.hpp"
#include "support/temp_file.hpp"

using namespace dionea;

int main(int argc, char** argv) {
  std::string port_file = "./dionea.ports";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else {
      std::fprintf(stderr, "usage: dioneac [--port-file PATH]\n");
      return 64;
    }
  }
  if (!file_exists(port_file)) {
    std::fprintf(stderr,
                 "dioneac: port file %s not found (start dioneas first)\n",
                 port_file.c_str());
    return 66;
  }

  client::MultiClient mc(port_file);
  auto attached = mc.refresh(3000);
  if (!attached.is_ok()) {
    std::fprintf(stderr, "dioneac: %s\n",
                 attached.error().to_string().c_str());
    return 69;
  }
  std::printf("attached to %zu process(es); `help` for commands\n",
              mc.session_count());

  client::Console console(mc);
  std::string line;
  while (!console.quit_requested()) {
    std::fputs("(dionea) ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::fputs(console.execute(line).c_str(), stdout);
  }
  return 0;
}
