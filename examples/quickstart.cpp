// Quickstart: attach the Dionea-style debug server to a MiniLang
// program, set a breakpoint, inspect locals, single-step, continue —
// then watch the same session survive a fork() and control parent and
// child independently (the paper's core capability).
//
// Everything runs in one binary for demonstration: the debuggee VM on
// a worker thread, the client on the main thread. `dioneas` /
// `dioneac` show the same flow split across real processes.
#include <cstdio>
#include <thread>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "support/temp_file.hpp"
#include "vm/interp.hpp"

using namespace dionea;

namespace {

constexpr const char* kProgram = R"(fn fib(n)
  if n < 2
    return n
  end
  return fib(n - 1) + fib(n - 2)
end

value = fib(10)
puts("parent computed fib(10) = " + to_s(value))

pid = fork()
if pid == 0
  child_value = fib(12)
  puts("child computed fib(12) = " + to_s(child_value))
  exit(0)
end
status = waitpid(pid)
puts("child exited with " + to_s(status))
)";

int fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "quickstart: %s: %s\n", what, detail.c_str());
  return 1;
}

}  // namespace

int main() {
  auto tmp = TempDir::create("quickstart");
  if (!tmp.is_ok()) return fail("tempdir", tmp.error().to_string());
  std::string port_file = tmp.value().file("ports");

  // --- debuggee side: VM + in-process debug server ---
  vm::Interp interp;
  dbg::DebugServer server(
      interp.vm(),
      {.port_file = port_file,
       // Forked children park at their first line so the client can
       // adopt them before they run.
       .stop_forked_children = true,
       .stop_at_entry = true});
  server.register_source("quickstart.ml", kProgram);
  if (Status started = server.start(); !started.is_ok()) {
    return fail("server start", started.to_string());
  }
  std::printf("debug server listening on 127.0.0.1:%u\n", server.port());

  std::thread debuggee([&] {
    vm::RunResult result = interp.run_string(kProgram, "quickstart.ml");
    interp.finish(result);  // forked children _exit inside
  });

  // --- client side ---
  auto cc = client::Client::discover(port_file);
  if (auto n = cc->refresh(3000); !n.is_ok() || n.value() != 1) {
    return fail("attach", "no session");
  }
  client::Session* parent = cc->session(cc->sessions()[0]);
  std::printf("attached to debuggee pid %d\n", parent->pid());

  auto entry = parent->wait_stopped(5000);
  if (!entry.is_ok()) return fail("entry stop", entry.error().to_string());
  std::printf("stopped at entry: %s:%d\n", entry.value().file.c_str(),
              entry.value().line);

  // Breakpoint inside fib's base case.
  auto bp = parent->set_breakpoint("quickstart.ml", 3);
  if (!bp.is_ok()) return fail("breakpoint", bp.error().to_string());
  (void)parent->cont(entry.value().tid);

  auto hit = parent->wait_stopped(5000);
  if (!hit.is_ok()) return fail("breakpoint stop", hit.error().to_string());
  std::printf("hit breakpoint %d at %s:%d in %s()\n",
              hit.value().breakpoint_id, hit.value().file.c_str(),
              hit.value().line, hit.value().function.c_str());

  auto locals = parent->locals(hit.value().tid, 0);
  if (locals.is_ok()) {
    for (const auto& [name, value] : locals.value()) {
      std::printf("  local %s = %s\n", name.c_str(), value.c_str());
    }
  }
  auto frames = parent->frames(hit.value().tid);
  if (frames.is_ok()) {
    std::printf("  call stack depth: %zu\n", frames.value().size());
  }

  // Step out of fib, then drop the breakpoint and run free.
  (void)parent->finish(hit.value().tid);
  auto after = parent->wait_stopped(5000);
  if (after.is_ok()) {
    std::printf("finished out to %s:%d\n", after.value().file.c_str(),
                after.value().line);
  }
  (void)parent->clear_breakpoint(0);
  (void)parent->cont(after.is_ok() ? after.value().tid : hit.value().tid);

  // --- fork: adopt the child as a second, independent session ---
  auto forked = parent->wait_event("forked", 10'000);
  if (!forked.is_ok()) return fail("fork event", forked.error().to_string());
  int child_pid = static_cast<int>(forked.value().payload.get_int("child_pid"));
  auto child = cc->attach(child_pid, 5000);
  if (!child.is_ok()) return fail("child session", child.error().to_string());
  client::Session* child_s = cc->session(child.value());
  std::printf("adopted forked child pid %d as its own session (now %zu "
              "sessions on one client)\n",
              child_pid, cc->session_count());

  // The child parked at its first line; inspect it, then let it run.
  auto child_stop = child_s->wait_stopped(5000);
  if (!child_stop.is_ok()) {
    return fail("child stop", child_stop.error().to_string());
  }
  std::printf("child parked at %s:%d\n", child_stop.value().file.c_str(),
              child_stop.value().line);
  auto threads = child_s->threads();
  if (threads.is_ok()) {
    for (const auto& t : threads.value()) {
      std::printf("  child thread %lld (%s) at %s:%d\n",
                  static_cast<long long>(t.tid), t.state.c_str(),
                  t.file.c_str(), t.line);
    }
  }
  (void)child_s->cont(child_stop.value().tid);

  debuggee.join();
  server.stop();
  std::puts("quickstart done");
  return 0;
}
