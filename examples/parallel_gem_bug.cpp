// §6.4: the `parallel` gem 0.5.9 bug that Dionea exposed.
//
// "When Dionea debugs parallel programs using the version 0.5.9 of the
// parallel gem, where fork and IO.pipe operations take place
// interleaved by the threads that interact with the child processes,
// Dionea very often detects a concurrency error that rarely happens
// running without Dionea: the debuggee processes get into a deadlock
// situation due to the failure in closing input pipe of the child
// process."
//
// This demo runs the reproduced library three ways:
//   1. v0.5.9 on a quiet machine — the race usually does NOT fire
//      ("rarely happens");
//   2. v0.5.9 with the disturb-mode-style delay that stops every new
//      UE at birth — the leak window is forced open and the run
//      deadlocks (detected by timeout, children killed);
//   3. v0.5.10 under the same disturbance — the fd hygiene fix holds.
#include <cctype>
#include <cstdio>
#include <vector>

#include "mp/parallel.hpp"
#include "support/timing.hpp"

using namespace dionea;
using dionea::vm::Value;

namespace {

Value slow_upcase(const Value& value) {
  // A task slow enough that workers overlap in time.
  std::string out = value.as_str();
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  sleep_for_millis(30);
  return Value::str(out);
}

std::vector<Value> make_items() {
  std::vector<Value> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back(Value::str("task-" + std::to_string(i)));
  }
  return items;
}

void report(const char* label, const Result<std::vector<Value>>& outcome) {
  if (outcome.is_ok()) {
    std::printf("%-42s OK (%zu results)\n", label, outcome.value().size());
  } else {
    std::printf("%-42s %s\n", label, outcome.error().to_string().c_str());
  }
}

}  // namespace

int main() {
  std::vector<Value> items = make_items();

  mp::parallel::Options quiet;
  quiet.version = mp::parallel::Version::kV0_5_9;
  quiet.worker_count = 4;
  quiet.timeout_millis = 8000;
  quiet.disturb_delay_millis = 0;
  report("v0.5.9, quiet machine:",
         mp::parallel::map_in_processes(items, slow_upcase, quiet));

  mp::parallel::Options disturbed = quiet;
  disturbed.timeout_millis = 3000;
  disturbed.disturb_delay_millis = 120;  // disturb mode widens the window
  report("v0.5.9, disturb-mode interleaving:",
         mp::parallel::map_in_processes(items, slow_upcase, disturbed));

  mp::parallel::Options fixed = disturbed;
  fixed.version = mp::parallel::Version::kV0_5_10;
  fixed.timeout_millis = 8000;
  report("v0.5.10 (sequential forks + fd hygiene):",
         mp::parallel::map_in_processes(items, slow_upcase, fixed));

  std::puts("\nThe 0.5.9 deadlock: each child inherits copies of its "
            "siblings' pipe write-ends and never closes them, so no child "
            "ever sees EOF on its input pipe. 0.5.10 forks sequentially "
            "from the main thread and closes the copied-but-unused pipes.");
  return 0;
}
