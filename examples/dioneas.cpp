// dioneas — the debug server launcher (§6.1):
//
//   "First, we start Dionea server issuing
//        ruby bin/dioneas.rb path/to/debuggee/ruby/program.rb
//    ... once Dionea server has been started it waits until the client
//    connects to it."
//
// Usage:
//   dioneas [options] program.ml
//     --port-file PATH   port handoff file (default: ./dionea.ports)
//     --port N           fixed listener port (default: ephemeral)
//     --run              don't wait for a client; start immediately
//     --disturb          stop every new UE at birth (§6.4)
//
// Pair with `dioneac --port-file PATH` in another terminal.
#include <cstdio>
#include <cstring>
#include <string>

#include "debugger/server.hpp"
#include "mp/vm_bindings.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "vm/interp.hpp"

using namespace dionea;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dioneas [--port-file PATH] [--port N] [--run] "
               "[--disturb] program.ml\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  std::string port_file = "./dionea.ports";
  std::string program_path;
  long port = 0;
  bool wait_for_client = true;
  bool disturb = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      std::int64_t parsed = 0;
      if (!strings::parse_int(argv[++i], &parsed)) return usage();
      port = parsed;
    } else if (arg == "--run") {
      wait_for_client = false;
    } else if (arg == "--disturb") {
      disturb = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      program_path = arg;
    }
  }
  if (program_path.empty()) return usage();

  auto source = read_file(program_path);
  if (!source.is_ok()) {
    std::fprintf(stderr, "dioneas: %s\n", source.error().to_string().c_str());
    return 66;
  }

  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  dbg::DebugServer server(
      interp.vm(),
      {.port = static_cast<std::uint16_t>(port),
       .port_file = port_file,
       .disturb_mode = disturb,
       .stop_forked_children = disturb,
       // Waiting for the client = parking the main thread at its first
       // line until the client resumes it.
       .stop_at_entry = wait_for_client});
  server.register_source(program_path, source.value());
  if (Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "dioneas: %s\n", started.to_string().c_str());
    return 69;
  }
  std::fprintf(stderr,
               "dioneas: pid %d serving %s on 127.0.0.1:%u (port file %s)%s\n",
               static_cast<int>(::getpid()), program_path.c_str(),
               server.port(), port_file.c_str(),
               wait_for_client ? " — waiting for client" : "");

  vm::RunResult result = interp.run_string(source.value(), program_path);
  int code = interp.finish(result);
  server.stop();
  return code;
}
