// MiniSan dynamic pass: a seeded data race, caught regardless of how
// the GIL happened to interleave this particular run.
//
// Two threads bump `box[0]` in a read-modify-write loop. The GIL
// serializes each bytecode, so the accesses never overlap physically —
// but the hand-off between the read and the write is scheduler luck,
// and increments can be lost. Act 1 runs the program bare a few times:
// the total drifts below 2000. Act 2 runs it once with the detector
// enabled: the accesses are unordered by any real synchronization
// (thread start/join, unlock->lock, push->pop, signal->wake) and share
// no lock, so MiniSan reports the race even on a run that happened to
// produce 2000. Act 3 fixes it with a mutex and the report is empty.
#include <cstdio>

#include "analysis/analysis.hpp"
#include "vm/interp.hpp"

using namespace dionea;

namespace {

constexpr const char* kRacy = R"(box = [0]

fn bump()
  i = 0
  while i < 1000
    box[0] = box[0] + 1
    i = i + 1
  end
end

t1 = spawn(bump)
t2 = spawn(bump)
join(t1)
join(t2)
puts(box[0])
)";

// Same program, increments under the mutex. unlock->lock edges order
// the critical sections and the locksets intersect: no finding.
constexpr const char* kLocked = R"(box = [0]
m = mutex()

fn bump()
  i = 0
  while i < 1000
    lock(m)
    box[0] = box[0] + 1
    unlock(m)
    i = i + 1
  end
end

t1 = spawn(bump)
t2 = spawn(bump)
join(t1)
join(t2)
puts(box[0])
)";

int run(const char* source, const char* file) {
  vm::Interp interp;
  vm::RunResult result = interp.run_string(source, file);
  return interp.finish(result);
}

}  // namespace

int main() {
  std::puts("=== Act 1: the race, bare (totals drift under load) ===");
  for (int i = 0; i < 3; ++i) {
    if (run(kRacy, "race.ml") != 0) return 1;
  }

  std::puts("");
  std::puts("=== Act 2: same program under MiniSan (DIONEA_ANALYZE=1) ===");
  analysis::Engine& engine = analysis::Engine::instance();
  engine.reset();
  engine.enable();
  if (run(kRacy, "race.ml") != 0) return 1;
  analysis::Report report = engine.report();
  std::printf("observed %llu accesses, %llu sync events\n",
              static_cast<unsigned long long>(engine.accesses()),
              static_cast<unsigned long long>(engine.sync_events()));
  if (report.empty()) {
    std::puts("expected a data-race finding, got none");
    return 1;
  }
  std::printf("%s", report.to_string().c_str());

  std::puts("");
  std::puts("=== Act 3: increments under the mutex — report is clean ===");
  engine.reset();
  if (run(kLocked, "race_fixed.ml") != 0) return 1;
  report = engine.report();
  engine.disable();
  engine.reset();
  if (!report.empty()) {
    std::printf("unexpected findings:\n%s", report.to_string().c_str());
    return 1;
  }
  std::puts("no findings: every access pair is ordered or shares the lock");
  std::puts("race demo done");
  return 0;
}
