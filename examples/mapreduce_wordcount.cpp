// §6.3 / Fig. 8: debugging a MapReduce word-count whose workers are
// forked processes sharing input/output ipc queues.
//
// The demo suspends ONE worker (low-intrusive: only that process
// stops) and shows the pull-based queue re-balancing the jobs onto the
// free workers — "when every other process is stopped by break points
// ... an available child process takes over the jobs".
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "mapreduce/corpus.hpp"
#include "mp/vm_bindings.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "vm/interp.hpp"

using namespace dionea;

namespace {

constexpr int kWorkers = 4;

// Word count where each worker reports [pid, files_done, counts].
std::string program_text(const std::string& root) {
  return strings::format(R"(tasks = ipc_queue()
partials = ipc_queue()
for f in walk_files("%s")
  ipc_push(tasks, f)
end
w = 0
while w < %d
  ipc_push(tasks, nil)
  w = w + 1
end

fn worker_main(tasks, partials)
  counts = {}
  files_done = 0
  while true
    path = ipc_pop(tasks)
    if path == nil
      break
    end
    text = lower(read_file(path))
    for word in words(text)
      if is_alpha(word)
        counts[word] = get(counts, word, 0) + 1
      end
    end
    files_done = files_done + 1
  end
  ipc_push(partials, [getpid(), files_done, counts])
  return nil
end

pids = []
w = 0
while w < %d
  pid = fork()
  if pid == 0
    worker_main(tasks, partials)
    exit(0)
  end
  push(pids, pid)
  w = w + 1
end

total = {}
got = 0
while got < %d
  part = ipc_pop(partials)
  puts("worker pid=" + to_s(part[0]) + " processed " + to_s(part[1]) + " files")
  counts = part[2]
  for k in counts
    total[k] = get(total, k, 0) + counts[k]
  end
  got = got + 1
end
for p in pids
  waitpid(p)
end
puts("unique words: " + to_s(len(total)))
)",
                         root.c_str(), kWorkers, kWorkers, kWorkers);
}

}  // namespace

int main() {
  auto tmp = TempDir::create("mapreduce-demo");
  if (!tmp.is_ok()) return 1;
  auto corpus = mapreduce::Corpus::generate(mapreduce::rust_master_spec(),
                                            tmp.value().file("corpus"));
  if (!corpus.is_ok()) return 1;
  std::printf("corpus: %zu files (%lld bytes) under %s\n",
              corpus.value().files().size(),
              static_cast<long long>(corpus.value().bytes_written()),
              corpus.value().root().c_str());

  std::string port_file = tmp.value().file("ports");
  std::string program = program_text(corpus.value().root());

  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  dbg::DebugServer server(interp.vm(), {.port_file = port_file,
                                        .stop_forked_children = true});
  server.register_source("wordcount.ml", program);
  if (!server.start().is_ok()) return 1;

  std::thread debuggee([&] {
    vm::RunResult result = interp.run_string(program, "wordcount.ml");
    interp.finish(result);
  });

  auto cc = client::Client::discover(port_file);
  (void)cc->refresh(3000);
  // The parent runs in-process.
  cc->claim(cc->handle_for_pid(static_cast<int>(::getpid())));

  // Adopt all four workers as they stop at birth; resume all but the
  // first — that one stays suspended while its siblings work.
  int suspended_pid = 0;
  std::int64_t suspended_tid = 0;
  int adopted = 0;
  while (adopted < kWorkers) {
    auto worker_h = cc->attach_any(10'000);
    if (!worker_h.is_ok()) {
      std::fprintf(stderr, "worker adoption failed: %s\n",
                   worker_h.error().to_string().c_str());
      return 1;
    }
    client::Session* worker = cc->session(worker_h.value());
    auto stop = worker->wait_stopped(5000);
    if (!stop.is_ok()) return 1;
    ++adopted;
    if (suspended_pid == 0) {
      suspended_pid = worker->pid();
      suspended_tid = stop.value().tid;
      std::printf("worker %d SUSPENDED at birth (low-intrusive: everything "
                  "else keeps running)\n",
                  suspended_pid);
    } else {
      (void)worker->cont(stop.value().tid);
      std::printf("worker %d resumed\n", worker->pid());
    }
  }

  // Let the free workers drain most of the queue, then release the
  // suspended one so the program can finish.
  sleep_for_millis(600);
  std::printf("releasing suspended worker %d — expect it to have picked up "
              "~0 files while its siblings took over the jobs\n",
              suspended_pid);
  (void)cc->session(cc->handle_for_pid(suspended_pid))->cont(suspended_tid);

  debuggee.join();
  server.stop();
  std::puts("mapreduce demo done");
  return 0;
}
