# Known-bad ForkLint fixture: every hazard class, on purpose. The
# forklint gate asserts this program *fails* analysis (and the clean
# siblings pass), so a dataflow regression cannot turn the gate into
# a vacuous green. Never run this under load — read it.
#
# Hazard 1 (fork-under-lock): fork() while `m` is held. The child
# inherits a locked mutex whose owner thread does not exist there.
#
# Hazard 2 (fork-child-resource, pop): the child block pops `work`,
# which only the parent-side feeder thread pushes. After fork the
# feeder is gone; the pop blocks forever.
#
# Hazard 3 (fork-child-resource, join): the child block joins
# `feeder`, a thread spawned before the fork. Only the forking thread
# survives into the child; the join can never complete.
m = mutex()
work = queue()

fn feed()
  n = 0
  while n < 4
    push(work, n)
    n = n + 1
  end
end

feeder = spawn(feed)

fn child_block()
  item = pop(work)    # hazard 2: parent-fed queue
  join(feeder)        # hazard 3: parent-side thread
  puts(item)
  exit(0)
end

lock(m)
pid = fork(child_block)   # hazard 1: fork under `m`
unlock(m)
waitpid(pid)
join(feeder)
