# Locks and forks in one program, correctly sequenced: every critical
# section closes before fork(), and the child touches only its own
# state. The interesting part for ForkLint is what it must *not*
# flag — lock() ... unlock() followed by fork() is clean because the
# may-held set drains at the unlock.
counter = [0]
m = mutex()

fn bump(n)
  i = 0
  while i < n
    lock(m)
    counter[0] = counter[0] + 1
    unlock(m)
    i = i + 1
  end
end

t1 = spawn(bump, 50)
t2 = spawn(bump, 50)
join(t1)
join(t2)

lock(m)
snapshot = counter[0]
unlock(m)

pid = fork()
if pid == 0
  # Child: fresh work on inherited *values*, no parent-only handles.
  puts(snapshot)
  exit(0)
end
waitpid(pid)
puts("parent saw " + to_s(snapshot))
