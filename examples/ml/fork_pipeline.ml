# Thread pipeline, then a clean fork. The producer thread is joined —
# and the work queue fully drained — *before* fork(), so the child
# inherits no parent-only resources. ForkLint is clean here: the fork
# block pops a queue the child itself feeds.
jobs = queue()
results = queue()

fn produce()
  n = 0
  while n < 8
    push(jobs, n)
    n = n + 1
  end
  close(jobs)
end

producer = spawn(produce)
while true
  job = try_pop(jobs)
  if job == nil
    break
  end
  push(results, job * job)
end
join(producer)

fn child_work()
  # The child builds and drains its own queue: self-contained.
  own = queue()
  push(own, 41)
  push(own, 1)
  total = pop(own) + pop(own)
  puts(total)
  exit(0)
end

pid = fork(child_work)
waitpid(pid)
puts("pipeline done")
