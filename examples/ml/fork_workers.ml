# Fork-per-worker, done right: fork with no locks held, each child
# works on its own slice, the parent reaps every pid. ForkLint is
# clean on this program — it is the shape §5 of the paper debugs, not
# the shape it warns about.
fn work(n)
  i = 0
  total = 0
  while i < n
    total = total + i
    i = i + 1
  end
  return total
end

pids = []
k = 0
while k < 3
  pid = fork()
  if pid == 0
    work(100 * (k + 1))
    exit(0)
  end
  push(pids, pid)
  k = k + 1
end

j = 0
while j < 3
  waitpid(pids[j])
  j = j + 1
end
puts("reaped 3 workers")
