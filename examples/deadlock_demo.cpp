// §6.2 (Listings 5/6, Fig. 7): finding a cross-process deadlock.
//
// The program pushes into a Queue from a parent thread, but pops from
// a FORKED CHILD — and "Queue is inter-thread, not inter-process": the
// fork copies the (empty) queue, so the child's pop can never be
// satisfied.
//
// Act 1 runs it bare: the child dies with the stock
// `deadlock detected (fatal)` message and a traceback (Listing 6) —
// "detailed but not clear to find where the deadlock occurred".
// Act 2 runs it under the debugger: the child's debug server reports
// the exact thread, file and line that is blocked (Fig. 7), and keeps
// the process alive for inspection.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "client/client.hpp"
#include "debugger/server.hpp"
#include "support/temp_file.hpp"
#include "vm/interp.hpp"

using namespace dionea;

namespace {

// Listing 5, line for line (thread/queue/fork spelled MiniLang-style).
constexpr const char* kListing5 = R"(q = queue()

spawn(fn()
  puts("Inside thread -- PARENT")
  sleep(0.2)
  q.push(true)
end)

pid = fork(fn()
  q.pop()
  puts("In -- CHILD")
end)

st = waitpid(pid)
puts("parent observed child exit status " + to_s(st))
)";

}  // namespace

int main() {
  std::puts("=== Act 1: without the debugger (Listing 6) ===");
  {
    vm::Interp interp;
    vm::RunResult result = interp.run_string(kListing5, "deadlock.ml");
    interp.finish(result);
    // The child's fatal message and traceback appeared on stderr; the
    // parent itself completed (its thread pushed, nobody popped).
  }

  std::puts("");
  std::puts("=== Act 2: with Dionea attached (Fig. 7) ===");
  auto tmp = TempDir::create("deadlock-demo");
  if (!tmp.is_ok()) return 1;
  std::string port_file = tmp.value().file("ports");

  vm::Interp interp;
  // stop_forked_children: the child parks at its first line, so the
  // client is guaranteed to be attached before the deadlock develops.
  dbg::DebugServer server(interp.vm(),
                          {.port_file = port_file,
                           .stop_forked_children = true});
  server.register_source("deadlock.ml", kListing5);
  if (!server.start().is_ok()) return 1;

  std::thread debuggee([&] {
    vm::RunResult result = interp.run_string(kListing5, "deadlock.ml");
    interp.finish(result);
  });

  auto cc = client::Client::discover(port_file);
  if (auto n = cc->refresh(3000); !n.is_ok()) return 1;
  // The parent runs in-process.
  cc->claim(cc->handle_for_pid(static_cast<int>(::getpid())));

  // The fork happens quickly; adopt the child's session.
  auto child_h = cc->attach_any(5000);
  if (!child_h.is_ok()) {
    std::fprintf(stderr, "no child session: %s\n",
                 child_h.error().to_string().c_str());
    return 1;
  }
  client::Session* child = cc->session(child_h.value());
  std::printf("adopted child session pid %d\n", child->pid());

  // The child parked at its first line; resume it into the deadlock.
  auto birth = child->wait_stopped(5000);
  if (birth.is_ok()) {
    (void)child->cont(birth.value().tid);
  }

  // The child's debug server owns the deadlock and reports the exact
  // location instead of dying.
  auto deadlock = child->wait_event("deadlock", 5000);
  if (!deadlock.is_ok()) {
    std::fprintf(stderr, "no deadlock event: %s\n",
                 deadlock.error().to_string().c_str());
    return 1;
  }
  std::puts("Dionea shows the exact place where the deadlock occurs:");
  for (const auto& entry : deadlock.value().payload.at("threads").as_array()) {
    std::printf("  thread %lld blocked in %s at %s:%d\n",
                static_cast<long long>(entry.get_int("tid")),
                entry.get_string("note").c_str(),
                entry.get_string("file").c_str(),
                static_cast<int>(entry.get_int("line")));
  }

  // The process is still alive — inspect the blocked thread's stack,
  // then let everything wind down.
  auto deadlocked_tid = deadlock.value().payload.at("threads").as_array()[0]
                            .get_int("tid");
  auto frames = child->frames(deadlocked_tid);
  if (frames.is_ok()) {
    for (const auto& frame : frames.value()) {
      std::printf("    in %s at %s:%d\n", frame.function.c_str(),
                  frame.file.c_str(), frame.line);
    }
  }

  // Tear down: drop the child (it is deadlocked by design).
  int child_pid = child->pid();
  cc->drop(child_h.value());
  ::kill(child_pid, SIGKILL);
  debuggee.join();
  server.stop();
  std::puts("deadlock demo done");
  return 0;
}
