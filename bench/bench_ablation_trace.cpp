// Ablation A2 — cost decomposition of the debugging machinery:
//   * trace hook disarmed vs armed (the flag fork handler A toggles);
//   * armed with the idle fast path vs full per-line handling;
//   * per-fork cost of the fork-handler chain (handlers A/B/C plus the
//     VM's own sync-object pinning and child re-init).
#include <cstdio>

#include "bench_util.hpp"
#include "support/strings.hpp"

namespace {

using namespace dionea;
using namespace dionea::bench;

// Pure interpreter loop — statements dominated by dispatch, the
// worst case for per-line costs.
constexpr const char* kSpinProgram =
    "total = 0\n"
    "i = 0\n"
    "while i < 400000\n"
    "  total = total + i\n"
    "  i = i + 1\n"
    "end\n"
    "puts(total)";

double run_spin(DebugMode mode) {
  vm::Interp interp;
  interp.vm().set_output([](std::string_view) {});
  std::unique_ptr<TempDir> tmp;
  std::unique_ptr<dbg::DebugServer> server;
  std::unique_ptr<client::Session> session;
  if (mode != DebugMode::kNone) {
    auto created = TempDir::create("ablate-trace");
    DIONEA_CHECK(created.is_ok(), "tempdir");
    tmp = std::make_unique<TempDir>(std::move(created).value());
    dbg::DebugServer::Options options;
    options.port_file = tmp->file("ports");
    options.thorough_line_handling = mode == DebugMode::kThorough;
    server = std::make_unique<dbg::DebugServer>(interp.vm(), options);
    DIONEA_CHECK(server->start().is_ok(), "server");
    auto attached = client::Session::attach(server->port(), 5000);
    DIONEA_CHECK(attached.is_ok(), "attach");
    session = std::move(attached).value();
  }
  Stopwatch watch;
  vm::RunResult result = interp.run_string(kSpinProgram, "spin.ml");
  double elapsed = watch.elapsed_seconds();
  DIONEA_CHECK(result.ok, "spin run");
  if (server) server->stop();
  return elapsed;
}

// N sequential forks, with/without a debug server: isolates the
// handler-chain cost (pin locks, re-bind listener, publish port, ...).
double run_forks(bool debug, int forks) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});
  std::unique_ptr<TempDir> tmp;
  std::unique_ptr<dbg::DebugServer> server;
  std::unique_ptr<client::Session> session;
  if (debug) {
    auto created = TempDir::create("ablate-fork");
    DIONEA_CHECK(created.is_ok(), "tempdir");
    tmp = std::make_unique<TempDir>(std::move(created).value());
    dbg::DebugServer::Options options;
    options.port_file = tmp->file("ports");
    server = std::make_unique<dbg::DebugServer>(interp.vm(), options);
    DIONEA_CHECK(server->start().is_ok(), "server");
    auto attached = client::Session::attach(server->port(), 5000);
    DIONEA_CHECK(attached.is_ok(), "attach");
    session = std::move(attached).value();
  }
  std::string program = strings::format(
      "i = 0\n"
      "while i < %d\n"
      "  pid = fork(fn() exit(0) end)\n"
      "  waitpid(pid)\n"
      "  i = i + 1\n"
      "end\n"
      "puts(i)",
      forks);
  Stopwatch watch;
  vm::RunResult result = interp.run_string(program, "forks.ml");
  double elapsed = watch.elapsed_seconds();
  if (interp.vm().is_forked_child()) {
    std::fflush(nullptr);
    ::_exit(0);
  }
  DIONEA_CHECK(result.ok, "fork run");
  if (server) server->stop();
  return elapsed;
}

}  // namespace

int main() {
  print_header("Ablation A2: trace-hook and fork-handler cost decomposition",
               "§5.4's design choices (disable tracing across fork; "
               "per-line hook cost)");
  print_environment_note();

  constexpr int kReps = 5;
  double off = min_seconds(kReps, [] { return run_spin(DebugMode::kNone); });
  double fast = min_seconds(kReps, [] {
    return run_spin(DebugMode::kAttached);
  });
  double thorough = min_seconds(kReps, [] {
    return run_spin(DebugMode::kThorough);
  });

  std::printf("\ninterpreter spin loop (400k statements):\n");
  std::printf("%-38s %10s %10s\n", "arm", "time", "overhead");
  std::printf("%-38s %10s %10s\n", "tracing disarmed (no server)",
              format_duration(off).c_str(), "");
  std::printf("%-38s %10s %+9.1f%%\n", "armed, idle fast path",
              format_duration(fast).c_str(), overhead_pct(off, fast));
  std::printf("%-38s %10s %+9.1f%%\n", "armed, full per-line handling",
              format_duration(thorough).c_str(), overhead_pct(off, thorough));

  constexpr int kForks = 24;
  double forks_plain = min_seconds(3, [] { return run_forks(false, kForks); });
  double forks_debug = min_seconds(3, [] { return run_forks(true, kForks); });
  std::printf("\n%d sequential fork+waitpid cycles:\n", kForks);
  std::printf("%-38s %10s %14s\n", "arm", "time", "per fork");
  std::printf("%-38s %10s %14s\n", "VM fork handlers only",
              format_duration(forks_plain).c_str(),
              format_duration(forks_plain / kForks).c_str());
  std::printf("%-38s %10s %14s\n", "+ debugger handlers A/B/C",
              format_duration(forks_debug).c_str(),
              format_duration(forks_debug / kForks).c_str());
  std::printf("debugger fork-handler chain adds %s per fork (listener "
              "re-bind + port publish + session scaffolding in the child)\n",
              format_duration((forks_debug - forks_plain) / kForks).c_str());
  return 0;
}
