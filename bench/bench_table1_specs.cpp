// Table 1 — "Computer specifications".
//
// The paper pins its §7 numbers to a 4-core i5 with 6GB running
// Ubuntu 13.04 and Python 2.5.2. This bench prints that table beside
// the machine actually running the reproduction, so every other
// bench's numbers can be read in context.
#include <cstdio>

#include "support/host_spec.hpp"

int main() {
  using dionea::HostSpec;

  std::printf("Table 1: Computer specifications (paper vs this run)\n");
  std::printf("%-9s | %-45s | %s\n", "", "paper (PMAM'15)", "this machine");
  std::printf("----------+-----------------------------------------------+"
              "----------------------------\n");

  HostSpec spec = HostSpec::detect();
  std::printf("%-9s | %-45s | %s, %d cores\n", "CPU",
              "Intel(R) Core(TM) i5 CPU, 4 cores", spec.cpu_model.c_str(),
              spec.logical_cores);
  std::printf("%-9s | %-45s | %s\n", "HD",
              "OCZ Technology Vertex 2 SATA II (SSD)",
              "(unprobed; workload is CPU-bound)");
  std::printf("%-9s | %-45s | %ldMB\n", "Memory", "6GB DDR3 1333MHz",
              spec.memory_mb);
  std::printf("%-9s | %-45s | %s\n", "OS",
              "Ubuntu 13.04 (3.8.0-27 SMP x86_64)", spec.os_release.c_str());
  std::printf("%-9s | %-45s | %s\n", "Runtime", "Python 2.5.2",
              spec.runtime.c_str());
  return 0;
}
