// §7, text — the Rust-source run: "The same program was also run in
// the same way for Rust's source code (master 7613b15). The average
// time without Dionea was 3'49" and with Dionea was 4'36"." (+20.5%).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("§7 (text): word frequency, Rust source corpus (medium)",
               "paper: normal 3'49\" (229s), debugging 4'36\" (276s), "
               "+20.5%");
  print_environment_note();

  auto tmp = TempDir::create("rust-bench");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
      mapreduce::rust_master_spec(), 2.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");
  std::printf("corpus: %zu files, %lld bytes (stand-in for rust master "
              "7613b15)\n",
              corpus.value().files().size(),
              static_cast<long long>(corpus.value().bytes_written()));

  constexpr int kWorkers = 4;
  constexpr int kReps = 4;
  double normal = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kNone);
  });
  double thorough = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kThorough);
  });

  std::printf("\n%-26s %10s %10s\n", "", "time", "overhead");
  std::printf("%-26s %10s %10s\n", "paper: Normal", "3'49\"", "");
  std::printf("%-26s %10s %+9.1f%%\n", "paper: Debugging", "4'36\"", 20.5);
  std::printf("%-26s %10s %10s\n", "measured: Normal",
              format_duration(normal).c_str(), "");
  std::printf("%-26s %10s %+9.1f%%\n", "measured: Debugging",
              format_duration(thorough).c_str(),
              overhead_pct(normal, thorough));
  return 0;
}
