// Observability overhead: the fig9 wordcount workload (4 forked
// workers, debugger attached) with the metrics registry collecting vs
// disabled. The probes are one relaxed flag load + one single-writer
// relaxed store on the hot paths (VM trace hook, GIL, IPC frames), so
// the attached-mode delta must stay under 2%.
#include <cstdio>

#include "bench_util.hpp"
#include "support/metrics.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("Metrics overhead: fig9 workload, collection on vs off",
               "observability must cost <2% on an attached debuggee");
  print_environment_note();

  auto tmp = TempDir::create("bench-metrics");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
      mapreduce::dionea_trunk_spec(), 3.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");

  constexpr int kWorkers = 4;
  constexpr int kReps = 5;
  metrics::Registry& registry = metrics::Registry::instance();

  registry.set_enabled(false);
  double off = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });

  registry.set_enabled(true);
  registry.reset();
  double on = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });

  metrics::Snapshot snapshot = registry.snapshot();
  std::uint64_t line_events = snapshot.counters[static_cast<size_t>(
      metrics::Counter::kTraceLineEvents)];

  double pct = overhead_pct(off, on);
  std::printf("\n%-26s %10s %10s\n", "", "time", "overhead");
  std::printf("%-26s %10s %10s\n", "metrics off",
              format_duration(off).c_str(), "");
  std::printf("%-26s %10s %+9.2f%%\n", "metrics on",
              format_duration(on).c_str(), pct);
  std::printf("\ncollected while on: %llu trace-line events\n",
              static_cast<unsigned long long>(line_events));
  std::printf("budget: <2%% — %s\n", pct < 2.0 ? "PASS" : "FAIL");
  return pct < 2.0 ? 0 : 1;
}
