// Figure 10 — word frequency over the Linux 3.18.1 source tree:
// Normal 1601 s vs Debugging 1933 s, "an increment of around 20%".
//
// The corpus is scaled from the paper's 26 minutes to seconds (the
// trend, not the absolute time, is the result); otherwise the setup is
// Fig. 9's with the large corpus.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("Figure 10: word frequency, Linux 3.18.1 corpus (large)",
               "Fig. 10 + §7: normal 1601s, debugging 1933s (~+20%)");
  print_environment_note();

  auto tmp = TempDir::create("fig10");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
      mapreduce::linux_3_18_spec(), 2.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");
  std::printf("corpus: %zu files, %lld bytes (stand-in for linux-3.18.1, "
              "wall-time scaled from minutes to seconds)\n",
              corpus.value().files().size(),
              static_cast<long long>(corpus.value().bytes_written()));

  constexpr int kWorkers = 4;
  constexpr int kReps = 3;
  double normal = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kNone);
  });
  double thorough = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kThorough);
  });
  double fast = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });

  print_bars("Fig. 10 (reproduced, Dionea-equivalent tracing):", normal,
             thorough);
  std::printf("\n%-26s %10s %10s\n", "", "time", "overhead");
  std::printf("%-26s %10s %10s\n", "paper: Normal", "26'41\"", "");
  std::printf("%-26s %10s %+9.1f%%\n", "paper: Debugging", "32'13\"", 20.7);
  std::printf("%-26s %10s %10s\n", "measured: Normal",
              format_duration(normal).c_str(), "");
  std::printf("%-26s %10s %+9.1f%%\n", "measured: Debugging",
              format_duration(thorough).c_str(),
              overhead_pct(normal, thorough));
  std::printf("%-26s %10s %+9.1f%%  (engineering delta)\n",
              "measured: fast-path arm", format_duration(fast).c_str(),
              overhead_pct(normal, fast));
  return 0;
}
