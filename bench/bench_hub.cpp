// Hub scale bench: thousands of concurrent sessions through the
// sharded reactor, one real client subscribed to all of them.
//
// Synthetic sessions (register_synthetic) stand in for debuggees; each
// injected event carries its send timestamp, so the client-side drain
// measures true end-to-end routing latency (shard dispatch + envelope
// stamp + queue + socket + decode). Reported: p50/p99 latency,
// aggregate and per-shard events/sec, and backpressure drops.
//
//   bench_hub [--sessions N] [--rounds M] [--append]
//
// --append emits one JSON object per line (JSONL) so tools/hub_load.sh
// can sweep 100/1k/10k sessions into one BENCH_hub.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "debugger/protocol.hpp"
#include "hub/hub.hpp"
#include "support/timing.hpp"

using namespace dionea;

namespace {

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 10'000;
  int rounds = 5;  // events injected per session
  bool append = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--append") == 0) {
      append = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_hub [--sessions N] [--rounds M] [--append]\n");
      return 64;
    }
  }

  hub::Hub::Options options;
  // Scale the per-client bound with the fleet: the single drain client
  // subscribes to every session, so the default 256 frames would turn
  // the bench into a drop-rate measurement instead of a latency one.
  options.client_queue_frames = static_cast<size_t>(sessions) * static_cast<size_t>(rounds) + 64;
  hub::Hub hub(options);
  if (!hub.start().is_ok()) {
    std::fprintf(stderr, "bench_hub: hub start failed\n");
    return 1;
  }

  std::printf("bench_hub: %d sessions x %d events, %d shard(s)\n", sessions,
              rounds, hub.shard_count());
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    ids.push_back(hub.register_synthetic(100'000 + i));
  }

  auto connected = client::Client::connect(hub.port(), 10'000);
  if (!connected.is_ok()) {
    std::fprintf(stderr, "bench_hub: client connect failed: %s\n",
                 connected.error().to_string().c_str());
    return 1;
  }
  client::Client& cc = *connected.value();
  if (!cc.hub_mode()) {
    std::fprintf(stderr, "bench_hub: peer did not advertise hub\n");
    return 1;
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(sessions) * static_cast<std::uint64_t>(rounds);
  std::atomic<bool> draining{true};
  std::atomic<std::uint64_t> received_count{0};
  // Written by the drain thread only; read by main after join().
  std::vector<double> latencies;
  latencies.reserve(expected);
  std::map<int, std::uint64_t> per_shard_received;
  std::thread drain([&] {
    while (draining.load()) {
      auto events = cc.poll_events(20);
      if (!events.is_ok()) break;
      double now = mono_seconds();
      for (const client::Client::SessionEvent& se : events.value()) {
        double sent = se.event.payload.at("t").as_double();
        if (sent <= 0.0) continue;  // not ours (hub lifecycle events)
        latencies.push_back(now - sent);
        per_shard_received[hub.shard_for_session(se.session.id)]++;
        received_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Stopwatch wall;
  for (int round = 0; round < rounds; ++round) {
    for (std::int64_t id : ids) {
      ipc::wire::Value event =
          dbg::proto::make_event(dbg::proto::Event::kOutput);
      event.set("t", mono_seconds());
      hub.inject_event(id, event);
    }
  }
  double inject_seconds = wall.elapsed_seconds();

  // Drain until everything routed has either arrived or been dropped
  // (bounded: a stalled pipeline must fail loudly, not hang the bench).
  Stopwatch settle;
  while (settle.elapsed_seconds() < 60.0) {
    std::uint64_t seen = received_count.load() + hub.events_dropped();
    if (hub.events_routed() >= expected && seen >= expected) break;
    sleep_for_millis(20);
  }
  double total_seconds = wall.elapsed_seconds();
  draining.store(false);
  drain.join();
  std::uint64_t received = latencies.size();
  std::uint64_t dropped = hub.events_dropped();

  std::sort(latencies.begin(), latencies.end());
  double p50_ms = percentile(latencies, 0.50) * 1000.0;
  double p99_ms = percentile(latencies, 0.99) * 1000.0;
  double events_per_sec =
      total_seconds > 0 ? static_cast<double>(received) / total_seconds : 0;

  std::printf("  injected %llu in %.3fs, received %llu, dropped %llu\n",
              static_cast<unsigned long long>(expected), inject_seconds,
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(dropped));
  std::printf("  latency p50 %.3fms p99 %.3fms, %.0f events/s total\n",
              p50_ms, p99_ms, events_per_sec);

  std::FILE* json = std::fopen("BENCH_hub.json", append ? "a" : "w");
  if (json == nullptr) {
    std::fprintf(stderr, "bench_hub: cannot open BENCH_hub.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\"sessions\": %d, \"shards\": %d, \"events\": %llu, "
               "\"received\": %llu, \"dropped\": %llu, "
               "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
               "\"events_per_sec\": %.1f, \"per_shard_events_per_sec\": {",
               sessions, hub.shard_count(),
               static_cast<unsigned long long>(expected),
               static_cast<unsigned long long>(received),
               static_cast<unsigned long long>(dropped), p50_ms, p99_ms,
               events_per_sec);
  bool first = true;
  for (const auto& [shard, count] : per_shard_received) {
    std::fprintf(json, "%s\"%d\": %.1f", first ? "" : ", ", shard,
                 total_seconds > 0
                     ? static_cast<double>(count) / total_seconds
                     : 0.0);
    first = false;
  }
  std::fprintf(json, "}}\n");
  std::fclose(json);
  std::printf("wrote BENCH_hub.json (%s)\n", append ? "append" : "truncate");

  hub.stop();
  // Pass criterion: the fleet stayed attached and events flowed with a
  // measured p99. Received must cover most of the injected load (drops
  // are backpressure policy, not failure — but total silence is).
  bool pass = received > 0 && p99_ms > 0.0;
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
