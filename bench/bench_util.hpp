// Shared harness for the paper-reproduction benchmarks (§7).
//
// Each figure/table bench runs the word-frequency MapReduce (the
// paper's workload) over a synthetic corpus, normal vs debugging, and
// prints the measured numbers next to the paper's. Absolute times
// differ from the paper by construction (different machine, MiniVM
// instead of CPython 2.5, corpora scaled from minutes to seconds); the
// comparison target is the overhead ratio.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "client/session.hpp"
#include "debugger/server.hpp"
#include "mapreduce/corpus.hpp"
#include "mapreduce/wordcount.hpp"
#include "mp/vm_bindings.hpp"
#include "support/host_spec.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "vm/interp.hpp"

namespace dionea::bench {

enum class DebugMode {
  kNone,      // plain interpreter, no server
  kAttached,  // server + client attached, fast line path (this library)
  kThorough,  // server + client, full per-line handling (Dionea-faithful)
};

inline const char* debug_mode_name(DebugMode mode) {
  switch (mode) {
    case DebugMode::kNone: return "normal";
    case DebugMode::kAttached: return "debug(fast-path)";
    case DebugMode::kThorough: return "debug(dionea-equiv)";
  }
  return "?";
}

// One full run of the word-count program; returns wall seconds.
// `workers` <= 0 selects the serial (no-fork) program variant.
inline double run_wordcount(const mapreduce::Corpus& corpus, int workers,
                            DebugMode mode) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});

  std::unique_ptr<TempDir> tmp;
  std::unique_ptr<dbg::DebugServer> server;
  std::unique_ptr<client::Session> session;
  if (mode != DebugMode::kNone) {
    auto created = TempDir::create("bench-dbg");
    DIONEA_CHECK(created.is_ok(), "bench tempdir");
    tmp = std::make_unique<TempDir>(std::move(created).value());
    dbg::DebugServer::Options options;
    options.port_file = tmp->file("ports");
    options.thorough_line_handling = mode == DebugMode::kThorough;
    server = std::make_unique<dbg::DebugServer>(interp.vm(), options);
    DIONEA_CHECK(server->start().is_ok(), "bench server");
    auto attached = client::Session::attach(server->port(), 5000);
    DIONEA_CHECK(attached.is_ok(), "bench attach");
    session = std::move(attached).value();
  }

  std::string program =
      workers > 0 ? mapreduce::wordcount_program(corpus.root(), workers)
                  : mapreduce::wordcount_program_serial(corpus.root());
  Stopwatch watch;
  vm::RunResult result = interp.run_string(program, "wordcount.ml");
  double elapsed = watch.elapsed_seconds();
  if (interp.vm().is_forked_child()) {
    std::fflush(nullptr);
    ::_exit(0);
  }
  DIONEA_CHECK(result.ok, "bench wordcount run failed");
  if (server) server->stop();
  return elapsed;
}

// Minimum over `reps` runs — the standard wall-clock noise reducer.
template <typename Fn>
double min_seconds(int reps, Fn&& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    double t = fn();
    if (t < best) best = t;
  }
  return best;
}

inline double overhead_pct(double base, double debug) {
  return (debug / base - 1.0) * 100.0;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("============================================================\n");
}

inline void print_environment_note() {
  HostSpec spec = HostSpec::detect();
  std::printf("host: %s, %d cores, %ldMB (paper: i5 4 cores, 6GB)\n",
              spec.cpu_model.c_str(), spec.logical_cores, spec.memory_mb);
}

// A Fig.9/Fig.10-style two-bar rendering.
inline void print_bars(const std::string& caption, double normal_s,
                       double debug_s) {
  double unit = normal_s > 0 ? 40.0 / (debug_s > normal_s ? debug_s : normal_s)
                             : 1.0;
  auto bar = [&](double seconds) {
    int width = static_cast<int>(seconds * unit + 0.5);
    return std::string(static_cast<size_t>(width), '#');
  };
  std::printf("\n%s\n", caption.c_str());
  std::printf("  Normal    %-42s %s\n", bar(normal_s).c_str(),
              format_duration(normal_s).c_str());
  std::printf("  Debugging %-42s %s\n", bar(debug_s).c_str(),
              format_duration(debug_s).c_str());
}

}  // namespace dionea::bench
