// Ablation A1 — low-intrusive vs stop-the-world debugging.
//
// §6.1: "being able to debug individual processes while simultaneously
// other processes continue running is more efficient than stopping all
// the processes because the overhead associated to debugging only
// affects particular processes."
//
// Setup: a 4-worker word count. Arms:
//   none        — no suspension (baseline)
//   one-worker  — one worker suspended for the first 40% of the run,
//                 then released (low-intrusive; the queue re-balances)
//   all-workers — every worker suspended for the same duration
//                 (stop-the-world)
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/client.hpp"

namespace {

using namespace dionea;
using namespace dionea::bench;

double run_with_suspension(const mapreduce::Corpus& corpus, int workers,
                           int suspend_count, int hold_millis) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});
  auto tmp = TempDir::create("ablate");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  dbg::DebugServer server(interp.vm(),
                          {.port_file = tmp.value().file("ports"),
                           .stop_forked_children = true});
  DIONEA_CHECK(server.start().is_ok(), "server");

  std::string program = mapreduce::wordcount_program(corpus.root(), workers);
  Stopwatch watch;
  std::thread runner([&] {
    vm::RunResult result = interp.run_string(program, "wc.ml");
    if (interp.vm().is_forked_child()) {
      std::fflush(nullptr);
      ::_exit(0);
    }
    DIONEA_CHECK(result.ok, "wordcount run");
  });

  auto cc = client::Client::discover(tmp.value().file("ports"));
  (void)cc->refresh(5000);
  cc->claim(cc->handle_for_pid(static_cast<int>(::getpid())));

  // Adopt every worker at birth; keep `suspend_count` of them parked.
  std::vector<std::pair<client::Session*, std::int64_t>> parked;
  for (int i = 0; i < workers; ++i) {
    auto worker_h = cc->attach_any(10'000);
    DIONEA_CHECK(worker_h.is_ok(), "adopt worker");
    client::Session* worker = cc->session(worker_h.value());
    auto stop = worker->wait_stopped(5000);
    DIONEA_CHECK(stop.is_ok(), "worker stop");
    if (static_cast<int>(parked.size()) < suspend_count) {
      parked.emplace_back(worker, stop.value().tid);
    } else {
      DIONEA_CHECK(worker->cont(stop.value().tid).is_ok(), "cont");
    }
  }
  sleep_for_millis(hold_millis);
  for (auto& [session, tid] : parked) {
    DIONEA_CHECK(session->cont(tid).is_ok(), "release");
  }
  runner.join();
  double elapsed = watch.elapsed_seconds();
  server.stop();
  return elapsed;
}

}  // namespace

int main() {
  print_header("Ablation A1: low-intrusive vs stop-the-world",
               "§6.1: per-UE suspension beats stopping every process");
  print_environment_note();

  auto tmp = TempDir::create("ablate-corpus");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
      mapreduce::rust_master_spec(), 2.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("c"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");

  constexpr int kWorkers = 4;
  constexpr int kReps = 3;
  // Hold for roughly half the undisturbed runtime.
  double baseline = min_seconds(kReps, [&] {
    return run_with_suspension(corpus.value(), kWorkers, 0, 0);
  });
  int hold = static_cast<int>(baseline * 1000.0 * 0.5);

  double one = min_seconds(kReps, [&] {
    return run_with_suspension(corpus.value(), kWorkers, 1, hold);
  });
  double all = min_seconds(kReps, [&] {
    return run_with_suspension(corpus.value(), kWorkers, kWorkers, hold);
  });

  std::printf("\nsuspension held for %dms (~50%% of the undisturbed run)\n",
              hold);
  std::printf("%-34s %10s %10s\n", "arm", "time", "slowdown");
  std::printf("%-34s %10s %10s\n", "no suspension",
              format_duration(baseline).c_str(), "");
  std::printf("%-34s %10s %+9.1f%%\n",
              "1 of 4 workers suspended (low-intrusive)",
              format_duration(one).c_str(), overhead_pct(baseline, one));
  std::printf("%-34s %10s %+9.1f%%\n", "all 4 workers suspended (stop-world)",
              format_duration(all).c_str(), overhead_pct(baseline, all));
  std::printf("\nexpected shape: the low-intrusive arm stays near the "
              "baseline (free workers absorb the suspended worker's jobs); "
              "the stop-the-world arm pays the full hold.\n");
  return 0;
}
