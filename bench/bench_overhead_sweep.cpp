// §7's size claim: "An increment of 12.11% in the execution time was
// found for a small set of data ... while bigger sets of data showed
// an increment of around 20%."
//
// Sweep corpus size and print overhead per size for both debugging
// arms, so the size-vs-overhead trend (and where this reproduction
// deviates from the paper's) is visible in one table.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("Overhead vs corpus size (sweep)",
               "§7: +12.11% on a small set, ~+20% on bigger sets");
  print_environment_note();

  auto tmp = TempDir::create("sweep");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");

  struct Point {
    const char* label;
    double scale;
  };
  const std::vector<Point> points = {
      {"0.5x small", 0.5}, {"small", 1.0}, {"3x small", 3.0},
      {"9x small", 9.0}, {"18x small", 18.0}};

  std::printf("\n%-12s %10s %12s %22s %18s\n", "corpus", "bytes", "normal",
              "debug(dionea-equiv)", "debug(fast-path)");
  constexpr int kWorkers = 4;
  constexpr int kReps = 5;
  for (size_t i = 0; i < points.size(); ++i) {
    mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
        mapreduce::dionea_trunk_spec(), points[i].scale);
    auto corpus = mapreduce::Corpus::generate(
        spec, tmp.value().file("c" + std::to_string(i)));
    DIONEA_CHECK(corpus.is_ok(), "corpus");
    // Interleave the arms across repetitions so slow drift on a busy
    // machine hits all three equally.
    double normal = 1e100;
    double thorough = 1e100;
    double fast = 1e100;
    for (int rep = 0; rep < kReps; ++rep) {
      normal = std::min(
          normal, run_wordcount(corpus.value(), kWorkers, DebugMode::kNone));
      thorough = std::min(
          thorough,
          run_wordcount(corpus.value(), kWorkers, DebugMode::kThorough));
      fast = std::min(
          fast, run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached));
    }
    std::printf("%-12s %10lld %12s %14s %+6.1f%% %11s %+5.1f%%\n",
                points[i].label,
                static_cast<long long>(corpus.value().bytes_written()),
                format_duration(normal).c_str(),
                format_duration(thorough).c_str(),
                overhead_pct(normal, thorough),
                format_duration(fast).c_str(), overhead_pct(normal, fast));
  }
  std::printf("\npaper reference: +12.11%% (small) -> ~+20%% (large)\n");
  return 0;
}
