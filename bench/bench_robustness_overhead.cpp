// Robustness overhead: the fig9 wordcount workload (4 forked workers,
// debugger attached) across the robustness layer's three shipping
// configurations.
//
// The budget that matters: the *default* configuration — post-mortem
// handlers installed, watchdog off — must cost <2% over a build with
// the whole layer disabled. Post-mortem capture is a handful of signal
// handlers plus one pointer-pair store per traced line (note_trace),
// and a disarmed watchdog is exactly nothing, so the gate is tight.
// The watchdog-on arm (a background thread sampling three probes per
// tick) is reported for the record but not gated: like record/replay,
// an armed watchdog is an opt-in debugging mode.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "support/crash_report.hpp"
#include "support/watchdog.hpp"

namespace {

using namespace dionea;
using namespace dionea::bench;

// run_wordcount with the robustness knobs exposed. Mirrors
// bench_util.hpp's runner; kept local because only this bench varies
// postmortem/watchdog.
double run_robust(const mapreduce::Corpus& corpus, int workers,
                  bool postmortem, bool watchdog) {
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});

  auto created = TempDir::create("bench-robust");
  DIONEA_CHECK(created.is_ok(), "bench tempdir");
  TempDir tmp = std::move(created).value();
  dbg::DebugServer::Options options;
  options.port_file = tmp.file("ports");
  options.postmortem = postmortem;
  options.crash_dir = tmp.path();
  options.watchdog = watchdog;
  if (watchdog) {
    // Generous deadlines: the workload must never trip them — we are
    // measuring the sampling cost, not the escalation path.
    options.watchdog_options.tick_millis = 20;
    options.watchdog_options.hung_after_millis = 60'000;
    options.watchdog_options.degraded_after_millis = 120'000;
    options.watchdog_options.detached_after_millis = 240'000;
  }
  auto server = std::make_unique<dbg::DebugServer>(interp.vm(), options);
  DIONEA_CHECK(server->start().is_ok(), "bench server");
  auto attached = client::Session::attach(server->port(), 5000);
  DIONEA_CHECK(attached.is_ok(), "bench attach");

  std::string program = mapreduce::wordcount_program(corpus.root(), workers);
  Stopwatch watch;
  vm::RunResult result = interp.run_string(program, "wordcount.ml");
  double elapsed = watch.elapsed_seconds();
  if (interp.vm().is_forked_child()) {
    std::fflush(nullptr);
    ::_exit(0);
  }
  DIONEA_CHECK(result.ok, "bench wordcount run failed");
  server->stop();
  return elapsed;
}

}  // namespace

int main() {
  print_header(
      "Robustness overhead: fig9 workload, crash handlers + watchdog",
      "default config (postmortem on, watchdog off) must cost <2%");
  print_environment_note();

  auto tmp = TempDir::create("bench-robustness");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec =
      mapreduce::scaled_spec(mapreduce::dionea_trunk_spec(), 3.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");

  constexpr int kWorkers = 4;
  constexpr int kReps = 5;

  double base = min_seconds(kReps, [&] {
    return run_robust(corpus.value(), kWorkers, /*postmortem=*/false,
                      /*watchdog=*/false);
  });
  double def = min_seconds(kReps, [&] {
    return run_robust(corpus.value(), kWorkers, /*postmortem=*/true,
                      /*watchdog=*/false);
  });
  double armed = min_seconds(kReps, [&] {
    return run_robust(corpus.value(), kWorkers, /*postmortem=*/true,
                      /*watchdog=*/true);
  });

  double def_pct = overhead_pct(base, def);
  double armed_pct = overhead_pct(base, armed);
  std::printf("\n%-30s %10s %10s\n", "", "time", "overhead");
  std::printf("%-30s %10s %10s\n", "robustness layer off",
              format_duration(base).c_str(), "");
  std::printf("%-30s %10s %+9.2f%%\n", "default (postmortem only)",
              format_duration(def).c_str(), def_pct);
  std::printf("%-30s %10s %+9.2f%%\n", "watchdog armed (20ms tick)",
              format_duration(armed).c_str(), armed_pct);

  std::FILE* json = std::fopen("BENCH_robustness.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"fig9_wordcount_x3\",\n"
                 "  \"workers\": %d,\n"
                 "  \"reps\": %d,\n"
                 "  \"layer_off_s\": %.6f,\n"
                 "  \"default_s\": %.6f,\n"
                 "  \"watchdog_armed_s\": %.6f,\n"
                 "  \"default_overhead_pct\": %.3f,\n"
                 "  \"watchdog_armed_overhead_pct\": %.3f,\n"
                 "  \"budget_default_pct\": 2.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 kWorkers, kReps, base, def, armed, def_pct, armed_pct,
                 def_pct < 2.0 ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_robustness.json\n");
  }

  std::printf("budget: default <2%% — %s\n", def_pct < 2.0 ? "PASS" : "FAIL");
  return def_pct < 2.0 ? 0 : 1;
}
