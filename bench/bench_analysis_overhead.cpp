// MiniSan overhead: the fig9 wordcount workload (4 forked workers,
// debugger attached) with the dynamic detector disabled vs enabled.
//
// The budget that matters for shipping: the *disabled* detector must
// be free. Every hook is guarded by one relaxed atomic load
// (analysis::engine_enabled()), so two disabled runs must agree to
// well under 10% — that pair is the pass/fail gate. The enabled-mode
// cost (a mutex + map updates per global/container access) is
// reported for the record but not gated: analysis is an opt-in
// debugging mode, like record/replay.
// The ForkLint static pass is timed too (ms per 1k bytecode ops over
// a representative fork-heavy program): it runs on demand (console
// `forklint`, DIONEA_FORKLINT=1), so it has no budget gate — the
// number is recorded so a complexity regression in the dataflow shows
// up in the bench history.
#include <cstdio>

#include "analysis/analysis.hpp"
#include "analysis/forklint.hpp"
#include "bench_util.hpp"
#include "vm/bytecode.hpp"
#include "vm/compiler.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("MiniSan overhead: fig9 workload, detector off vs on",
               "the disabled detector must cost <10% (target: noise)");
  print_environment_note();

  auto tmp = TempDir::create("bench-analysis");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  mapreduce::CorpusSpec spec =
      mapreduce::scaled_spec(mapreduce::dionea_trunk_spec(), 3.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");

  constexpr int kWorkers = 4;
  constexpr int kReps = 5;
  analysis::Engine& engine = analysis::Engine::instance();

  engine.disable();
  double base = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });
  // Second disabled arm: everything the merge added to the hot path
  // (the guarded hooks) is live in both, so the delta is the honest
  // measure of "analysis off" cost plus machine noise.
  double off = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });

  engine.reset();
  engine.enable();
  double on = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });
  engine.disable();
  std::uint64_t accesses = engine.accesses();
  std::uint64_t sync_events = engine.sync_events();
  std::size_t findings = engine.report().findings.size();
  engine.reset();

  // ---- ForkLint static pass speed ----
  // A fork-heavy program with threads, queues and nested calls; the
  // dataflow's cost scales with bytecode size, so normalize per 1k
  // bytecode ops.
  const char* forklint_source =
      "m = mutex()\n"
      "work = queue()\n"
      "out = queue()\n"
      "fn feed(n)\n"
      "  i = 0\n"
      "  while i < n\n"
      "    push(work, i)\n"
      "    i = i + 1\n"
      "  end\n"
      "end\n"
      "fn drain()\n"
      "  while true\n"
      "    x = try_pop(work)\n"
      "    if x == nil\n"
      "      break\n"
      "    end\n"
      "    lock(m)\n"
      "    push(out, x * x)\n"
      "    unlock(m)\n"
      "  end\n"
      "end\n"
      "fn child()\n"
      "  drain()\n"
      "  exit(0)\n"
      "end\n"
      "t1 = spawn(feed, 10)\n"
      "t2 = spawn(drain)\n"
      "join(t1)\n"
      "join(t2)\n"
      "pid = fork(child)\n"
      "waitpid(pid)\n";
  auto forklint_proto = vm::compile_source(forklint_source, "bench.ml");
  DIONEA_CHECK(forklint_proto.is_ok(), "forklint bench program");
  std::size_t bytecode_ops = 0;
  for (const vm::FunctionProto* p :
       vm::collect_protos(*forklint_proto.value())) {
    bytecode_ops += p->chunk.size();
  }
  double forklint_s = min_seconds(kReps, [&] {
    Stopwatch watch;
    for (int i = 0; i < 50; ++i) {
      analysis::Report r = analysis::forklint_program(*forklint_proto.value());
      DIONEA_CHECK(!r.findings.empty(), "bench program must trip forklint");
    }
    return watch.elapsed_seconds() / 50.0;
  });
  double forklint_ms_per_kop =
      forklint_s * 1000.0 / (static_cast<double>(bytecode_ops) / 1000.0);

  double off_pct = overhead_pct(base, off);
  double on_pct = overhead_pct(base, on);
  std::printf("\n%-26s %10s %10s\n", "", "time", "overhead");
  std::printf("%-26s %10s %10s\n", "analysis off (baseline)",
              format_duration(base).c_str(), "");
  std::printf("%-26s %10s %+9.2f%%\n", "analysis off (again)",
              format_duration(off).c_str(), off_pct);
  std::printf("%-26s %10s %+9.2f%%\n", "analysis on",
              format_duration(on).c_str(), on_pct);
  std::printf(
      "\nwhile on: %llu accesses, %llu sync events, %zu findings\n",
      static_cast<unsigned long long>(accesses),
      static_cast<unsigned long long>(sync_events), findings);
  std::printf(
      "forklint static pass: %s per run over %zu bytecode ops "
      "(%.3f ms per 1k ops)\n",
      format_duration(forklint_s).c_str(), bytecode_ops,
      forklint_ms_per_kop);

  std::FILE* json = std::fopen("BENCH_analysis.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"fig9_wordcount_x3\",\n"
                 "  \"workers\": %d,\n"
                 "  \"reps\": %d,\n"
                 "  \"analysis_off_baseline_s\": %.6f,\n"
                 "  \"analysis_off_s\": %.6f,\n"
                 "  \"analysis_on_s\": %.6f,\n"
                 "  \"off_overhead_pct\": %.3f,\n"
                 "  \"on_overhead_pct\": %.3f,\n"
                 "  \"on_accesses\": %llu,\n"
                 "  \"on_sync_events\": %llu,\n"
                 "  \"forklint_pass_s\": %.6f,\n"
                 "  \"forklint_bytecode_ops\": %zu,\n"
                 "  \"forklint_ms_per_1k_ops\": %.3f,\n"
                 "  \"budget_off_pct\": 10.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 kWorkers, kReps, base, off, on, off_pct, on_pct,
                 static_cast<unsigned long long>(accesses),
                 static_cast<unsigned long long>(sync_events),
                 forklint_s, bytecode_ops, forklint_ms_per_kop,
                 off_pct < 10.0 ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_analysis.json\n");
  }

  std::printf("budget: off <10%% — %s\n", off_pct < 10.0 ? "PASS" : "FAIL");
  return off_pct < 10.0 ? 0 : 1;
}
