// Figure 9 — word frequency over the Dionea source tree (trunk r656):
// Normal 2.31 s vs Debugging 2.58 s, "an increment of around 12%"
// (§7 reports 12.11% for the small data set).
//
// Here: the small synthetic corpus, MapReduce with 4 forked workers
// (the paper's multiprocessing setup), normal vs debugging with no
// breakpoints. Two debugging arms are shown: the Dionea-equivalent
// per-line handler (the paper-faithful comparison) and this library's
// optimized fast path (an engineering delta the paper didn't have).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dionea;
  using namespace dionea::bench;

  print_header("Figure 9: word frequency, Dionea source corpus (small)",
               "Fig. 9 + §7: normal 2.31s, debugging 2.58s (+12.11%)");
  print_environment_note();

  auto tmp = TempDir::create("fig9");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  // Scale the small preset up so a run is comfortably measurable.
  mapreduce::CorpusSpec spec = mapreduce::scaled_spec(
      mapreduce::dionea_trunk_spec(), 3.0);
  auto corpus = mapreduce::Corpus::generate(spec, tmp.value().file("corpus"));
  DIONEA_CHECK(corpus.is_ok(), "corpus");
  std::printf("corpus: %zu files, %lld bytes (stand-in for Dionea trunk "
              "r656)\n",
              corpus.value().files().size(),
              static_cast<long long>(corpus.value().bytes_written()));

  constexpr int kWorkers = 4;
  constexpr int kReps = 5;
  double normal = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kNone);
  });
  double thorough = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kThorough);
  });
  double fast = min_seconds(kReps, [&] {
    return run_wordcount(corpus.value(), kWorkers, DebugMode::kAttached);
  });

  print_bars("Fig. 9 (reproduced, Dionea-equivalent tracing):", normal,
             thorough);
  std::printf("\n%-26s %10s %10s\n", "", "time", "overhead");
  std::printf("%-26s %10s %10s\n", "paper: Normal", "2.31s", "");
  std::printf("%-26s %10s %+9.1f%%\n", "paper: Debugging", "2.58s", 12.11);
  std::printf("%-26s %10s %10s\n", "measured: Normal",
              format_duration(normal).c_str(), "");
  std::printf("%-26s %10s %+9.1f%%\n", "measured: Debugging",
              format_duration(thorough).c_str(),
              overhead_pct(normal, thorough));
  std::printf("%-26s %10s %+9.1f%%  (engineering delta: compiled trace "
              "handler + idle fast path)\n",
              "measured: fast-path arm", format_duration(fast).c_str(),
              overhead_pct(normal, fast));
  return 0;
}
