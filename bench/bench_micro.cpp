// Ablation A3 — substrate micro-benchmarks (google-benchmark):
// the primitive costs the system-level numbers decompose into.
#include <benchmark/benchmark.h>

#include "debugger/breakpoint.hpp"
#include "ipc/frame.hpp"
#include "ipc/wire.hpp"
#include "mp/mpqueue.hpp"
#include "mp/serialize.hpp"
#include "vm/compiler.hpp"
#include "vm/gil.hpp"
#include "vm/interp.hpp"

namespace {

using namespace dionea;

// ---- VM dispatch ----

void BM_VmStatementDispatch(benchmark::State& state) {
  // Cost per MiniLang statement (the unit the §7 overhead multiplies).
  const std::string program =
      "total = 0\n"
      "i = 0\n"
      "while i < 10000\n"
      "  total = total + i\n"
      "  i = i + 1\n"
      "end";
  for (auto _ : state) {
    vm::Interp interp;
    interp.vm().set_output([](std::string_view) {});
    auto result = interp.run_string(program, "bench.ml");
    benchmark::DoNotOptimize(result.ok);
  }
  state.SetItemsProcessed(state.iterations() * 20'003);  // statements
}
BENCHMARK(BM_VmStatementDispatch)->Unit(benchmark::kMillisecond);

void BM_VmTracedStatementDispatch(benchmark::State& state) {
  const std::string program =
      "total = 0\n"
      "i = 0\n"
      "while i < 10000\n"
      "  total = total + i\n"
      "  i = i + 1\n"
      "end";
  for (auto _ : state) {
    vm::Interp interp;
    interp.vm().set_output([](std::string_view) {});
    interp.vm().set_trace_fn(
        [](vm::Vm&, vm::InterpThread&, const vm::TraceEvent& event) {
          benchmark::DoNotOptimize(event.line);
        });
    interp.vm().set_trace_enabled(true);
    auto result = interp.run_string(program, "bench.ml");
    benchmark::DoNotOptimize(result.ok);
  }
  state.SetItemsProcessed(state.iterations() * 20'003);
}
BENCHMARK(BM_VmTracedStatementDispatch)->Unit(benchmark::kMillisecond);

void BM_CompileWordcountSizedProgram(benchmark::State& state) {
  std::string program;
  for (int i = 0; i < 40; ++i) {
    program += "fn f" + std::to_string(i) + "(a, b)\n";
    program += "  c = a + b * " + std::to_string(i) + "\n";
    program += "  return c\n";
    program += "end\n";
  }
  for (auto _ : state) {
    auto proto = vm::compile_source(program, "bench.ml");
    benchmark::DoNotOptimize(proto.is_ok());
  }
}
BENCHMARK(BM_CompileWordcountSizedProgram)->Unit(benchmark::kMicrosecond);

// ---- GIL ----

void BM_GilAcquireRelease(benchmark::State& state) {
  vm::Gil gil;
  for (auto _ : state) {
    gil.acquire(1);
    gil.release();
  }
}
BENCHMARK(BM_GilAcquireRelease);

void BM_GilUncontendedYield(benchmark::State& state) {
  vm::Gil gil;
  gil.acquire(1);
  for (auto _ : state) {
    gil.yield(1);
  }
  gil.release();
}
BENCHMARK(BM_GilUncontendedYield);

// ---- wire codec / frames ----

ipc::wire::Value sample_command() {
  ipc::wire::Value value;
  value.set("cmd", "locals");
  value.set("seq", 12345);
  value.set("tid", 3);
  value.set("depth", 0);
  return value;
}

void BM_WireEncodeCommand(benchmark::State& state) {
  auto value = sample_command();
  for (auto _ : state) {
    std::string bytes;
    value.encode(&bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_WireEncodeCommand);

void BM_WireDecodeCommand(benchmark::State& state) {
  std::string bytes;
  sample_command().encode(&bytes);
  for (auto _ : state) {
    auto decoded = ipc::wire::Value::decode(bytes);
    benchmark::DoNotOptimize(decoded.is_ok());
  }
}
BENCHMARK(BM_WireDecodeCommand);

void BM_FrameRoundTripLoopback(benchmark::State& state) {
  auto listener = ipc::TcpListener::bind(0);
  auto client = ipc::TcpStream::connect_retry(listener.value().port(), 2000);
  auto server = listener.value().accept_timeout(2000);
  (void)client.value().set_nodelay(true);
  (void)server.value().set_nodelay(true);
  auto value = sample_command();
  for (auto _ : state) {
    (void)ipc::send_frame(client.value(), value);
    auto received = ipc::recv_frame(server.value());
    benchmark::DoNotOptimize(received.is_ok());
  }
}
BENCHMARK(BM_FrameRoundTripLoopback)->Unit(benchmark::kMicrosecond);

// ---- pickle / mp queue ----

void BM_PickleWordCountsMap(benchmark::State& state) {
  vm::Value map = vm::Value::new_map();
  for (int i = 0; i < 200; ++i) {
    map.as_map()->items["word" + std::to_string(i)] = vm::Value(i);
  }
  for (auto _ : state) {
    auto bytes = mp::serialize(map);
    benchmark::DoNotOptimize(bytes.is_ok());
  }
}
BENCHMARK(BM_PickleWordCountsMap)->Unit(benchmark::kMicrosecond);

void BM_MpQueueRoundTrip(benchmark::State& state) {
  auto queue = mp::MpQueue::create();
  std::string payload(256, 'x');
  for (auto _ : state) {
    (void)queue.value().push_bytes(payload);
    auto popped = queue.value().pop_bytes();
    benchmark::DoNotOptimize(popped.is_ok());
  }
}
BENCHMARK(BM_MpQueueRoundTrip)->Unit(benchmark::kMicrosecond);

// ---- breakpoint table (the per-line probe) ----

void BM_BreakpointMatchEmpty(benchmark::State& state) {
  dbg::BreakpointTable table;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.match("wordcount.ml", 17, 1));
  }
}
BENCHMARK(BM_BreakpointMatchEmpty);

void BM_BreakpointMatchMissWithEntries(benchmark::State& state) {
  dbg::BreakpointTable table;
  for (int i = 0; i < 16; ++i) table.add("other.ml", 100 + i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.match("wordcount.ml", 17, 1));
  }
}
BENCHMARK(BM_BreakpointMatchMissWithEntries);

void BM_BreakpointMatchHit(benchmark::State& state) {
  dbg::BreakpointTable table;
  table.add("wordcount.ml", 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.match("wordcount.ml", 17, 1));
  }
}
BENCHMARK(BM_BreakpointMatchHit);

}  // namespace

BENCHMARK_MAIN();
