// Raw interpreter speed: dispatch backend x quickening, plus the
// trace-armed arm (Fig. 9's "debugging" bar without the sockets).
//
// Unlike the figure benches this one measures the dispatch loop
// itself — a single-threaded hot loop of fused arithmetic, global IC
// traffic and calls — in statements/second, and writes BENCH_vm.json
// with a regression gate:
//
//   1. goto+quicken must beat the portable switch-without-quickening
//      arm by at least kMinSpeedup (the raw-speed machinery must pay
//      for itself on its home workload);
//   2. arming the per-line trace hook must cost at most
//      kMaxArmedOverheadPct over the same quickened backend (the
//      armed fast path is two relaxed loads; if this balloons, the
//      gate-check got slower, which is exactly a Fig. 9 regression).
//
// Absolute statements/sec are machine-dependent and not gated.
#include <cstdint>
#include <cstdio>

#include "bench_util.hpp"
#include "vm/vm.hpp"

namespace {

using namespace dionea;
using namespace dionea::bench;

// Hot loop over every fused/quickened op family: local⊕local and
// local⊕const arithmetic, const stores, comparisons, calls, and the
// two global IC sites ("total", "i") hit every iteration.
const char* kLoopProgram =
    "fn inner(a, b)\n"
    "  c = a * 2\n"
    "  d = b + 16\n"
    "  if c > d\n"
    "    return c - d\n"
    "  end\n"
    "  return d - c\n"
    "end\n"
    "total = 0\n"
    "i = 0\n"
    "while i < 200000\n"
    "  total = total + inner(i, 13)\n"
    "  i = i + 1\n"
    "end\n"
    "puts(total)\n";

struct Arm {
  double seconds = 0;
  std::uint64_t statements = 0;
  std::uint64_t trace_events = 0;
  double stmts_per_sec() const {
    return seconds > 0 ? static_cast<double>(statements) / seconds : 0;
  }
};

Arm run_arm(vm::Vm::DispatchMode mode, bool quicken, bool armed) {
  vm::Interp interp;
  vm::Vm& machine = interp.vm();
  machine.set_output([](std::string_view) {});
  machine.set_dispatch_mode(mode);
  machine.set_quicken_enabled(quicken);
  Arm arm;
  if (armed) {
    machine.set_trace_fn([&arm](vm::Vm&, vm::InterpThread&,
                                const vm::TraceEvent&) { ++arm.trace_events; });
    machine.set_trace_enabled(true);
  }
  Stopwatch watch;
  vm::RunResult result = interp.run_string(kLoopProgram, "bench_vm.ml");
  arm.seconds = watch.elapsed_seconds();
  DIONEA_CHECK(result.ok, "bench_vm run failed");
  arm.statements = machine.statements_executed();
  return arm;
}

Arm best_of(int reps, vm::Vm::DispatchMode mode, bool quicken, bool armed) {
  Arm best;
  for (int i = 0; i < reps; ++i) {
    Arm arm = run_arm(mode, quicken, armed);
    if (best.statements == 0 || arm.seconds < best.seconds) best = arm;
  }
  return best;
}

void print_arm(const char* name, const Arm& arm, const Arm& base) {
  std::printf("%-22s %10s %12.0f stmts/s %+9.1f%%\n", name,
              format_duration(arm.seconds).c_str(), arm.stmts_per_sec(),
              overhead_pct(base.seconds, arm.seconds));
}

}  // namespace

int main() {
  // Gate budgets. kMinSpeedup is deliberately below the ≥2x measured
  // on the dev box (see EXPERIMENTS.md): the gate catches the machinery
  // silently turning off, not inter-machine variance.
  constexpr double kMinSpeedup = 1.25;
  constexpr double kMaxArmedOverheadPct = 400.0;
  constexpr int kReps = 5;

  print_header("VM raw speed: dispatch x quickening x trace arming",
               "§6/§7 context: per-line hook cost is what Fig. 9/10 price");
  print_environment_note();
  const bool goto_available = vm::Vm::computed_goto_available();
  std::printf("computed-goto backend available: %s\n\n",
              goto_available ? "yes" : "no (switch fallback measured twice)");

  Arm switch_plain =
      best_of(kReps, vm::Vm::DispatchMode::kSwitch, false, false);
  Arm switch_quick =
      best_of(kReps, vm::Vm::DispatchMode::kSwitch, true, false);
  Arm goto_plain = best_of(kReps, vm::Vm::DispatchMode::kGoto, false, false);
  Arm goto_quick = best_of(kReps, vm::Vm::DispatchMode::kGoto, true, false);
  Arm goto_quick_armed =
      best_of(kReps, vm::Vm::DispatchMode::kGoto, true, true);

  std::printf("%-22s %10s %12s %10s\n", "arm", "time", "throughput",
              "vs base");
  print_arm("switch, no quicken", switch_plain, switch_plain);
  print_arm("switch, quicken", switch_quick, switch_plain);
  print_arm("goto, no quicken", goto_plain, switch_plain);
  print_arm("goto, quicken", goto_quick, switch_plain);
  print_arm("goto+quicken, armed", goto_quick_armed, switch_plain);

  const double speedup =
      goto_quick.seconds > 0 ? switch_plain.seconds / goto_quick.seconds : 0;
  const double armed_overhead =
      overhead_pct(goto_quick.seconds, goto_quick_armed.seconds);
  std::printf("\ngoto+quicken speedup over portable arm: %.2fx (gate: "
              ">=%.2fx)\n",
              speedup, kMinSpeedup);
  std::printf("armed overhead on quickened backend: %+.1f%% (gate: "
              "<=%.0f%%), %llu trace events\n",
              armed_overhead, kMaxArmedOverheadPct,
              static_cast<unsigned long long>(goto_quick_armed.trace_events));

  const bool pass =
      speedup >= kMinSpeedup && armed_overhead <= kMaxArmedOverheadPct;

  std::FILE* json = std::fopen("BENCH_vm.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n"
        "  \"workload\": \"vm_hot_loop_200k\",\n"
        "  \"reps\": %d,\n"
        "  \"goto_available\": %s,\n"
        "  \"switch_plain_stmts_per_sec\": %.0f,\n"
        "  \"switch_quick_stmts_per_sec\": %.0f,\n"
        "  \"goto_plain_stmts_per_sec\": %.0f,\n"
        "  \"goto_quick_stmts_per_sec\": %.0f,\n"
        "  \"goto_quick_armed_stmts_per_sec\": %.0f,\n"
        "  \"normal_s\": %.6f,\n"
        "  \"armed_s\": %.6f,\n"
        "  \"armed_overhead_pct\": %.3f,\n"
        "  \"speedup_goto_quick_vs_switch_plain\": %.3f,\n"
        "  \"gate_min_speedup\": %.2f,\n"
        "  \"gate_max_armed_overhead_pct\": %.1f,\n"
        "  \"pass\": %s\n"
        "}\n",
        kReps, goto_available ? "true" : "false",
        switch_plain.stmts_per_sec(), switch_quick.stmts_per_sec(),
        goto_plain.stmts_per_sec(), goto_quick.stmts_per_sec(),
        goto_quick_armed.stmts_per_sec(), goto_quick.seconds,
        goto_quick_armed.seconds, armed_overhead, speedup, kMinSpeedup,
        kMaxArmedOverheadPct, pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_vm.json\n");
  }

  std::printf("gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
