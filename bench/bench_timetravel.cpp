// Time-travel economics: what a checkpoint fork costs during replay,
// and what rcontinue latency looks like as a function of checkpoint
// spacing (DIONEA_CKPT_EVERY).
//
// The trade the spacing knob buys: tighter spacing pays more forks up
// front (each one a fork(2) through the full A/B/C handler stack) and
// resumes land nearer the target; wider spacing is near-free during
// the forward run but a resume has to replay more of the schedule to
// reach the same step. Both halves are measured against the same
// recorded run so the numbers are comparable, and everything lands in
// BENCH_timetravel.json.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"

namespace {

using namespace dionea;
using namespace dionea::bench;
using replay::tt::CheckpointManager;
using replay::tt::Options;
using replay::tt::Role;

// Single-threaded so every boundary is checkpoint-eligible; the
// clock() per iteration makes each lap a recorded step, giving the
// ring a long, evenly spaced log to carve up.
const char* kWorkload =
    "acc = 0\n"
    "for i in 4000\n"
    "  t = clock()\n"
    "  acc = acc + 1\n"
    "end\n"
    "puts(acc)\n";

struct ReplayRun {
  double seconds = 0;
  std::uint64_t steps = 0;
  replay::tt::Snapshot snap;
};

// One forward replay of the recorded log; spacing == 0 leaves the
// checkpoint subsystem out entirely (the baseline).
ReplayRun run_replay(const std::string& dir, const std::string& pause_dir,
                     std::uint64_t spacing) {
  replay::Engine& engine = replay::Engine::instance();
  DIONEA_CHECK(engine.start_replay(dir).is_ok(), "start_replay");
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});
  if (spacing > 0) {
    Options opts;
    opts.every = spacing;
    opts.max_live = 64;  // generous: we are measuring forks, not eviction
    opts.pause_dir = pause_dir;
    opts.exit_at_target = true;
    DIONEA_CHECK(CheckpointManager::instance().activate(interp.vm(), opts)
                     .is_ok(),
                 "checkpoint activate");
  }
  Stopwatch watch;
  vm::RunResult result = interp.run_string(kWorkload, "bench.ml");
  ReplayRun run;
  run.seconds = watch.elapsed_seconds();
  if (interp.vm().is_forked_child()) {
    if (CheckpointManager::instance().role() == Role::kResumed) {
      sleep_for_millis(70'000);  // the pause watcher owes the _Exit
    }
    engine.flush();
    std::fflush(nullptr);
    ::_exit(0);
  }
  DIONEA_CHECK(result.ok, "bench replay run failed");
  run.steps = engine.info().step;
  run.snap = CheckpointManager::instance().snapshot();
  CheckpointManager::instance().deactivate();
  engine.stop();
  return run;
}

// Like run_replay but keeps the ring alive and times resume_to: wall
// seconds from the resume request to the resumer's pause marker.
struct ResumeProbe {
  std::uint64_t taken = 0;
  double best_latency_s = 1e100;
};

ResumeProbe probe_resume_latency(const std::string& dir,
                                 const std::string& pause_dir,
                                 std::uint64_t spacing, int rounds) {
  replay::Engine& engine = replay::Engine::instance();
  DIONEA_CHECK(engine.start_replay(dir).is_ok(), "start_replay");
  vm::Interp interp;
  mp::install_vm_bindings(interp.vm());
  interp.vm().set_output([](std::string_view) {});
  Options opts;
  opts.every = spacing;
  opts.max_live = 64;
  opts.pause_dir = pause_dir;
  opts.exit_at_target = true;
  CheckpointManager& mgr = CheckpointManager::instance();
  DIONEA_CHECK(mgr.activate(interp.vm(), opts).is_ok(), "checkpoint activate");
  vm::RunResult result = interp.run_string(kWorkload, "bench.ml");
  if (interp.vm().is_forked_child()) {
    if (mgr.role() == Role::kResumed) sleep_for_millis(70'000);
    engine.flush();
    std::fflush(nullptr);
    ::_exit(0);
  }
  DIONEA_CHECK(result.ok, "bench replay run failed");

  const std::uint64_t target = engine.info().step * 3 / 4;
  ResumeProbe probe;
  probe.taken = mgr.snapshot().taken;
  for (int round = 0; round < rounds; ++round) {
    Stopwatch watch;
    auto ticket = mgr.resume_to(target);
    DIONEA_CHECK(ticket.is_ok(), "resume_to");
    const std::string marker =
        pause_dir + "/pause." + std::to_string(ticket.value().pid);
    bool ok = false;
    for (int i = 0; i < 3000; ++i) {
      auto text = read_file(marker);
      if (text.is_ok() && text.value().rfind("status=ok", 0) == 0) {
        ok = true;
        break;
      }
      sleep_for_millis(10);
    }
    double latency = watch.elapsed_seconds();
    DIONEA_CHECK(ok, "resumer never published its pause marker");
    ::unlink(marker.c_str());
    if (latency < probe.best_latency_s) probe.best_latency_s = latency;
  }
  mgr.deactivate();
  engine.stop();
  return probe;
}

}  // namespace

int main() {
  print_header("Time-travel: checkpoint-fork cost + rcontinue latency",
               "spacing trade-off over one recorded run (ISSUE 9)");
  print_environment_note();

  auto tmp = TempDir::create("bench-timetravel");
  DIONEA_CHECK(tmp.is_ok(), "tempdir");
  const std::string log_dir = tmp.value().file("logs");
  const std::string pause_dir = tmp.value().path();

  {
    replay::Engine& engine = replay::Engine::instance();
    DIONEA_CHECK(engine.start_record(log_dir).is_ok(), "start_record");
    vm::Interp interp;
    mp::install_vm_bindings(interp.vm());
    interp.vm().set_output([](std::string_view) {});
    vm::RunResult result = interp.run_string(kWorkload, "bench.ml");
    DIONEA_CHECK(result.ok, "record run failed");
    engine.stop();
  }

  constexpr int kReps = 5;
  constexpr int kResumeRounds = 5;
  const std::vector<std::uint64_t> kSpacings{16, 128, 512};

  double base = 1e100;
  std::uint64_t steps = 0;
  for (int i = 0; i < kReps; ++i) {
    ReplayRun run = run_replay(log_dir, pause_dir, 0);
    if (run.seconds < base) base = run.seconds;
    steps = run.steps;
  }
  std::printf("\nrecorded log: %llu steps; plain replay %s (min of %d)\n",
              static_cast<unsigned long long>(steps),
              format_duration(base).c_str(), kReps);

  struct Row {
    std::uint64_t spacing = 0;
    std::uint64_t taken = 0;
    double replay_s = 0;
    double per_ckpt_ms = 0;
    double resume_ms = 0;
  };
  std::vector<Row> rows;
  std::printf("\n%-10s %8s %12s %14s %14s\n", "every", "forks",
              "replay", "fork cost", "rcontinue");
  for (std::uint64_t spacing : kSpacings) {
    Row row;
    row.spacing = spacing;
    double best = 1e100;
    for (int i = 0; i < kReps; ++i) {
      ReplayRun run = run_replay(log_dir, pause_dir, spacing);
      if (run.seconds < best) best = run.seconds;
      row.taken = run.snap.taken;
    }
    row.replay_s = best;
    row.per_ckpt_ms = row.taken > 0
                          ? (best - base) * 1000.0 /
                                static_cast<double>(row.taken)
                          : 0.0;
    if (row.per_ckpt_ms < 0) row.per_ckpt_ms = 0;  // lost in the noise
    ResumeProbe probe =
        probe_resume_latency(log_dir, pause_dir, spacing, kResumeRounds);
    row.resume_ms = probe.best_latency_s * 1000.0;
    rows.push_back(row);
    std::printf("%-10llu %8llu %12s %11.3fms %11.1fms\n",
                static_cast<unsigned long long>(spacing),
                static_cast<unsigned long long>(row.taken),
                format_duration(best).c_str(), row.per_ckpt_ms,
                row.resume_ms);
  }

  std::FILE* json = std::fopen("BENCH_timetravel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"workload\": \"clock_loop_4000\",\n"
                 "  \"steps\": %llu,\n"
                 "  \"reps\": %d,\n"
                 "  \"resume_rounds\": %d,\n"
                 "  \"plain_replay_s\": %.6f,\n"
                 "  \"spacings\": [\n",
                 static_cast<unsigned long long>(steps), kReps, kResumeRounds,
                 base);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(json,
                   "    {\"every\": %llu, \"checkpoints\": %llu,"
                   " \"replay_s\": %.6f, \"per_checkpoint_ms\": %.4f,"
                   " \"rcontinue_latency_ms\": %.3f}%s\n",
                   static_cast<unsigned long long>(row.spacing),
                   static_cast<unsigned long long>(row.taken), row.replay_s,
                   row.per_ckpt_ms, row.resume_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_timetravel.json\n");
  }
  return 0;
}
