file(REMOVE_RECURSE
  "CMakeFiles/dioneac.dir/dioneac.cpp.o"
  "CMakeFiles/dioneac.dir/dioneac.cpp.o.d"
  "dioneac"
  "dioneac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dioneac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
