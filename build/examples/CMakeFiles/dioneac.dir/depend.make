# Empty dependencies file for dioneac.
# This may be replaced when dependencies are built.
