
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/deadlock_demo.cpp" "examples/CMakeFiles/deadlock_demo.dir/deadlock_demo.cpp.o" "gcc" "examples/CMakeFiles/deadlock_demo.dir/deadlock_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/dionea_client.dir/DependInfo.cmake"
  "/root/repo/build/src/debugger/CMakeFiles/dionea_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dionea_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/dionea_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
