file(REMOVE_RECURSE
  "CMakeFiles/parallel_gem_bug.dir/parallel_gem_bug.cpp.o"
  "CMakeFiles/parallel_gem_bug.dir/parallel_gem_bug.cpp.o.d"
  "parallel_gem_bug"
  "parallel_gem_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_gem_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
