# Empty compiler generated dependencies file for parallel_gem_bug.
# This may be replaced when dependencies are built.
