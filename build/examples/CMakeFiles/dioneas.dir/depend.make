# Empty dependencies file for dioneas.
# This may be replaced when dependencies are built.
