file(REMOVE_RECURSE
  "CMakeFiles/dioneas.dir/dioneas.cpp.o"
  "CMakeFiles/dioneas.dir/dioneas.cpp.o.d"
  "dioneas"
  "dioneas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dioneas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
