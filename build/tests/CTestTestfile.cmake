# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[support_test]=] "/root/repo/build/tests/support_test")
set_tests_properties([=[support_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;23;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[ipc_test]=] "/root/repo/build/tests/ipc_test")
set_tests_properties([=[ipc_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;33;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[vm_lang_test]=] "/root/repo/build/tests/vm_lang_test")
set_tests_properties([=[vm_lang_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;43;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[vm_concurrency_test]=] "/root/repo/build/tests/vm_concurrency_test")
set_tests_properties([=[vm_concurrency_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;54;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[vm_fork_test]=] "/root/repo/build/tests/vm_fork_test")
set_tests_properties([=[vm_fork_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;62;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[debugger_test]=] "/root/repo/build/tests/debugger_test")
set_tests_properties([=[debugger_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;66;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[debugger_fork_test]=] "/root/repo/build/tests/debugger_fork_test")
set_tests_properties([=[debugger_fork_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;74;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[client_test]=] "/root/repo/build/tests/client_test")
set_tests_properties([=[client_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;80;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mp_test]=] "/root/repo/build/tests/mp_test")
set_tests_properties([=[mp_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;86;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mp_parallel_test]=] "/root/repo/build/tests/mp_parallel_test")
set_tests_properties([=[mp_parallel_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;94;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mapreduce_test]=] "/root/repo/build/tests/mapreduce_test")
set_tests_properties([=[mapreduce_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;98;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[integration_test]=] "/root/repo/build/tests/integration_test")
set_tests_properties([=[integration_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;103;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_test]=] "/root/repo/build/tests/cli_test")
set_tests_properties([=[cli_test]=] PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;108;dionea_test;/root/repo/tests/CMakeLists.txt;0;")
