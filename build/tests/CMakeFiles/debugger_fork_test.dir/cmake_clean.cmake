file(REMOVE_RECURSE
  "CMakeFiles/debugger_fork_test.dir/debugger/deadlock_scenario_test.cpp.o"
  "CMakeFiles/debugger_fork_test.dir/debugger/deadlock_scenario_test.cpp.o.d"
  "CMakeFiles/debugger_fork_test.dir/debugger/disturb_test.cpp.o"
  "CMakeFiles/debugger_fork_test.dir/debugger/disturb_test.cpp.o.d"
  "CMakeFiles/debugger_fork_test.dir/debugger/fork_debug_test.cpp.o"
  "CMakeFiles/debugger_fork_test.dir/debugger/fork_debug_test.cpp.o.d"
  "debugger_fork_test"
  "debugger_fork_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_fork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
