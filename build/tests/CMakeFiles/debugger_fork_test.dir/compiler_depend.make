# Empty compiler generated dependencies file for debugger_fork_test.
# This may be replaced when dependencies are built.
