# Empty compiler generated dependencies file for vm_fork_test.
# This may be replaced when dependencies are built.
