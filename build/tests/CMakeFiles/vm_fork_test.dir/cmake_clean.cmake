file(REMOVE_RECURSE
  "CMakeFiles/vm_fork_test.dir/vm/fork_test.cpp.o"
  "CMakeFiles/vm_fork_test.dir/vm/fork_test.cpp.o.d"
  "vm_fork_test"
  "vm_fork_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
