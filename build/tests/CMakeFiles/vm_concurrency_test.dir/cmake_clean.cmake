file(REMOVE_RECURSE
  "CMakeFiles/vm_concurrency_test.dir/vm/deadlock_test.cpp.o"
  "CMakeFiles/vm_concurrency_test.dir/vm/deadlock_test.cpp.o.d"
  "CMakeFiles/vm_concurrency_test.dir/vm/gil_test.cpp.o"
  "CMakeFiles/vm_concurrency_test.dir/vm/gil_test.cpp.o.d"
  "CMakeFiles/vm_concurrency_test.dir/vm/sync_test.cpp.o"
  "CMakeFiles/vm_concurrency_test.dir/vm/sync_test.cpp.o.d"
  "CMakeFiles/vm_concurrency_test.dir/vm/thread_test.cpp.o"
  "CMakeFiles/vm_concurrency_test.dir/vm/thread_test.cpp.o.d"
  "CMakeFiles/vm_concurrency_test.dir/vm/trace_test.cpp.o"
  "CMakeFiles/vm_concurrency_test.dir/vm/trace_test.cpp.o.d"
  "vm_concurrency_test"
  "vm_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
