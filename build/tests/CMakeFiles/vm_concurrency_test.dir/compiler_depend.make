# Empty compiler generated dependencies file for vm_concurrency_test.
# This may be replaced when dependencies are built.
