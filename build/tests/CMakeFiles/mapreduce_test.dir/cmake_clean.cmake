file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_test.dir/mapreduce/corpus_test.cpp.o"
  "CMakeFiles/mapreduce_test.dir/mapreduce/corpus_test.cpp.o.d"
  "CMakeFiles/mapreduce_test.dir/mapreduce/wordcount_test.cpp.o"
  "CMakeFiles/mapreduce_test.dir/mapreduce/wordcount_test.cpp.o.d"
  "mapreduce_test"
  "mapreduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
