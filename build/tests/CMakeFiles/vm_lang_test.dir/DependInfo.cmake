
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/builtins_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/builtins_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/builtins_test.cpp.o.d"
  "/root/repo/tests/vm/compiler_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/compiler_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/compiler_test.cpp.o.d"
  "/root/repo/tests/vm/error_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/error_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/error_test.cpp.o.d"
  "/root/repo/tests/vm/exec_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/exec_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/exec_test.cpp.o.d"
  "/root/repo/tests/vm/fuzz_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/fuzz_test.cpp.o.d"
  "/root/repo/tests/vm/lexer_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/lexer_test.cpp.o.d"
  "/root/repo/tests/vm/parser_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/parser_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/parser_test.cpp.o.d"
  "/root/repo/tests/vm/value_test.cpp" "tests/CMakeFiles/vm_lang_test.dir/vm/value_test.cpp.o" "gcc" "tests/CMakeFiles/vm_lang_test.dir/vm/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/dionea_client.dir/DependInfo.cmake"
  "/root/repo/build/src/debugger/CMakeFiles/dionea_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dionea_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/dionea_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
