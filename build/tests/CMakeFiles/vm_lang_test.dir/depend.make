# Empty dependencies file for vm_lang_test.
# This may be replaced when dependencies are built.
