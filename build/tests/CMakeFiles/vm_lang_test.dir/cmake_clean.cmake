file(REMOVE_RECURSE
  "CMakeFiles/vm_lang_test.dir/vm/builtins_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/builtins_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/compiler_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/compiler_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/error_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/error_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/exec_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/exec_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/fuzz_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/fuzz_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/lexer_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/lexer_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/parser_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/parser_test.cpp.o.d"
  "CMakeFiles/vm_lang_test.dir/vm/value_test.cpp.o"
  "CMakeFiles/vm_lang_test.dir/vm/value_test.cpp.o.d"
  "vm_lang_test"
  "vm_lang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
