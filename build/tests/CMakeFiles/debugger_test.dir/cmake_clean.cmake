file(REMOVE_RECURSE
  "CMakeFiles/debugger_test.dir/debugger/advanced_test.cpp.o"
  "CMakeFiles/debugger_test.dir/debugger/advanced_test.cpp.o.d"
  "CMakeFiles/debugger_test.dir/debugger/breakpoint_test.cpp.o"
  "CMakeFiles/debugger_test.dir/debugger/breakpoint_test.cpp.o.d"
  "CMakeFiles/debugger_test.dir/debugger/eval_test.cpp.o"
  "CMakeFiles/debugger_test.dir/debugger/eval_test.cpp.o.d"
  "CMakeFiles/debugger_test.dir/debugger/protocol_test.cpp.o"
  "CMakeFiles/debugger_test.dir/debugger/protocol_test.cpp.o.d"
  "CMakeFiles/debugger_test.dir/debugger/server_test.cpp.o"
  "CMakeFiles/debugger_test.dir/debugger/server_test.cpp.o.d"
  "debugger_test"
  "debugger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
