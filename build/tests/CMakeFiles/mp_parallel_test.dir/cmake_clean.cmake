file(REMOVE_RECURSE
  "CMakeFiles/mp_parallel_test.dir/mp/parallel_bug_test.cpp.o"
  "CMakeFiles/mp_parallel_test.dir/mp/parallel_bug_test.cpp.o.d"
  "mp_parallel_test"
  "mp_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
