# Empty compiler generated dependencies file for mp_parallel_test.
# This may be replaced when dependencies are built.
