file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/host_spec_test.cpp.o"
  "CMakeFiles/support_test.dir/support/host_spec_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/logging_test.cpp.o"
  "CMakeFiles/support_test.dir/support/logging_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/result_test.cpp.o"
  "CMakeFiles/support_test.dir/support/result_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/strings_test.cpp.o"
  "CMakeFiles/support_test.dir/support/strings_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/temp_file_test.cpp.o"
  "CMakeFiles/support_test.dir/support/temp_file_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/timing_test.cpp.o"
  "CMakeFiles/support_test.dir/support/timing_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
