file(REMOVE_RECURSE
  "CMakeFiles/mp_test.dir/mp/mpqueue_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp/mpqueue_test.cpp.o.d"
  "CMakeFiles/mp_test.dir/mp/pool_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp/pool_test.cpp.o.d"
  "CMakeFiles/mp_test.dir/mp/process_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp/process_test.cpp.o.d"
  "CMakeFiles/mp_test.dir/mp/serialize_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp/serialize_test.cpp.o.d"
  "CMakeFiles/mp_test.dir/mp/vm_bindings_test.cpp.o"
  "CMakeFiles/mp_test.dir/mp/vm_bindings_test.cpp.o.d"
  "mp_test"
  "mp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
