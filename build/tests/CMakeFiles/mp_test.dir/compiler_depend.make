# Empty compiler generated dependencies file for mp_test.
# This may be replaced when dependencies are built.
