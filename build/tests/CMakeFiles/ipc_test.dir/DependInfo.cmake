
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ipc/fd_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/fd_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/fd_test.cpp.o.d"
  "/root/repo/tests/ipc/frame_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/frame_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/frame_test.cpp.o.d"
  "/root/repo/tests/ipc/pipe_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/pipe_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/pipe_test.cpp.o.d"
  "/root/repo/tests/ipc/port_file_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/port_file_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/port_file_test.cpp.o.d"
  "/root/repo/tests/ipc/reactor_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/reactor_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/reactor_test.cpp.o.d"
  "/root/repo/tests/ipc/socket_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/socket_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/socket_test.cpp.o.d"
  "/root/repo/tests/ipc/wire_test.cpp" "tests/CMakeFiles/ipc_test.dir/ipc/wire_test.cpp.o" "gcc" "tests/CMakeFiles/ipc_test.dir/ipc/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/dionea_client.dir/DependInfo.cmake"
  "/root/repo/build/src/debugger/CMakeFiles/dionea_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/dionea_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/dionea_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
