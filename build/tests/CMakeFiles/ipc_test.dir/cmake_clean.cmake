file(REMOVE_RECURSE
  "CMakeFiles/ipc_test.dir/ipc/fd_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/fd_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/frame_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/frame_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/pipe_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/pipe_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/port_file_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/port_file_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/reactor_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/reactor_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/socket_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/socket_test.cpp.o.d"
  "CMakeFiles/ipc_test.dir/ipc/wire_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc/wire_test.cpp.o.d"
  "ipc_test"
  "ipc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
