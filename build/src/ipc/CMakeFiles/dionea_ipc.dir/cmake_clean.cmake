file(REMOVE_RECURSE
  "CMakeFiles/dionea_ipc.dir/fd.cpp.o"
  "CMakeFiles/dionea_ipc.dir/fd.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/frame.cpp.o"
  "CMakeFiles/dionea_ipc.dir/frame.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/pipe.cpp.o"
  "CMakeFiles/dionea_ipc.dir/pipe.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/port_file.cpp.o"
  "CMakeFiles/dionea_ipc.dir/port_file.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/reactor.cpp.o"
  "CMakeFiles/dionea_ipc.dir/reactor.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/socket.cpp.o"
  "CMakeFiles/dionea_ipc.dir/socket.cpp.o.d"
  "CMakeFiles/dionea_ipc.dir/wire.cpp.o"
  "CMakeFiles/dionea_ipc.dir/wire.cpp.o.d"
  "libdionea_ipc.a"
  "libdionea_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
