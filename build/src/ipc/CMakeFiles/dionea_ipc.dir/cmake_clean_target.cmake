file(REMOVE_RECURSE
  "libdionea_ipc.a"
)
