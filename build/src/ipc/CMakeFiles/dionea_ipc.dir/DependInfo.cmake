
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/fd.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/fd.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/fd.cpp.o.d"
  "/root/repo/src/ipc/frame.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/frame.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/frame.cpp.o.d"
  "/root/repo/src/ipc/pipe.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/pipe.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/pipe.cpp.o.d"
  "/root/repo/src/ipc/port_file.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/port_file.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/port_file.cpp.o.d"
  "/root/repo/src/ipc/reactor.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/reactor.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/reactor.cpp.o.d"
  "/root/repo/src/ipc/socket.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/socket.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/socket.cpp.o.d"
  "/root/repo/src/ipc/wire.cpp" "src/ipc/CMakeFiles/dionea_ipc.dir/wire.cpp.o" "gcc" "src/ipc/CMakeFiles/dionea_ipc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
