# Empty dependencies file for dionea_ipc.
# This may be replaced when dependencies are built.
