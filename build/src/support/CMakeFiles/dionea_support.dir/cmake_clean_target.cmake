file(REMOVE_RECURSE
  "libdionea_support.a"
)
