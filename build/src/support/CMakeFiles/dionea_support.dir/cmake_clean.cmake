file(REMOVE_RECURSE
  "CMakeFiles/dionea_support.dir/host_spec.cpp.o"
  "CMakeFiles/dionea_support.dir/host_spec.cpp.o.d"
  "CMakeFiles/dionea_support.dir/logging.cpp.o"
  "CMakeFiles/dionea_support.dir/logging.cpp.o.d"
  "CMakeFiles/dionea_support.dir/rng.cpp.o"
  "CMakeFiles/dionea_support.dir/rng.cpp.o.d"
  "CMakeFiles/dionea_support.dir/strings.cpp.o"
  "CMakeFiles/dionea_support.dir/strings.cpp.o.d"
  "CMakeFiles/dionea_support.dir/temp_file.cpp.o"
  "CMakeFiles/dionea_support.dir/temp_file.cpp.o.d"
  "CMakeFiles/dionea_support.dir/timing.cpp.o"
  "CMakeFiles/dionea_support.dir/timing.cpp.o.d"
  "libdionea_support.a"
  "libdionea_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
