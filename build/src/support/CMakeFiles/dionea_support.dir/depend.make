# Empty dependencies file for dionea_support.
# This may be replaced when dependencies are built.
