file(REMOVE_RECURSE
  "CMakeFiles/dionea_debugger.dir/breakpoint.cpp.o"
  "CMakeFiles/dionea_debugger.dir/breakpoint.cpp.o.d"
  "CMakeFiles/dionea_debugger.dir/fork_handlers.cpp.o"
  "CMakeFiles/dionea_debugger.dir/fork_handlers.cpp.o.d"
  "CMakeFiles/dionea_debugger.dir/protocol.cpp.o"
  "CMakeFiles/dionea_debugger.dir/protocol.cpp.o.d"
  "CMakeFiles/dionea_debugger.dir/server.cpp.o"
  "CMakeFiles/dionea_debugger.dir/server.cpp.o.d"
  "libdionea_debugger.a"
  "libdionea_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
