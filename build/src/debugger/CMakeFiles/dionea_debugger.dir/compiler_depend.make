# Empty compiler generated dependencies file for dionea_debugger.
# This may be replaced when dependencies are built.
