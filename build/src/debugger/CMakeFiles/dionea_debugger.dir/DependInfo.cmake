
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debugger/breakpoint.cpp" "src/debugger/CMakeFiles/dionea_debugger.dir/breakpoint.cpp.o" "gcc" "src/debugger/CMakeFiles/dionea_debugger.dir/breakpoint.cpp.o.d"
  "/root/repo/src/debugger/fork_handlers.cpp" "src/debugger/CMakeFiles/dionea_debugger.dir/fork_handlers.cpp.o" "gcc" "src/debugger/CMakeFiles/dionea_debugger.dir/fork_handlers.cpp.o.d"
  "/root/repo/src/debugger/protocol.cpp" "src/debugger/CMakeFiles/dionea_debugger.dir/protocol.cpp.o" "gcc" "src/debugger/CMakeFiles/dionea_debugger.dir/protocol.cpp.o.d"
  "/root/repo/src/debugger/server.cpp" "src/debugger/CMakeFiles/dionea_debugger.dir/server.cpp.o" "gcc" "src/debugger/CMakeFiles/dionea_debugger.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
