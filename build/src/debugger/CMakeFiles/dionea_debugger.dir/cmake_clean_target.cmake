file(REMOVE_RECURSE
  "libdionea_debugger.a"
)
