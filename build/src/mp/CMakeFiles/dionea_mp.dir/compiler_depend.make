# Empty compiler generated dependencies file for dionea_mp.
# This may be replaced when dependencies are built.
