file(REMOVE_RECURSE
  "libdionea_mp.a"
)
