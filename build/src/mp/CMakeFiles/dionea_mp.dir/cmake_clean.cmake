file(REMOVE_RECURSE
  "CMakeFiles/dionea_mp.dir/mpqueue.cpp.o"
  "CMakeFiles/dionea_mp.dir/mpqueue.cpp.o.d"
  "CMakeFiles/dionea_mp.dir/parallel.cpp.o"
  "CMakeFiles/dionea_mp.dir/parallel.cpp.o.d"
  "CMakeFiles/dionea_mp.dir/pool.cpp.o"
  "CMakeFiles/dionea_mp.dir/pool.cpp.o.d"
  "CMakeFiles/dionea_mp.dir/process.cpp.o"
  "CMakeFiles/dionea_mp.dir/process.cpp.o.d"
  "CMakeFiles/dionea_mp.dir/serialize.cpp.o"
  "CMakeFiles/dionea_mp.dir/serialize.cpp.o.d"
  "CMakeFiles/dionea_mp.dir/vm_bindings.cpp.o"
  "CMakeFiles/dionea_mp.dir/vm_bindings.cpp.o.d"
  "libdionea_mp.a"
  "libdionea_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
