
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/mpqueue.cpp" "src/mp/CMakeFiles/dionea_mp.dir/mpqueue.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/mpqueue.cpp.o.d"
  "/root/repo/src/mp/parallel.cpp" "src/mp/CMakeFiles/dionea_mp.dir/parallel.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/parallel.cpp.o.d"
  "/root/repo/src/mp/pool.cpp" "src/mp/CMakeFiles/dionea_mp.dir/pool.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/pool.cpp.o.d"
  "/root/repo/src/mp/process.cpp" "src/mp/CMakeFiles/dionea_mp.dir/process.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/process.cpp.o.d"
  "/root/repo/src/mp/serialize.cpp" "src/mp/CMakeFiles/dionea_mp.dir/serialize.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/serialize.cpp.o.d"
  "/root/repo/src/mp/vm_bindings.cpp" "src/mp/CMakeFiles/dionea_mp.dir/vm_bindings.cpp.o" "gcc" "src/mp/CMakeFiles/dionea_mp.dir/vm_bindings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
