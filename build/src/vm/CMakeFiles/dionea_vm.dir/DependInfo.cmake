
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/builtins.cpp" "src/vm/CMakeFiles/dionea_vm.dir/builtins.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/builtins.cpp.o.d"
  "/root/repo/src/vm/bytecode.cpp" "src/vm/CMakeFiles/dionea_vm.dir/bytecode.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/bytecode.cpp.o.d"
  "/root/repo/src/vm/compiler.cpp" "src/vm/CMakeFiles/dionea_vm.dir/compiler.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/compiler.cpp.o.d"
  "/root/repo/src/vm/gil.cpp" "src/vm/CMakeFiles/dionea_vm.dir/gil.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/gil.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/vm/CMakeFiles/dionea_vm.dir/interp.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/interp.cpp.o.d"
  "/root/repo/src/vm/lexer.cpp" "src/vm/CMakeFiles/dionea_vm.dir/lexer.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/lexer.cpp.o.d"
  "/root/repo/src/vm/parser.cpp" "src/vm/CMakeFiles/dionea_vm.dir/parser.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/parser.cpp.o.d"
  "/root/repo/src/vm/sync.cpp" "src/vm/CMakeFiles/dionea_vm.dir/sync.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/sync.cpp.o.d"
  "/root/repo/src/vm/value.cpp" "src/vm/CMakeFiles/dionea_vm.dir/value.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/value.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/vm/CMakeFiles/dionea_vm.dir/vm.cpp.o" "gcc" "src/vm/CMakeFiles/dionea_vm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
