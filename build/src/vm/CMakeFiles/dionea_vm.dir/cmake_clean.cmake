file(REMOVE_RECURSE
  "CMakeFiles/dionea_vm.dir/builtins.cpp.o"
  "CMakeFiles/dionea_vm.dir/builtins.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/bytecode.cpp.o"
  "CMakeFiles/dionea_vm.dir/bytecode.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/compiler.cpp.o"
  "CMakeFiles/dionea_vm.dir/compiler.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/gil.cpp.o"
  "CMakeFiles/dionea_vm.dir/gil.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/interp.cpp.o"
  "CMakeFiles/dionea_vm.dir/interp.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/lexer.cpp.o"
  "CMakeFiles/dionea_vm.dir/lexer.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/parser.cpp.o"
  "CMakeFiles/dionea_vm.dir/parser.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/sync.cpp.o"
  "CMakeFiles/dionea_vm.dir/sync.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/value.cpp.o"
  "CMakeFiles/dionea_vm.dir/value.cpp.o.d"
  "CMakeFiles/dionea_vm.dir/vm.cpp.o"
  "CMakeFiles/dionea_vm.dir/vm.cpp.o.d"
  "libdionea_vm.a"
  "libdionea_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
