# Empty dependencies file for dionea_vm.
# This may be replaced when dependencies are built.
