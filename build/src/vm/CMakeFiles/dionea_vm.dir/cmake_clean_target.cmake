file(REMOVE_RECURSE
  "libdionea_vm.a"
)
