file(REMOVE_RECURSE
  "CMakeFiles/dionea_client.dir/console.cpp.o"
  "CMakeFiles/dionea_client.dir/console.cpp.o.d"
  "CMakeFiles/dionea_client.dir/multi_client.cpp.o"
  "CMakeFiles/dionea_client.dir/multi_client.cpp.o.d"
  "CMakeFiles/dionea_client.dir/session.cpp.o"
  "CMakeFiles/dionea_client.dir/session.cpp.o.d"
  "libdionea_client.a"
  "libdionea_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
