
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/console.cpp" "src/client/CMakeFiles/dionea_client.dir/console.cpp.o" "gcc" "src/client/CMakeFiles/dionea_client.dir/console.cpp.o.d"
  "/root/repo/src/client/multi_client.cpp" "src/client/CMakeFiles/dionea_client.dir/multi_client.cpp.o" "gcc" "src/client/CMakeFiles/dionea_client.dir/multi_client.cpp.o.d"
  "/root/repo/src/client/session.cpp" "src/client/CMakeFiles/dionea_client.dir/session.cpp.o" "gcc" "src/client/CMakeFiles/dionea_client.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/debugger/CMakeFiles/dionea_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/dionea_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dionea_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dionea_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
