file(REMOVE_RECURSE
  "libdionea_client.a"
)
