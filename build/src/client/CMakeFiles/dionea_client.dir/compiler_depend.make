# Empty compiler generated dependencies file for dionea_client.
# This may be replaced when dependencies are built.
