file(REMOVE_RECURSE
  "CMakeFiles/dionea_mapreduce.dir/corpus.cpp.o"
  "CMakeFiles/dionea_mapreduce.dir/corpus.cpp.o.d"
  "CMakeFiles/dionea_mapreduce.dir/wordcount.cpp.o"
  "CMakeFiles/dionea_mapreduce.dir/wordcount.cpp.o.d"
  "libdionea_mapreduce.a"
  "libdionea_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dionea_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
