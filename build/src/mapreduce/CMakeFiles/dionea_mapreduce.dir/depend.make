# Empty dependencies file for dionea_mapreduce.
# This may be replaced when dependencies are built.
