file(REMOVE_RECURSE
  "libdionea_mapreduce.a"
)
