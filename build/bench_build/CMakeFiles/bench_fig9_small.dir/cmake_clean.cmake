file(REMOVE_RECURSE
  "../bench/bench_fig9_small"
  "../bench/bench_fig9_small.pdb"
  "CMakeFiles/bench_fig9_small.dir/bench_fig9_small.cpp.o"
  "CMakeFiles/bench_fig9_small.dir/bench_fig9_small.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
