file(REMOVE_RECURSE
  "../bench/bench_fig10_large"
  "../bench/bench_fig10_large.pdb"
  "CMakeFiles/bench_fig10_large.dir/bench_fig10_large.cpp.o"
  "CMakeFiles/bench_fig10_large.dir/bench_fig10_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
