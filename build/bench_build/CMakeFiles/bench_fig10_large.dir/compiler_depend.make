# Empty compiler generated dependencies file for bench_fig10_large.
# This may be replaced when dependencies are built.
