# Empty compiler generated dependencies file for bench_rust_medium.
# This may be replaced when dependencies are built.
