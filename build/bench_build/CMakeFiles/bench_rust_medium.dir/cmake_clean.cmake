file(REMOVE_RECURSE
  "../bench/bench_rust_medium"
  "../bench/bench_rust_medium.pdb"
  "CMakeFiles/bench_rust_medium.dir/bench_rust_medium.cpp.o"
  "CMakeFiles/bench_rust_medium.dir/bench_rust_medium.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rust_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
