file(REMOVE_RECURSE
  "../bench/bench_overhead_sweep"
  "../bench/bench_overhead_sweep.pdb"
  "CMakeFiles/bench_overhead_sweep.dir/bench_overhead_sweep.cpp.o"
  "CMakeFiles/bench_overhead_sweep.dir/bench_overhead_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
