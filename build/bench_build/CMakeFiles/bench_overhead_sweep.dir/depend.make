# Empty dependencies file for bench_overhead_sweep.
# This may be replaced when dependencies are built.
