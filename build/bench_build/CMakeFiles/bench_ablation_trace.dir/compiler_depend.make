# Empty compiler generated dependencies file for bench_ablation_trace.
# This may be replaced when dependencies are built.
