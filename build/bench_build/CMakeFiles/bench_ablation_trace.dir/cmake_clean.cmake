file(REMOVE_RECURSE
  "../bench/bench_ablation_trace"
  "../bench/bench_ablation_trace.pdb"
  "CMakeFiles/bench_ablation_trace.dir/bench_ablation_trace.cpp.o"
  "CMakeFiles/bench_ablation_trace.dir/bench_ablation_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
