file(REMOVE_RECURSE
  "../bench/bench_table1_specs"
  "../bench/bench_table1_specs.pdb"
  "CMakeFiles/bench_table1_specs.dir/bench_table1_specs.cpp.o"
  "CMakeFiles/bench_table1_specs.dir/bench_table1_specs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
