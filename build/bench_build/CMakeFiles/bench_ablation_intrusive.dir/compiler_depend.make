# Empty compiler generated dependencies file for bench_ablation_intrusive.
# This may be replaced when dependencies are built.
