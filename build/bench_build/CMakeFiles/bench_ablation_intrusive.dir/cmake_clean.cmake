file(REMOVE_RECURSE
  "../bench/bench_ablation_intrusive"
  "../bench/bench_ablation_intrusive.pdb"
  "CMakeFiles/bench_ablation_intrusive.dir/bench_ablation_intrusive.cpp.o"
  "CMakeFiles/bench_ablation_intrusive.dir/bench_ablation_intrusive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intrusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
