// The debug hub: one port multiplexing many debuggee sessions.
//
// The paper debugs one fork tree through a port file the client tails
// (§5.3). At fleet scale the inversion works better: debuggees
// announce themselves TO a hub (hub-register, proto 1.5), the hub
// dials each one back as its single attached client, and human
// clients talk to the hub alone — discovering sessions with
// hub-sessions, subscribing events with hub-attach, addressing every
// other command by the session_id envelope field.
//
// Architecture:
//  - A sharded ReactorPool (one epoll loop per core). Each session is
//    pinned to shard_for(session_id): its dialed-back sockets and
//    event routing run there, unsynchronized with other sessions.
//    Each client connection is likewise pinned by its peer id.
//  - Events fan out through per-client bounded OutboundQueues with
//    drop-oldest backpressure; a stalled client loses its own oldest
//    events (counted) and nothing else slows down — the debuggee-side
//    invariant "the debuggee never blocks on a debugger" extends to
//    "no session blocks on any client".
//  - A short per-session backlog ring is replayed to late subscribers
//    so the stop-at-entry event is not lost to attach/registration
//    races.
//  - Proto-1.4 clients work unchanged: a token-less control connection
//    is lazily bound to the default (lowest live) session, the hub
//    answers ping itself with that session's capabilities plus "hub",
//    and forwards everything else — a full breakpoint session runs
//    through the hub without the client knowing it is one.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hub/session_registry.hpp"
#include "ipc/reactor_pool.hpp"
#include "ipc/socket.hpp"
#include "ipc/wire.hpp"
#include "support/result.hpp"

namespace dionea::hub {

class Hub {
 public:
  struct Options {
    std::uint16_t port = 0;     // 0 = ephemeral
    std::string port_file;      // optional: publish {pid, port} for discovery
    int shards = 0;             // 0 = min(hardware_concurrency, 8)
    size_t client_queue_frames = 256;   // per-client outbound bound
    size_t session_backlog_events = 64; // per-session replay ring
    int heartbeat_interval_millis = 1000;
    int dialback_timeout_millis = 2000;
    int flush_sweep_millis = 20;  // re-flush cadence for EAGAIN leftovers
  };

  Hub();  // all-default Options
  explicit Hub(Options options);
  ~Hub();
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  Status start();
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  int shard_count() const noexcept { return pool_.shard_count(); }
  int shard_for_session(std::int64_t id) const noexcept {
    return pool_.shard_for(static_cast<std::uint64_t>(id));
  }
  SessionRegistry& registry() noexcept { return registry_; }
  size_t peer_count() const;

  // ---- bench/test surface ----
  // A session with no debuggee behind it; commands addressed to it
  // fail, events injected into it route like real ones.
  std::int64_t register_synthetic(int pid = 0, int parent_pid = 0);
  // Route `event` as if session_id emitted it. Runs on the session's
  // shard (posted); returns immediately.
  void inject_event(std::int64_t session_id, ipc::wire::Value event);

  // Cumulative totals across all sessions.
  std::uint64_t events_routed() const;
  std::uint64_t events_dropped() const;

  // Current replay-ring depth for a session (0 if unknown).
  size_t backlog_size(std::int64_t session_id) const;

 private:
  struct PendingConn;
  struct Upstream;
  struct ClientPeer;

  // ---- shard 0: accept + hello dispatch ----
  void on_listener_readable();
  void on_pending_readable(const std::shared_ptr<PendingConn>& conn);
  void drop_pending(const std::shared_ptr<PendingConn>& conn);
  void handle_hello(const std::shared_ptr<PendingConn>& conn);
  void finish_register(const std::shared_ptr<PendingConn>& conn,
                       const ipc::wire::Value& frame);
  void adopt_control(const std::shared_ptr<PendingConn>& conn);
  void adopt_events(const std::shared_ptr<PendingConn>& conn);
  void pair_events(const std::shared_ptr<ClientPeer>& peer,
                   std::shared_ptr<PendingConn> conn);

  // ---- session shard ----
  void dial_back(std::int64_t session_id);
  void on_upstream_events(const std::shared_ptr<Upstream>& up);
  void on_upstream_control(const std::shared_ptr<Upstream>& up);
  void route_event(const std::shared_ptr<Upstream>& up,
                   ipc::wire::Value event);
  void deliver_frame(const std::shared_ptr<ClientPeer>& peer,
                     const std::string& frame,
                     const std::shared_ptr<Upstream>& from);
  void upstream_dead(const std::shared_ptr<Upstream>& up,
                     const std::string& why);

  // ---- peer shard ----
  void on_peer_control(const std::shared_ptr<ClientPeer>& peer);
  void handle_peer_request(const std::shared_ptr<ClientPeer>& peer,
                           ipc::wire::Value request);
  void reply_to_peer(const std::shared_ptr<ClientPeer>& peer,
                     const ipc::wire::Value& response);
  void cover_session(const std::shared_ptr<ClientPeer>& peer,
                     std::int64_t session_id);
  std::int64_t resolve_binding(const std::shared_ptr<ClientPeer>& peer,
                               std::int64_t requested);
  void drop_peer(const std::shared_ptr<ClientPeer>& peer,
                 const std::string& why);
  void schedule_flush(const std::shared_ptr<ClientPeer>& peer);
  void flush_peer(const std::shared_ptr<ClientPeer>& peer);
  void beacon_heartbeats(int shard);
  void sweep_flush(int shard);

  std::shared_ptr<Upstream> upstream_for(std::int64_t session_id) const;
  std::vector<std::shared_ptr<ClientPeer>> peers_snapshot() const;

  Options opts_;
  ipc::ReactorPool pool_;
  std::optional<ipc::TcpListener> listener_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  SessionRegistry registry_;

  mutable std::mutex upstreams_mutex_;
  std::unordered_map<std::int64_t, std::shared_ptr<Upstream>> upstreams_;

  mutable std::mutex peers_mutex_;
  std::uint64_t next_peer_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<ClientPeer>> peers_;
  // Events hellos that arrived before their control sibling.
  std::vector<std::shared_ptr<PendingConn>> waiting_events_;

  mutable std::mutex pending_mutex_;
  std::vector<std::shared_ptr<PendingConn>> pending_conns_;
};

}  // namespace dionea::hub
