#include "hub/session_registry.hpp"

namespace dionea::hub {

std::int64_t SessionRegistry::add(SessionRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.id = next_id_++;
  std::int64_t id = record.id;
  sessions_.emplace(id, std::move(record));
  return id;
}

bool SessionRegistry::find(std::int64_t id, SessionRecord* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

std::int64_t SessionRegistry::find_by_pid(int pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t best = 0;
  for (const auto& [id, rec] : sessions_) {
    if (rec.pid == pid && rec.alive) best = id;  // map order: last = newest
  }
  return best;
}

std::int64_t SessionRegistry::default_session() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, rec] : sessions_) {
    if (rec.alive) return id;
  }
  return 0;
}

void SessionRegistry::set_shard(std::int64_t id, int shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it != sessions_.end()) it->second.shard = shard;
}

bool SessionRegistry::mark_dead(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second.alive = false;
  return true;
}

bool SessionRegistry::remove(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.erase(id) > 0;
}

void SessionRegistry::update_stats(std::int64_t id, std::uint64_t routed,
                                   std::uint64_t dropped) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  it->second.events_routed = routed;
  it->second.events_dropped = dropped;
}

std::vector<SessionRecord> SessionRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionRecord> out;
  out.reserve(sessions_.size());
  for (const auto& [id, rec] : sessions_) out.push_back(rec);
  return out;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

size_t SessionRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [id, rec] : sessions_) {
    if (rec.alive) ++n;
  }
  return n;
}

}  // namespace dionea::hub
