// Session registry: the hub's directory of attached debuggees.
//
// A session is one debuggee process — a whole fork tree shows up as a
// chain of sessions linked by parent_pid, because fork handler C makes
// every child re-register itself the same way it rebinds its listener
// (the paper's §5.3 invariant, extended one hop: a child that rebuilds
// its debug server also re-announces itself to the hub).
//
// Records here are pure data: no sockets, no threads. The hub keeps
// live connection state (the dialed-back upstream, client queues)
// keyed by the ids allocated here, so the registry can be snapshotted
// for `hub-sessions` without touching any shard's reactor.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dionea::hub {

struct SessionRecord {
  std::int64_t id = 0;       // hub-allocated, unique for the hub's lifetime
  int pid = 0;               // debuggee pid (0 for synthetic sessions)
  int parent_pid = 0;        // forking parent's pid, 0 for roots
  std::uint16_t port = 0;    // debuggee's control-listener port
  int shard = 0;             // reactor shard the session is pinned to
  bool alive = true;         // upstream connection still healthy
  bool synthetic = false;    // bench-injected, no real debuggee behind it
  std::string kind = "debuggee";  // "debuggee" | "checkpoint" (1.6)
  int proto_major = 0;
  int proto_minor = 0;
  std::vector<std::string> capabilities;
  // Routing totals, maintained by the owning shard (single writer);
  // read via snapshot() which copies under the registry mutex after
  // the shard publishes with update_stats().
  std::uint64_t events_routed = 0;
  std::uint64_t events_dropped = 0;
};

class SessionRegistry {
 public:
  // Allocate an id and insert the record (record.id is assigned).
  // A re-registration from the same pid on a new port (the child after
  // exec-less fork reuses the pid only if the old one died; a restart)
  // gets a fresh session id — ids are never recycled.
  std::int64_t add(SessionRecord record);

  // Lookup by id; false if absent. Copies out (records are small).
  bool find(std::int64_t id, SessionRecord* out) const;

  // Most recent live session for a pid, 0 if none.
  std::int64_t find_by_pid(int pid) const;

  // Default session: the lowest-id live session — deterministic, and
  // in the common one-debuggee case it is *the* session. 0 if none.
  std::int64_t default_session() const;

  // Record the reactor shard the hub pinned the session to (the shard
  // is a function of the id, which add() itself allocates).
  void set_shard(std::int64_t id, int shard);

  bool mark_dead(std::int64_t id);
  bool remove(std::int64_t id);
  void update_stats(std::int64_t id, std::uint64_t routed,
                    std::uint64_t dropped);

  std::vector<SessionRecord> snapshot() const;
  size_t size() const;
  size_t live_count() const;

 private:
  mutable std::mutex mutex_;
  std::int64_t next_id_ = 1;
  std::map<std::int64_t, SessionRecord> sessions_;  // ordered: default = begin
};

}  // namespace dionea::hub
