#include "hub/outbound_queue.hpp"

#include <cerrno>
#include <sys/socket.h>
#include <sys/types.h>

namespace dionea::hub {

bool OutboundQueue::push(std::string frame) {
  ++queued_total_;
  bool evicted = false;
  while (frames_.size() >= max_frames_) {
    // Never evict a frame that has bytes on the wire: the stream's
    // framing would tear. Evict the oldest *unstarted* frame instead.
    size_t victim = (offset_ > 0 && frames_.size() > 1) ? 1 : 0;
    if (offset_ > 0 && frames_.size() == 1) break;  // sole frame is mid-write
    frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++dropped_;
    evicted = true;
  }
  frames_.push_back(std::move(frame));
  return !evicted;
}

Status OutboundQueue::flush(int fd, bool* made_progress) {
  if (made_progress != nullptr) *made_progress = false;
  while (!frames_.empty()) {
    const std::string& front = frames_.front();
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not a
    // process-killing SIGPIPE on the hub's shard thread.
    ssize_t n = ::send(fd, front.data() + offset_, front.size() - offset_,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::ok();
      if (errno == EINTR) continue;
      return errno_error("hub outbound flush", errno);
    }
    if (made_progress != nullptr && n > 0) *made_progress = true;
    offset_ += static_cast<size_t>(n);
    if (offset_ == front.size()) {
      frames_.pop_front();
      offset_ = 0;
    }
  }
  return Status::ok();
}

}  // namespace dionea::hub
