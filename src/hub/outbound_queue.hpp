// Bounded per-client outbound frame queue with drop-oldest
// backpressure.
//
// The hub's prime directive is the paper's: the debuggee must never
// block on the debugger. One slow or stalled client must therefore
// never be allowed to exert backpressure up the chain to a debuggee's
// event stream. Each client connection owns one OutboundQueue of
// fully-encoded frames; writers enqueue and move on, a nonblocking
// flush drains whatever the socket accepts right now, and when the
// queue is full the OLDEST unstarted frame is evicted (debugging wants
// the most recent state; a client that fell 256 events behind is
// better served by fresh stops than a faithful replay of stale ones).
// Evictions are counted — silence about loss would be worse than loss.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "support/result.hpp"

namespace dionea::hub {

class OutboundQueue {
 public:
  // max_frames: frames retained before drop-oldest kicks in (>= 1).
  explicit OutboundQueue(size_t max_frames = 256)
      : max_frames_(max_frames < 1 ? 1 : max_frames) {}

  // Enqueue one encoded frame (header + payload bytes). Returns false
  // if an older frame was evicted to make room. Never blocks.
  bool push(std::string frame);

  // Write as much as the socket accepts without blocking. Returns the
  // error on a dead socket; ok on success or EAGAIN. `*made_progress`
  // (optional) reports whether any byte left the queue.
  Status flush(int fd, bool* made_progress = nullptr);

  bool empty() const noexcept { return frames_.empty(); }
  size_t size() const noexcept { return frames_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t queued_total() const noexcept { return queued_total_; }

  void clear() noexcept {
    frames_.clear();
    offset_ = 0;
  }

 private:
  size_t max_frames_;
  std::deque<std::string> frames_;
  // Bytes of frames_.front() already written. A frame mid-write is
  // never evicted — dropping it would tear the stream's framing.
  size_t offset_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t queued_total_ = 0;
};

}  // namespace dionea::hub
