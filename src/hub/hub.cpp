#include "hub/hub.hpp"

#include <unistd.h>

#include <deque>
#include <set>
#include <utility>

#include "debugger/protocol.hpp"
#include "hub/outbound_queue.hpp"
#include "ipc/frame.hpp"
#include "ipc/port_file.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"

namespace dionea::hub {

namespace proto = dbg::proto;
using ipc::wire::Value;

namespace {

// Merge a typed response payload into an ok envelope (same shape the
// debug server produces, so clients cannot tell hub-local answers from
// forwarded ones).
Value ok_with(std::int64_t seq, const Value& payload) {
  Value v = proto::make_ok(seq);
  if (payload.is_object()) {
    for (const auto& [key, field] : payload.as_object()) v.set(key, field);
  }
  return v;
}

}  // namespace

// A connection whose role is not yet known: every accepted socket
// starts here (on shard 0) until its hello says what it is.
struct Hub::PendingConn {
  ipc::TcpStream stream;
  ipc::FrameReader reader;
  // 0 = awaiting hello; 1 = hub-register channel awaiting its request;
  // 2 = client events channel waiting for its control sibling.
  int stage = 0;
  proto::Hello hello;
};

// One registered debuggee session. The hub dials the debuggee back and
// becomes its single attached client; both sockets live on the
// session's shard. Synthetic sessions (bench/test) have no sockets.
struct Hub::Upstream {
  std::int64_t session_id = 0;
  int shard = 0;
  int pid = 0;
  bool synthetic = false;
  std::atomic<bool> dead{false};
  bool saw_terminated = false;  // session shard only

  ipc::TcpStream control;
  ipc::FrameReader control_reader;
  ipc::TcpStream events;
  ipc::FrameReader events_reader;
  std::mutex write_mutex;  // serializes control-channel writes

  // In-flight forwarded requests: upstream seq -> who asked.
  struct PendingRequest {
    std::weak_ptr<ClientPeer> peer;
    std::int64_t client_seq = 0;
  };
  std::mutex pending_mutex;
  std::int64_t next_seq = 1;
  std::map<std::int64_t, PendingRequest> pending;

  // Recent event frames (encoded, session_id stamped), replayed to a
  // peer the first time it covers this session — the stop-at-entry
  // event must reach clients that attach after the debuggee registers.
  std::mutex backlog_mutex;
  std::deque<std::string> backlog;

  std::atomic<std::uint64_t> routed{0};
  std::atomic<std::uint64_t> dropped{0};
};

// One client connection pair (control + events), pinned to a shard by
// peer id. Event frames are queued by whatever session shard routes
// them; flushes run on the peer's own shard.
struct Hub::ClientPeer {
  explicit ClientPeer(size_t queue_frames) : queue(queue_frames) {}

  std::uint64_t peer_id = 0;
  int shard = 0;
  std::string token;
  bool legacy = false;  // token-less (pre-1.5) client
  std::atomic<bool> gone{false};

  ipc::TcpStream control;
  ipc::FrameReader control_reader;
  std::mutex control_write_mutex;

  ipc::TcpStream events;  // invalid until paired
  std::atomic<int> events_fd{-1};

  std::mutex state_mutex;
  bool subscribed_all = false;
  std::set<std::int64_t> subscriptions;
  std::set<std::int64_t> replayed;  // sessions whose backlog was replayed
  std::int64_t bound_session = 0;   // lazy default binding (legacy path)

  std::mutex queue_mutex;
  OutboundQueue queue;
  std::atomic<bool> flush_scheduled{false};
};

Hub::Hub() : Hub(Options()) {}

Hub::Hub(Options options)
    : opts_(std::move(options)), pool_(opts_.shards) {}

Hub::~Hub() { stop(); }

Status Hub::start() {
  if (started_) return Status::ok();
  auto bound = ipc::TcpListener::bind(opts_.port);
  if (!bound.is_ok()) return bound.error();
  listener_.emplace(std::move(bound.value()));
  port_ = listener_->port();
  DIONEA_RETURN_IF_ERROR(pool_.start());
  pool_.shard(0).add_fd(listener_->raw_fd(), [this] { on_listener_readable(); });
  for (int s = 0; s < pool_.shard_count(); ++s) {
    pool_.shard(s).add_periodic(opts_.heartbeat_interval_millis,
                                [this, s] { beacon_heartbeats(s); });
    pool_.shard(s).add_periodic(opts_.flush_sweep_millis,
                                [this, s] { sweep_flush(s); });
  }
  if (!opts_.port_file.empty()) {
    ipc::PortRecord record;
    record.pid = static_cast<int>(::getpid());
    record.port = port_;
    (void)ipc::PortFile(opts_.port_file).publish(record);
  }
  started_ = true;
  DLOG_INFO("hub") << "hub listening on port " << port_ << " with "
                   << pool_.shard_count() << " shard(s), backend "
                   << pool_.shard(0).backend_name();
  return Status::ok();
}

void Hub::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Join every shard first: after this no callback can run, so the
  // teardown below races with nothing.
  pool_.stop();
  if (listener_) listener_->close();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& conn : pending_conns_) conn->stream.close();
    pending_conns_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    for (auto& [id, peer] : peers_) {
      peer->control.close();
      peer->events.close();
    }
    peers_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(upstreams_mutex_);
    for (auto& [id, up] : upstreams_) {
      up->control.close();
      up->events.close();
    }
    upstreams_.clear();
  }
  started_ = false;
}

size_t Hub::peer_count() const {
  std::lock_guard<std::mutex> lock(peers_mutex_);
  return peers_.size();
}

std::shared_ptr<Hub::Upstream> Hub::upstream_for(
    std::int64_t session_id) const {
  std::lock_guard<std::mutex> lock(upstreams_mutex_);
  auto it = upstreams_.find(session_id);
  return it == upstreams_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Hub::ClientPeer>> Hub::peers_snapshot() const {
  std::lock_guard<std::mutex> lock(peers_mutex_);
  std::vector<std::shared_ptr<ClientPeer>> out;
  out.reserve(peers_.size());
  for (const auto& [id, peer] : peers_) out.push_back(peer);
  return out;
}

std::uint64_t Hub::events_routed() const {
  std::lock_guard<std::mutex> lock(upstreams_mutex_);
  std::uint64_t total = 0;
  for (const auto& [id, up] : upstreams_)
    total += up->routed.load(std::memory_order_relaxed);
  return total;
}

size_t Hub::backlog_size(std::int64_t session_id) const {
  auto up = upstream_for(session_id);
  if (!up) return 0;
  std::lock_guard<std::mutex> lock(up->backlog_mutex);
  return up->backlog.size();
}

std::uint64_t Hub::events_dropped() const {
  std::lock_guard<std::mutex> lock(upstreams_mutex_);
  std::uint64_t total = 0;
  for (const auto& [id, up] : upstreams_)
    total += up->dropped.load(std::memory_order_relaxed);
  return total;
}

// ------------------------------------------------ accept + hello (shard 0)

void Hub::on_listener_readable() {
  while (true) {
    auto accepted = listener_->accept_timeout(0);
    if (!accepted.is_ok()) return;  // kTimeout = drained the backlog
    auto conn = std::make_shared<PendingConn>();
    conn->stream = std::move(accepted.value());
    (void)conn->stream.set_nodelay(true);
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_conns_.push_back(conn);
    }
    pool_.shard(0).add_fd(conn->stream.raw_fd(),
                          [this, conn] { on_pending_readable(conn); });
  }
}

void Hub::drop_pending(const std::shared_ptr<PendingConn>& conn) {
  if (conn->stream.valid()) {
    pool_.shard(0).remove_fd(conn->stream.raw_fd());
    conn->stream.close();
  }
  std::lock_guard<std::mutex> lock(pending_mutex_);
  std::erase(pending_conns_, conn);
}

void Hub::on_pending_readable(const std::shared_ptr<PendingConn>& conn) {
  if (conn->stage == 2) {
    // A waiting client events channel: the client writes nothing here,
    // so any readability is EOF or an error — reap it.
    char scratch[64];
    auto n = conn->stream.fd().read_some(scratch, sizeof(scratch));
    if (!n.is_ok() || n.value() == 0) drop_pending(conn);
    return;
  }
  auto frame = conn->reader.recv_timeout(conn->stream, 0);
  if (!frame.is_ok()) {
    if (frame.error().code() == ErrorCode::kTimeout) return;  // partial
    drop_pending(conn);
    return;
  }
  if (conn->stage == 0) {
    conn->hello = [&] {
      auto hello = proto::Hello::from_wire(frame.value());
      return hello.is_ok() ? hello.value() : proto::Hello{};
    }();
    handle_hello(conn);
  } else {
    finish_register(conn, frame.value());
  }
}

void Hub::handle_hello(const std::shared_ptr<PendingConn>& conn) {
  const proto::Hello& hello = conn->hello;
  if (hello.proto_major != proto::kProtoMajor) {
    (void)ipc::send_frame(
        conn->stream,
        proto::make_error(0, "protocol major version mismatch",
                          proto::kErrVersionMismatch));
    drop_pending(conn);
    return;
  }
  if (hello.channel == proto::kChannelHubRegister) {
    conn->stage = 1;  // the one-shot register request follows
    return;
  }
  if (hello.channel == proto::kChannelControl) {
    adopt_control(conn);
    return;
  }
  if (hello.channel == proto::kChannelEvents) {
    adopt_events(conn);
    return;
  }
  (void)ipc::send_frame(conn->stream,
                        proto::make_error(0, "unknown channel",
                                          proto::kErrBadRequest));
  drop_pending(conn);
}

void Hub::finish_register(const std::shared_ptr<PendingConn>& conn,
                          const Value& frame) {
  std::int64_t seq = frame.get_int("seq");
  if (frame.get_string("cmd") != proto::HubRegisterRequest::kName) {
    (void)ipc::send_frame(
        conn->stream, proto::make_error(seq, "expected hub-register",
                                        proto::kErrBadRequest));
    drop_pending(conn);
    return;
  }
  auto request = proto::HubRegisterRequest::from_wire(frame);
  if (!request.is_ok()) {
    (void)ipc::send_frame(
        conn->stream, proto::make_error(seq, request.error().to_string(),
                                        proto::kErrBadRequest));
    drop_pending(conn);
    return;
  }
  const auto& req = request.value();
  SessionRecord record;
  record.pid = req.pid;
  record.parent_pid = req.parent_pid;
  record.port = static_cast<std::uint16_t>(req.port);
  record.proto_major = req.proto_major;
  record.proto_minor = req.proto_minor;
  record.kind = req.kind.empty() ? "debuggee" : req.kind;
  record.capabilities = req.capabilities;
  std::int64_t id = registry_.add(std::move(record));
  int shard = shard_for_session(id);
  registry_.set_shard(id, shard);
  metrics::add(metrics::Counter::kHubRegistrations);
  metrics::gauge_set(metrics::Gauge::kHubSessions,
                     static_cast<std::int64_t>(registry_.live_count()));
  proto::HubRegisterResponse response;
  response.session_id = id;
  (void)ipc::send_frame(conn->stream, ok_with(seq, response.to_wire()));
  drop_pending(conn);  // one-shot channel: reply, then close
  DLOG_INFO("hub") << "session " << id << " registered (pid " << req.pid
                   << ", port " << req.port << ", shard " << shard << ", "
                   << (req.kind.empty() ? "debuggee" : req.kind) << ")";
  pool_.shard(shard).post([this, id] { dial_back(id); });
}

void Hub::adopt_control(const std::shared_ptr<PendingConn>& conn) {
  auto peer = std::make_shared<ClientPeer>(opts_.client_queue_frames);
  peer->token = conn->hello.client_token;
  peer->legacy = peer->token.empty();
  peer->control = std::move(conn->stream);
  peer->control_reader = std::move(conn->reader);
  std::shared_ptr<PendingConn> waiting;
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    peer->peer_id = next_peer_id_++;
    peer->shard = pool_.shard_for(peer->peer_id);
    peers_[peer->peer_id] = peer;
  }
  {
    // An events hello with our token may have arrived first.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& candidate : pending_conns_) {
      if (candidate->stage != 2) continue;
      if (candidate->hello.client_token != peer->token) continue;
      waiting = candidate;
      break;
    }
  }
  metrics::gauge_set(metrics::Gauge::kHubPeers,
                     static_cast<std::int64_t>(peer_count()));
  pool_.shard(0).remove_fd(peer->control.raw_fd());
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    std::erase(pending_conns_, conn);
  }
  pool_.shard(peer->shard).add_fd(peer->control.raw_fd(),
                                  [this, peer] { on_peer_control(peer); });
  if (waiting) pair_events(peer, waiting);
}

void Hub::adopt_events(const std::shared_ptr<PendingConn>& conn) {
  std::shared_ptr<ClientPeer> target;
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    // Token match first; a token-less events channel pairs with the
    // oldest token-less peer that still lacks one (pre-1.5 clients
    // connect control then events back to back, so "oldest unpaired"
    // is the sibling).
    std::uint64_t best = 0;
    for (const auto& [id, peer] : peers_) {
      if (peer->events_fd.load(std::memory_order_relaxed) >= 0) continue;
      if (peer->token != conn->hello.client_token) continue;
      if (best == 0 || id < best) {
        best = id;
        target = peer;
      }
    }
  }
  if (!target) {
    conn->stage = 2;  // wait for the control sibling
    return;
  }
  pair_events(target, conn);
}

void Hub::pair_events(const std::shared_ptr<ClientPeer>& peer,
                      std::shared_ptr<PendingConn> conn) {
  pool_.shard(0).remove_fd(conn->stream.raw_fd());
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    std::erase(pending_conns_, conn);
  }
  int fd = conn->stream.raw_fd();
  {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    peer->events = std::move(conn->stream);
    peer->events_fd.store(fd, std::memory_order_relaxed);
  }
  auto self = peer;
  pool_.shard(peer->shard).add_fd(fd, [this, self] {
    // The client never writes on its events channel: readability is
    // EOF or reset.
    char scratch[64];
    auto n = self->events.fd().read_some(scratch, sizeof(scratch));
    if (!n.is_ok() || n.value() == 0) drop_peer(self, "events channel closed");
  });
  // Anything queued while the channel was missing (backlog replays,
  // early events) goes out now; also start the liveness clock.
  Value beat = proto::make_event(proto::Event::kHeartbeat);
  beat.set("pid", static_cast<std::int64_t>(::getpid()));
  if (auto encoded = ipc::encode_frame(beat); encoded.is_ok()) {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    (void)peer->queue.push(std::move(encoded.value()));
  }
  schedule_flush(peer);
}

// ------------------------------------------------ session shard

void Hub::dial_back(std::int64_t session_id) {
  SessionRecord record;
  if (!registry_.find(session_id, &record)) return;
  auto up = std::make_shared<Upstream>();
  up->session_id = session_id;
  up->shard = shard_for_session(session_id);
  up->pid = record.pid;
  {
    std::lock_guard<std::mutex> lock(upstreams_mutex_);
    upstreams_[session_id] = up;
  }
  auto connect_channel = [&](const char* channel) -> Result<ipc::TcpStream> {
    auto stream =
        ipc::TcpStream::connect_retry(record.port, opts_.dialback_timeout_millis);
    if (!stream.is_ok()) return stream;
    (void)stream.value().set_nodelay(true);
    proto::Hello hello;
    hello.channel = channel;
    hello.pid = static_cast<int>(::getpid());
    hello.capabilities = {proto::kCapHub};
    DIONEA_RETURN_IF_ERROR(ipc::send_frame(stream.value(), hello.to_wire()));
    return stream;
  };
  auto control = connect_channel(proto::kChannelControl);
  if (!control.is_ok()) {
    upstream_dead(up, "dial-back (control) failed: " +
                          control.error().to_string());
    return;
  }
  auto events = connect_channel(proto::kChannelEvents);
  if (!events.is_ok()) {
    upstream_dead(up,
                  "dial-back (events) failed: " + events.error().to_string());
    return;
  }
  up->control = std::move(control.value());
  up->events = std::move(events.value());
  ipc::Reactor& reactor = pool_.shard(up->shard);
  reactor.add_fd(up->control.raw_fd(),
                 [this, up] { on_upstream_control(up); });
  reactor.add_fd(up->events.raw_fd(), [this, up] { on_upstream_events(up); });
}

void Hub::on_upstream_events(const std::shared_ptr<Upstream>& up) {
  while (!up->dead.load(std::memory_order_relaxed)) {
    auto frame = up->events_reader.recv_timeout(up->events, 0);
    if (!frame.is_ok()) {
      if (frame.error().code() == ErrorCode::kTimeout) return;
      upstream_dead(up, "events channel: " + frame.error().to_string());
      return;
    }
    route_event(up, std::move(frame.value()));
  }
}

void Hub::on_upstream_control(const std::shared_ptr<Upstream>& up) {
  while (!up->dead.load(std::memory_order_relaxed)) {
    auto frame = up->control_reader.recv_timeout(up->control, 0);
    if (!frame.is_ok()) {
      if (frame.error().code() == ErrorCode::kTimeout) return;
      upstream_dead(up, "control channel: " + frame.error().to_string());
      return;
    }
    Value response = std::move(frame.value());
    std::int64_t upstream_seq = response.get_int("re");
    Upstream::PendingRequest pending;
    {
      std::lock_guard<std::mutex> lock(up->pending_mutex);
      auto it = up->pending.find(upstream_seq);
      if (it == up->pending.end()) continue;  // late reply for a dead peer
      pending = it->second;
      up->pending.erase(it);
    }
    auto peer = pending.peer.lock();
    if (!peer) continue;
    response.set("re", pending.client_seq);
    response.set(proto::kSessionIdKey, up->session_id);
    reply_to_peer(peer, response);
  }
}

void Hub::route_event(const std::shared_ptr<Upstream>& up, Value event) {
  metrics::ScopedTimer timer(metrics::Histogram::kHubRouteNanos);
  proto::Event kind = proto::event_from_name(event.get_string("event"));
  if (kind == proto::Event::kHeartbeat) {
    // Debuggee liveness beacon: the hub is the consumer. Peers get the
    // hub's own heartbeats instead.
    return;
  }
  if (kind == proto::Event::kTerminated) up->saw_terminated = true;
  event.set(proto::kSessionIdKey, up->session_id);
  auto encoded = ipc::encode_frame(event);
  if (!encoded.is_ok()) return;
  const std::string& frame = encoded.value();
  auto peers = peers_snapshot();
  std::lock_guard<std::mutex> backlog_lock(up->backlog_mutex);
  up->backlog.push_back(frame);
  while (up->backlog.size() > opts_.session_backlog_events)
    up->backlog.pop_front();
  for (const auto& peer : peers) {
    deliver_frame(peer, frame, up);
  }
}

// Caller holds up->backlog_mutex (so a first-coverage replay and new
// events cannot interleave out of order).
void Hub::deliver_frame(const std::shared_ptr<ClientPeer>& peer,
                        const std::string& frame,
                        const std::shared_ptr<Upstream>& up) {
  if (peer->gone.load(std::memory_order_relaxed)) return;
  bool covered = false;
  bool first_coverage = false;
  {
    std::lock_guard<std::mutex> lock(peer->state_mutex);
    covered = peer->subscribed_all ||
              peer->subscriptions.count(up->session_id) > 0 ||
              peer->bound_session == up->session_id;
    if (covered)
      first_coverage = peer->replayed.insert(up->session_id).second;
  }
  if (!covered) return;
  std::uint64_t dropped_before;
  std::uint64_t delivered = 0;
  {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    dropped_before = peer->queue.dropped();
    if (first_coverage) {
      // The backlog already ends with the current frame.
      for (const auto& buffered : up->backlog) {
        (void)peer->queue.push(buffered);
        ++delivered;
      }
    } else {
      (void)peer->queue.push(frame);
      delivered = 1;
    }
    std::uint64_t evicted = peer->queue.dropped() - dropped_before;
    if (evicted > 0) {
      up->dropped.fetch_add(evicted, std::memory_order_relaxed);
      metrics::add(metrics::Counter::kHubEventsDropped, evicted);
    }
  }
  up->routed.fetch_add(delivered, std::memory_order_relaxed);
  metrics::add(metrics::Counter::kHubEventsRouted, delivered);
  schedule_flush(peer);
}

void Hub::upstream_dead(const std::shared_ptr<Upstream>& up,
                        const std::string& why) {
  if (up->dead.exchange(true)) return;
  DLOG_INFO("hub") << "session " << up->session_id << " down: " << why;
  registry_.mark_dead(up->session_id);
  metrics::gauge_set(metrics::Gauge::kHubSessions,
                     static_cast<std::int64_t>(registry_.live_count()));
  // Fail every in-flight request: its client deserves an error, not a
  // timeout.
  std::map<std::int64_t, Upstream::PendingRequest> orphaned;
  {
    std::lock_guard<std::mutex> lock(up->pending_mutex);
    orphaned.swap(up->pending);
  }
  for (const auto& [seq, pending] : orphaned) {
    auto peer = pending.peer.lock();
    if (!peer) continue;
    Value error = proto::make_error(pending.client_seq, "session died: " + why,
                                    proto::kErrBadRequest);
    error.set(proto::kSessionIdKey, up->session_id);
    reply_to_peer(peer, error);
  }
  // A connection that vanished without a clean `terminated` is a
  // crash as far as subscribers are concerned (same synthesis the
  // direct client does for itself).
  if (!up->saw_terminated && !up->synthetic) {
    Value crashed = proto::make_event(proto::Event::kProcessCrashed);
    crashed.set("pid", static_cast<std::int64_t>(up->pid));
    route_event(up, std::move(crashed));
  }
  ipc::Reactor& reactor = pool_.shard(up->shard);
  if (up->control.valid()) reactor.remove_fd(up->control.raw_fd());
  if (up->events.valid()) reactor.remove_fd(up->events.raw_fd());
  std::lock_guard<std::mutex> lock(up->write_mutex);
  up->control.close();
  up->events.close();
  // The Upstream object stays in upstreams_: its backlog keeps serving
  // late subscribers the session's last moments.
}

// ------------------------------------------------ peer shard

void Hub::on_peer_control(const std::shared_ptr<ClientPeer>& peer) {
  while (!peer->gone.load(std::memory_order_relaxed)) {
    auto frame = peer->control_reader.recv_timeout(peer->control, 0);
    if (!frame.is_ok()) {
      if (frame.error().code() == ErrorCode::kTimeout) return;
      drop_peer(peer, frame.error().to_string());
      return;
    }
    handle_peer_request(peer, std::move(frame.value()));
  }
}

void Hub::reply_to_peer(const std::shared_ptr<ClientPeer>& peer,
                        const Value& response) {
  Status st = Status::ok();
  {
    std::lock_guard<std::mutex> lock(peer->control_write_mutex);
    if (peer->gone.load(std::memory_order_relaxed)) return;
    if (!peer->control.valid()) return;
    st = ipc::send_frame(peer->control, response);
  }
  if (!st.is_ok()) drop_peer(peer, "control write: " + st.to_string());
}

std::int64_t Hub::resolve_binding(const std::shared_ptr<ClientPeer>& peer,
                                  std::int64_t requested) {
  if (requested != 0) return requested;
  {
    std::lock_guard<std::mutex> lock(peer->state_mutex);
    if (peer->bound_session != 0) return peer->bound_session;
  }
  // Lazy default binding: the first un-addressed command from a
  // (typically pre-1.5) client binds it to the default session, which
  // also subscribes its events channel — the capability-downgrade path.
  std::int64_t def = registry_.default_session();
  if (def == 0) return 0;
  {
    std::lock_guard<std::mutex> lock(peer->state_mutex);
    if (peer->bound_session == 0) peer->bound_session = def;
    def = peer->bound_session;
  }
  cover_session(peer, def);
  return def;
}

void Hub::cover_session(const std::shared_ptr<ClientPeer>& peer,
                        std::int64_t session_id) {
  auto up = upstream_for(session_id);
  if (!up) return;
  std::lock_guard<std::mutex> backlog_lock(up->backlog_mutex);
  {
    std::lock_guard<std::mutex> lock(peer->state_mutex);
    if (!peer->replayed.insert(session_id).second) return;
  }
  std::uint64_t delivered = 0;
  {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    for (const auto& buffered : up->backlog) {
      (void)peer->queue.push(buffered);
      ++delivered;
    }
  }
  if (delivered > 0) {
    up->routed.fetch_add(delivered, std::memory_order_relaxed);
    metrics::add(metrics::Counter::kHubEventsRouted, delivered);
    schedule_flush(peer);
  }
}

void Hub::handle_peer_request(const std::shared_ptr<ClientPeer>& peer,
                              Value request) {
  std::string cmd = request.get_string("cmd");
  std::int64_t seq = request.get_int("seq");
  std::int64_t addressed = request.get_int(proto::kSessionIdKey, 0);

  if (cmd == proto::PingRequest::kName) {
    proto::PingResponse response;
    response.heartbeat_ms = opts_.heartbeat_interval_millis;
    response.proto_major = proto::kProtoMajor;
    response.proto_minor = proto::kProtoMinor;
    std::set<std::string> caps = {proto::kCapHub, proto::kCapHeartbeat};
    std::int64_t sid = resolve_binding(peer, addressed);
    SessionRecord record;
    if (sid != 0 && registry_.find(sid, &record)) {
      response.pid = record.pid;
      caps.insert(record.capabilities.begin(), record.capabilities.end());
    }
    response.capabilities.assign(caps.begin(), caps.end());
    reply_to_peer(peer, ok_with(seq, response.to_wire()));
    return;
  }
  if (cmd == proto::HubSessionsRequest::kName) {
    proto::HubSessionsResponse response;
    for (const SessionRecord& record : registry_.snapshot()) {
      proto::HubSessionEntry entry;
      entry.session_id = record.id;
      entry.pid = record.pid;
      entry.parent_pid = record.parent_pid;
      entry.port = record.port;
      entry.alive = record.alive;
      entry.synthetic = record.synthetic;
      entry.shard = record.shard;
      entry.kind = record.kind;
      if (auto up = upstream_for(record.id)) {
        entry.events_routed =
            static_cast<std::int64_t>(up->routed.load(std::memory_order_relaxed));
        entry.events_dropped = static_cast<std::int64_t>(
            up->dropped.load(std::memory_order_relaxed));
      }
      response.sessions.push_back(std::move(entry));
    }
    reply_to_peer(peer, ok_with(seq, response.to_wire()));
    return;
  }
  if (cmd == proto::HubAttachRequest::kName) {
    auto parsed = proto::HubAttachRequest::from_wire(request);
    std::int64_t target = parsed.is_ok() ? parsed.value().session_id : 0;
    int attached = 0;
    if (target == 0) {
      {
        std::lock_guard<std::mutex> lock(peer->state_mutex);
        peer->subscribed_all = true;
      }
      for (const SessionRecord& record : registry_.snapshot()) {
        cover_session(peer, record.id);
        ++attached;
      }
    } else {
      if (!registry_.find(target, nullptr)) {
        reply_to_peer(peer, proto::make_error(seq, "unknown session",
                                              proto::kErrBadRequest));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(peer->state_mutex);
        peer->subscriptions.insert(target);
      }
      cover_session(peer, target);
      attached = 1;
    }
    proto::HubAttachResponse response;
    response.attached = attached;
    reply_to_peer(peer, ok_with(seq, response.to_wire()));
    return;
  }
  if (cmd == proto::HubDetachRequest::kName) {
    auto parsed = proto::HubDetachRequest::from_wire(request);
    std::int64_t target = parsed.is_ok() ? parsed.value().session_id : 0;
    int detached = 0;
    {
      std::lock_guard<std::mutex> lock(peer->state_mutex);
      if (target == 0) {
        detached = static_cast<int>(peer->subscriptions.size()) +
                   (peer->subscribed_all ? 1 : 0);
        peer->subscribed_all = false;
        peer->subscriptions.clear();
        peer->bound_session = 0;
      } else {
        detached = static_cast<int>(peer->subscriptions.erase(target));
        if (peer->bound_session == target) {
          peer->bound_session = 0;
          detached = detached == 0 ? 1 : detached;
        }
        peer->replayed.erase(target);  // a re-attach replays again
      }
    }
    proto::HubDetachResponse response;
    response.detached = detached;
    reply_to_peer(peer, ok_with(seq, response.to_wire()));
    return;
  }
  if (cmd == "detach") {
    // Detaching from the hub must not detach the hub from the
    // debuggee: answer locally, keep the upstream attached for other
    // (and future) clients.
    reply_to_peer(peer, proto::make_ok(seq));
    return;
  }

  // Everything else is a session command: forward it.
  std::int64_t sid = resolve_binding(peer, addressed);
  if (sid == 0) {
    reply_to_peer(peer, proto::make_error(seq, "no attached session",
                                          proto::kErrBadRequest));
    return;
  }
  auto up = upstream_for(sid);
  if (!up || up->synthetic || up->dead.load(std::memory_order_relaxed)) {
    const char* what = up == nullptr ? "unknown session"
                       : up->synthetic ? "synthetic session has no debuggee"
                                       : "session is dead";
    Value error = proto::make_error(seq, what, proto::kErrBadRequest);
    error.set(proto::kSessionIdKey, sid);
    reply_to_peer(peer, error);
    return;
  }
  Value forwarded = std::move(request);
  forwarded.mutable_object().erase(proto::kSessionIdKey);
  std::int64_t upstream_seq;
  {
    std::lock_guard<std::mutex> lock(up->pending_mutex);
    upstream_seq = up->next_seq++;
    up->pending[upstream_seq] = {peer, seq};
  }
  forwarded.set("seq", upstream_seq);
  Status st;
  {
    std::lock_guard<std::mutex> lock(up->write_mutex);
    st = up->control.valid()
             ? ipc::send_frame(up->control, forwarded)
             : Status(ErrorCode::kClosed, "upstream closed");
  }
  if (!st.is_ok()) {
    {
      std::lock_guard<std::mutex> lock(up->pending_mutex);
      up->pending.erase(upstream_seq);
    }
    Value error = proto::make_error(
        seq, "session unreachable: " + st.to_string(), proto::kErrBadRequest);
    error.set(proto::kSessionIdKey, sid);
    reply_to_peer(peer, error);
    pool_.shard(up->shard).post(
        [this, up, st] { upstream_dead(up, st.to_string()); });
  }
}

void Hub::drop_peer(const std::shared_ptr<ClientPeer>& peer,
                    const std::string& why) {
  if (peer->gone.exchange(true)) return;
  DLOG_DEBUG("hub") << "peer " << peer->peer_id << " dropped: " << why;
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    peers_.erase(peer->peer_id);
  }
  metrics::gauge_set(metrics::Gauge::kHubPeers,
                     static_cast<std::int64_t>(peer_count()));
  ipc::Reactor& reactor = pool_.shard(peer->shard);
  if (peer->control.valid()) reactor.remove_fd(peer->control.raw_fd());
  int efd = peer->events_fd.exchange(-1, std::memory_order_relaxed);
  if (efd >= 0) reactor.remove_fd(efd);
  {
    std::lock_guard<std::mutex> lock(peer->control_write_mutex);
    peer->control.close();
  }
  {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    peer->events.close();
    peer->queue.clear();
  }
}

void Hub::schedule_flush(const std::shared_ptr<ClientPeer>& peer) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (peer->flush_scheduled.exchange(true)) return;
  pool_.shard(peer->shard).post([this, peer] {
    peer->flush_scheduled.store(false, std::memory_order_relaxed);
    flush_peer(peer);
  });
}

void Hub::flush_peer(const std::shared_ptr<ClientPeer>& peer) {
  Status st = Status::ok();
  {
    std::lock_guard<std::mutex> lock(peer->queue_mutex);
    if (peer->gone.load(std::memory_order_relaxed)) return;
    int fd = peer->events_fd.load(std::memory_order_relaxed);
    if (fd < 0 || peer->queue.empty()) return;
    st = peer->queue.flush(fd);
  }
  if (!st.is_ok()) drop_peer(peer, "events flush: " + st.to_string());
}

void Hub::beacon_heartbeats(int shard) {
  Value beat = proto::make_event(proto::Event::kHeartbeat);
  beat.set("pid", static_cast<std::int64_t>(::getpid()));
  auto encoded = ipc::encode_frame(beat);
  if (!encoded.is_ok()) return;
  for (const auto& peer : peers_snapshot()) {
    if (peer->shard != shard) continue;
    if (peer->events_fd.load(std::memory_order_relaxed) < 0) continue;
    {
      std::lock_guard<std::mutex> lock(peer->queue_mutex);
      (void)peer->queue.push(encoded.value());
    }
    flush_peer(peer);
  }
}

void Hub::sweep_flush(int shard) {
  // Second chance for EAGAIN leftovers: schedule_flush() only fires on
  // new frames, so a queue stuck behind a full socket buffer drains
  // here once the client catches up.
  for (const auto& peer : peers_snapshot()) {
    if (peer->shard != shard) continue;
    bool needs_flush;
    {
      std::lock_guard<std::mutex> lock(peer->queue_mutex);
      needs_flush = !peer->queue.empty() &&
                    peer->events_fd.load(std::memory_order_relaxed) >= 0;
    }
    if (needs_flush) flush_peer(peer);
  }
}

// ------------------------------------------------ bench/test surface

std::int64_t Hub::register_synthetic(int pid, int parent_pid) {
  SessionRecord record;
  record.pid = pid;
  record.parent_pid = parent_pid;
  record.synthetic = true;
  record.proto_major = proto::kProtoMajor;
  record.proto_minor = proto::kProtoMinor;
  std::int64_t id = registry_.add(std::move(record));
  int shard = shard_for_session(id);
  registry_.set_shard(id, shard);
  auto up = std::make_shared<Upstream>();
  up->session_id = id;
  up->shard = shard;
  up->pid = pid;
  up->synthetic = true;
  {
    std::lock_guard<std::mutex> lock(upstreams_mutex_);
    upstreams_[id] = up;
  }
  metrics::add(metrics::Counter::kHubRegistrations);
  metrics::gauge_set(metrics::Gauge::kHubSessions,
                     static_cast<std::int64_t>(registry_.live_count()));
  return id;
}

void Hub::inject_event(std::int64_t session_id, Value event) {
  pool_.reactor_for(static_cast<std::uint64_t>(session_id))
      .post([this, session_id, event = std::move(event)]() mutable {
        auto up = upstream_for(session_id);
        if (up && !up->dead.load(std::memory_order_relaxed))
          route_event(up, std::move(event));
      });
}

}  // namespace dionea::hub
