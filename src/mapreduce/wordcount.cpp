#include "mapreduce/wordcount.hpp"

#include <memory>

#include "mp/pool.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"

namespace dionea::mapreduce {

WordCounts count_words(const std::string& text) {
  WordCounts counts;
  std::string lowered = strings::to_lower(text);
  for (const std::string& word : strings::split_whitespace(lowered)) {
    if (!strings::is_alpha_word(word)) continue;
    if (is_reserved_word(word)) continue;
    ++counts[word];
  }
  return counts;
}

void merge_counts(WordCounts* total, const WordCounts& addend) {
  for (const auto& [word, count] : addend) (*total)[word] += count;
}

Result<WordCounts> count_corpus(const Corpus& corpus) {
  WordCounts total;
  for (const std::string& path : corpus.files()) {
    DIONEA_ASSIGN_OR_RETURN(std::string text, read_file(path));
    merge_counts(&total, count_words(text));
  }
  return total;
}

Result<WordCounts> pool_count_corpus(const Corpus& corpus, int workers) {
  using vm::Value;
  auto worker_fn = [](const Value& task) -> Value {
    auto text = read_file(task.as_str());
    Value out = Value::new_map();
    if (!text.is_ok()) return out;  // vanished file: empty partial
    for (const auto& [word, count] : count_words(text.value())) {
      out.as_map()->items[word] = Value(count);
    }
    return out;
  };
  DIONEA_ASSIGN_OR_RETURN(mp::Pool pool, mp::Pool::create(workers, worker_fn));
  std::vector<Value> tasks;
  tasks.reserve(corpus.files().size());
  for (const std::string& path : corpus.files()) {
    tasks.push_back(Value::str(path));
  }
  DIONEA_ASSIGN_OR_RETURN(std::vector<Value> partials, pool.map(tasks));
  DIONEA_RETURN_IF_ERROR(pool.shutdown());

  WordCounts total;
  for (const Value& partial : partials) {
    for (const auto& [word, count] : partial.as_map()->items) {
      total[word] += count.as_int();
    }
  }
  return total;
}

CountsDigest digest(const WordCounts& counts) {
  CountsDigest out;
  out.fnv = 1469598103934665603ULL;
  auto mix = [&out](const std::string& text) {
    for (char c : text) {
      out.fnv ^= static_cast<unsigned char>(c);
      out.fnv *= 1099511628211ULL;
    }
  };
  for (const auto& [word, count] : counts) {
    out.unique += 1;
    out.total += count;
    mix(word);
    mix(":" + std::to_string(count));
  }
  return out;
}

namespace {

// The reserved-word map literal shared by both program variants.
std::string reserved_map_literal() {
  std::string out = "{";
  bool first = true;
  for (const std::string& word : reserved_words()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + word + "\": true";
  }
  return out + "}";
}

// Map + local-reduce shared by both program variants. `reserved` is a
// global so forked workers inherit it.
constexpr const char* kCountFileFn = R"(
fn count_file(path, counts)
  text = lower(read_file(path))
  for w in words(text)
    if is_alpha(w) and not contains(reserved, w)
      counts[w] = get(counts, w, 0) + 1
    end
  end
  return counts
end
)";

}  // namespace

std::string wordcount_program(const std::string& root, int workers) {
  std::string program;
  program += "reserved = " + reserved_map_literal() + "\n";
  program += kCountFileFn;
  program += strings::format(R"(
fn worker_main(tasks, partials)
  counts = {}
  while true
    path = ipc_pop(tasks)
    if path == nil
      break
    end
    count_file(path, counts)
  end
  ipc_push(partials, counts)
  return nil
end

nworkers = %d
tasks = ipc_queue()
partials = ipc_queue()
files = walk_files("%s")
for f in files
  ipc_push(tasks, f)
end
w = 0
while w < nworkers
  ipc_push(tasks, nil)
  w = w + 1
end

pids = []
w = 0
while w < nworkers
  pid = fork()
  if pid == 0
    worker_main(tasks, partials)
    exit(0)
  end
  push(pids, pid)
  w = w + 1
end

total = {}
got = 0
while got < nworkers
  part = ipc_pop(partials)
  for k in part
    total[k] = get(total, k, 0) + part[k]
  end
  got = got + 1
end
for p in pids
  waitpid(p)
end
tot = 0
for k in total
  tot = tot + total[k]
end
puts("unique=" + to_s(len(total)) + " total=" + to_s(tot))
)",
                             workers, root.c_str());
  return program;
}

std::string wordcount_program_serial(const std::string& root) {
  std::string program;
  program += "reserved = " + reserved_map_literal() + "\n";
  program += kCountFileFn;
  program += strings::format(R"(
total = {}
for f in walk_files("%s")
  count_file(f, total)
end
tot = 0
for k in total
  tot = tot + total[k]
end
puts("unique=" + to_s(len(total)) + " total=" + to_s(tot))
)",
                             root.c_str());
  return program;
}

}  // namespace dionea::mapreduce
