#include "mapreduce/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"

namespace dionea::mapreduce {
namespace {

// A code-flavoured vocabulary: rank-r identifier drawn with Zipf
// weight 1/(r+1). Word lengths grow with rank, like real identifiers.
std::vector<std::string> build_vocabulary(int size, Rng& rng) {
  std::vector<std::string> words;
  words.reserve(static_cast<size_t>(size));
  for (int rank = 0; rank < size; ++rank) {
    int min_len = 2 + rank / 200;
    words.push_back(rng.next_word(min_len, min_len + 6));
  }
  return words;
}

int zipf_rank(Rng& rng, int size) {
  // Inverse-CDF sampling over 1/(r+1) weights, approximated via
  // exp-of-uniform — cheap and close enough for a corpus.
  double u = rng.next_double();
  double r = std::pow(static_cast<double>(size), u) - 1.0;
  int rank = static_cast<int>(r);
  return std::clamp(rank, 0, size - 1);
}

}  // namespace

const std::vector<std::string>& reserved_words() {
  static const std::vector<std::string> kReserved = {
      "fn",  "if",    "elif",  "else",  "while",    "for", "in",
      "end", "return", "break", "continue", "true", "false", "nil",
      "and", "or",    "not"};
  return kReserved;
}

bool is_reserved_word(const std::string& word) {
  const auto& reserved = reserved_words();
  return std::find(reserved.begin(), reserved.end(), word) != reserved.end();
}

CorpusSpec dionea_trunk_spec() {
  CorpusSpec spec;
  spec.name = "dionea-trunk-r656";
  spec.file_count = 48;
  spec.target_bytes_per_file = 6 * 1024;
  spec.vocabulary_size = 600;
  spec.seed = 0xD10;
  return spec;
}

CorpusSpec rust_master_spec() {
  CorpusSpec spec;
  spec.name = "rust-master-7613b15";
  spec.file_count = 160;
  spec.target_bytes_per_file = 8 * 1024;
  spec.vocabulary_size = 1600;
  spec.seed = 0x4057;
  return spec;
}

CorpusSpec linux_3_18_spec() {
  CorpusSpec spec;
  spec.name = "linux-3.18.1";
  spec.file_count = 420;
  spec.target_bytes_per_file = 10 * 1024;
  spec.vocabulary_size = 4000;
  spec.seed = 0x11AE;
  return spec;
}

CorpusSpec scaled_spec(CorpusSpec base, double factor) {
  base.file_count = std::max(1, static_cast<int>(base.file_count * factor));
  base.name += strings::format("-x%.2f", factor);
  return base;
}

Result<Corpus> Corpus::generate(const CorpusSpec& spec,
                                const std::string& root) {
  DIONEA_RETURN_IF_ERROR(make_dir(root));
  Corpus corpus(spec, root);
  Rng rng(spec.seed);
  std::vector<std::string> vocabulary =
      build_vocabulary(spec.vocabulary_size, rng);
  const auto& reserved = reserved_words();

  for (int file_index = 0; file_index < spec.file_count; ++file_index) {
    int dir_index = file_index / std::max(1, spec.directory_fanout);
    std::string dir = root + strings::format("/src%03d", dir_index);
    DIONEA_RETURN_IF_ERROR(make_dir(dir));
    std::string path = dir + strings::format("/mod_%04d.ml", file_index);

    std::string text;
    text.reserve(static_cast<size_t>(spec.target_bytes_per_file) + 128);
    int column = 0;
    while (static_cast<int>(text.size()) < spec.target_bytes_per_file) {
      // Token mix modelled on source code: ~70% identifiers, ~15%
      // reserved words, ~10% numbers, ~5% punctuation runs.
      double kind = rng.next_double();
      std::string token;
      if (kind < 0.70) {
        token = vocabulary[static_cast<size_t>(
            zipf_rank(rng, spec.vocabulary_size))];
      } else if (kind < 0.85) {
        token = reserved[rng.next_below(reserved.size())];
      } else if (kind < 0.95) {
        token = std::to_string(rng.next_range(0, 99999));
      } else {
        static const char* kPunct[] = {"(", ")", "==", "+", "-",
                                       "[", "]", "=",  "*", "%"};
        token = kPunct[rng.next_below(10)];
      }
      text += token;
      column += static_cast<int>(token.size()) + 1;
      if (column > 72) {
        text += '\n';
        column = 0;
      } else {
        text += ' ';
      }
    }
    text += '\n';
    DIONEA_RETURN_IF_ERROR(write_file(path, text));
    corpus.bytes_written_ += static_cast<std::int64_t>(text.size());
    corpus.files_.push_back(std::move(path));
  }
  std::sort(corpus.files_.begin(), corpus.files_.end());
  return corpus;
}

}  // namespace dionea::mapreduce
