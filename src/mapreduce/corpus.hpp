// Synthetic source-tree corpora.
//
// The paper's overhead evaluation (§7) counts word frequencies over
// three real source trees: Dionea trunk r656 (small, Fig. 9), Rust
// master 7613b15 (medium), Linux 3.18.1 (large, Fig. 10). Those trees
// are not shipped here; a deterministic generator produces trees with
// the properties the workload actually exercises — many text files of
// code-like tokens (Zipf-distributed identifiers, reserved words,
// numbers and punctuation that the mapper must filter). Only relative
// size matters for the overhead trend; wall-clock is scaled down from
// the paper's minutes to seconds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace dionea::mapreduce {

struct CorpusSpec {
  std::string name;
  int file_count = 16;
  int target_bytes_per_file = 8 * 1024;
  int directory_fanout = 8;     // files per generated subdirectory
  int vocabulary_size = 800;    // distinct identifiers (Zipf-ranked)
  std::uint64_t seed = 0x5eed;

  std::int64_t total_bytes() const {
    return static_cast<std::int64_t>(file_count) * target_bytes_per_file;
  }
};

// Presets standing in for the paper's three trees (names kept for the
// experiment index; sizes tuned for seconds-scale benches).
CorpusSpec dionea_trunk_spec();   // "Dionea source code (trunk r656)"
CorpusSpec rust_master_spec();    // "Rust's source code (master 7613b15)"
CorpusSpec linux_3_18_spec();     // "Linux 3.18.1"
// Scale a spec's file count by `factor` (sweep benches).
CorpusSpec scaled_spec(CorpusSpec base, double factor);

class Corpus {
 public:
  // Generate the tree under `root` (created if needed). Deterministic
  // for a given spec.
  static Result<Corpus> generate(const CorpusSpec& spec,
                                 const std::string& root);

  const std::string& root() const noexcept { return root_; }
  const CorpusSpec& spec() const noexcept { return spec_; }
  const std::vector<std::string>& files() const noexcept { return files_; }
  std::int64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  Corpus(CorpusSpec spec, std::string root)
      : spec_(std::move(spec)), root_(std::move(root)) {}
  CorpusSpec spec_;
  std::string root_;
  std::vector<std::string> files_;
  std::int64_t bytes_written_ = 0;
};

// The reserved words the §7 mapper excludes ("maps words that contain
// only letters and are not reserved words").
const std::vector<std::string>& reserved_words();
bool is_reserved_word(const std::string& word);

}  // namespace dionea::mapreduce
