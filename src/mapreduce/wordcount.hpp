// The §7 evaluation workload: word frequency by MapReduce.
//
// "This program maps words that contain only letters and are not
// reserved words, then the program reduces the values obtained in the
// map phase to calculate the frequency of each word."
//
// Three implementations of the same computation:
//   * count_words / count_corpus — native C++ reference (ground truth
//     for tests and the native baseline in benches);
//   * pool_count_corpus          — C++ MapReduce over mp::Pool
//     (multiprocessing analog, one task per file, Fig. 8 shape);
//   * wordcount_program          — the MiniLang debuggee: forks worker
//     processes fed by ipc queues; this is what runs under the debug
//     server in the Fig. 9 / Fig. 10 benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mapreduce/corpus.hpp"
#include "support/result.hpp"

namespace dionea::mapreduce {

using WordCounts = std::map<std::string, std::int64_t>;

// Lowercased alpha-only non-reserved words of `text`.
WordCounts count_words(const std::string& text);

// Fold `addend` into `total` (the reduce step).
void merge_counts(WordCounts* total, const WordCounts& addend);

// Sequential native count over a generated corpus.
Result<WordCounts> count_corpus(const Corpus& corpus);

// Parallel native count: one mp::Pool task per file.
Result<WordCounts> pool_count_corpus(const Corpus& corpus, int workers);

// Deterministic digest for comparing counts across implementations
// and processes: (unique words, total occurrences, order-sensitive
// FNV-1a over "word:count" pairs).
struct CountsDigest {
  std::int64_t unique = 0;
  std::int64_t total = 0;
  std::uint64_t fnv = 0;
  bool operator==(const CountsDigest&) const = default;
};
CountsDigest digest(const WordCounts& counts);

// MiniLang multi-process word-count over the corpus at `root` with
// `workers` forked processes. The program prints exactly one line:
//   "unique=<n> total=<n>"
// and exits 0. This is the paper's debuggee program (§6.3/§7).
std::string wordcount_program(const std::string& root, int workers);

// Single-process MiniLang variant (no fork) — used by ablation benches
// to separate interpreter-tracing cost from fork-handler cost.
std::string wordcount_program_serial(const std::string& root);

}  // namespace dionea::mapreduce
