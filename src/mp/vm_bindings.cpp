#include "mp/vm_bindings.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "mp/mpqueue.hpp"
#include "mp/serialize.hpp"
#include "support/strings.hpp"
#include "vm/sync.hpp"
#include "vm/vm.hpp"

namespace dionea::mp {
namespace {

using vm::InterpThread;
using vm::NativeResult;
using vm::Value;
using vm::Vm;

class VmIpcQueue : public vm::ForeignObject {
 public:
  explicit VmIpcQueue(MpQueue queue) : queue_(std::move(queue)) {}
  std::string_view type_name() const noexcept override { return "ipc_queue"; }
  MpQueue& queue() noexcept { return queue_; }

 private:
  MpQueue queue_;
};

class VmPipe : public vm::ForeignObject {
 public:
  explicit VmPipe(ipc::Pipe pipe) : pipe_(std::move(pipe)) {}
  std::string_view type_name() const noexcept override { return "pipe"; }
  ipc::Pipe& pipe() noexcept { return pipe_; }

 private:
  ipc::Pipe pipe_;
};

vm::VmError type_error(Vm& vm, InterpThread& th, const char* fn,
                       const char* expected) {
  return vm.runtime_error(
      th, strings::format("%s: expected %s", fn, expected));
}

VmIpcQueue* as_ipc_queue(const Value& value) {
  if (value.kind() != vm::ValueKind::kForeign) return nullptr;
  return dynamic_cast<VmIpcQueue*>(value.as_foreign().get());
}

VmPipe* as_pipe(const Value& value) {
  if (value.kind() != vm::ValueKind::kForeign) return nullptr;
  return dynamic_cast<VmPipe*>(value.as_foreign().get());
}

vm::VmError interrupt_error(Vm& vm, InterpThread& th) {
  if (th.interrupt.load(std::memory_order_relaxed) ==
      vm::InterruptReason::kDeadlock) {
    return vm.runtime_error(th, "deadlock detected (fatal)",
                            vm::VmErrorKind::kFatalDeadlock);
  }
  return vm.runtime_error(th, "killed", vm::VmErrorKind::kThreadKill);
}

}  // namespace

void install_vm_bindings(Vm& vm) {
  vm.define_native("ipc_queue", 0, 0,
                   [](Vm& v, InterpThread& th, std::vector<Value>& /*args*/)
                       -> NativeResult {
                     auto queue = MpQueue::create();
                     if (!queue.is_ok()) {
                       return v.runtime_error(
                           th, "ipc_queue: " + queue.error().to_string());
                     }
                     return Value(std::shared_ptr<vm::ForeignObject>(
                         std::make_shared<VmIpcQueue>(
                             std::move(queue).value())));
                   });

  vm.define_native(
      "ipc_push", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmIpcQueue* queue = as_ipc_queue(args[0]);
        if (queue == nullptr) return type_error(v, th, "ipc_push", "ipc_queue");
        Status pushed = queue->queue().push_value(args[1]);
        if (!pushed.is_ok()) {
          return v.runtime_error(th, "ipc_push: " + pushed.to_string());
        }
        return args[0];
      });

  vm.define_native(
      "ipc_pop", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmIpcQueue* queue = as_ipc_queue(args[0]);
        if (queue == nullptr) return type_error(v, th, "ipc_pop", "ipc_queue");
        // Process-level wait: another PROCESS can feed us, so this is
        // IoBlocked, not BlockedForever — the deadlock detector must
        // not treat it as unwakeable (contrast Listing 5's queue()).
        Vm::BlockScope scope(v, th, vm::ThreadState::kIoBlocked, "ipc_pop");
        while (true) {
          auto popped = queue->queue().pop_value_timeout(
              Vm::kWaitSliceMillis);
          if (!popped.is_ok()) {
            return v.runtime_error(th,
                                   "ipc_pop: " + popped.error().to_string());
          }
          if (popped.value().has_value()) return std::move(*popped.value());
          if (th.interrupt.load(std::memory_order_relaxed) !=
              vm::InterruptReason::kNone) {
            return interrupt_error(v, th);
          }
        }
      });

  vm.define_native(
      "ipc_try_pop", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmIpcQueue* queue = as_ipc_queue(args[0]);
        if (queue == nullptr || !args[1].is_int()) {
          return type_error(v, th, "ipc_try_pop", "ipc_queue and timeout ms");
        }
        int timeout = static_cast<int>(args[1].as_int());
        Vm::BlockScope scope(v, th, vm::ThreadState::kIoBlocked,
                             "ipc_try_pop");
        auto popped = queue->queue().pop_value_timeout(timeout);
        if (!popped.is_ok()) {
          return v.runtime_error(th,
                                 "ipc_try_pop: " + popped.error().to_string());
        }
        if (!popped.value().has_value()) return Value();
        return std::move(*popped.value());
      });

  vm.define_native(
      "ipc_size", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmIpcQueue* queue = as_ipc_queue(args[0]);
        if (queue == nullptr) return type_error(v, th, "ipc_size", "ipc_queue");
        return Value(static_cast<std::int64_t>(queue->queue().size()));
      });

  vm.define_native("mp_pipe", 0, 0,
                   [](Vm& v, InterpThread& th, std::vector<Value>&)
                       -> NativeResult {
                     auto pipe = ipc::Pipe::create();
                     if (!pipe.is_ok()) {
                       return v.runtime_error(
                           th, "mp_pipe: " + pipe.error().to_string());
                     }
                     return Value(std::shared_ptr<vm::ForeignObject>(
                         std::make_shared<VmPipe>(std::move(pipe).value())));
                   });

  vm.define_native(
      "pipe_write", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmPipe* pipe = as_pipe(args[0]);
        if (pipe == nullptr) return type_error(v, th, "pipe_write", "pipe");
        if (!pipe->pipe().write_end().valid()) {
          return v.runtime_error(th, "pipe_write: write end closed");
        }
        auto bytes = serialize(args[1]);
        if (!bytes.is_ok()) {
          return v.runtime_error(th,
                                 "pipe_write: " + bytes.error().to_string());
        }
        std::uint32_t len = static_cast<std::uint32_t>(bytes.value().size());
        char header[4];
        std::memcpy(header, &len, sizeof(len));
        Vm::BlockScope scope(v, th, vm::ThreadState::kIoBlocked, "pipe_write");
        Status written =
            pipe->pipe().write_end().write_all(header, sizeof(header));
        if (written.is_ok()) {
          written = pipe->pipe().write_end().write_all(bytes.value().data(),
                                                       bytes.value().size());
        }
        if (!written.is_ok()) {
          return v.runtime_error(th, "pipe_write: " + written.to_string());
        }
        return Value(true);
      });

  vm.define_native(
      "pipe_read", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmPipe* pipe = as_pipe(args[0]);
        if (pipe == nullptr) return type_error(v, th, "pipe_read", "pipe");
        ipc::Fd& fd = pipe->pipe().read_end();
        if (!fd.valid()) {
          return v.runtime_error(th, "pipe_read: read end closed");
        }
        Vm::BlockScope scope(v, th, vm::ThreadState::kIoBlocked, "pipe_read");
        // Wait for data in interruptible slices.
        while (true) {
          pollfd pfd{fd.get(), POLLIN, 0};
          int rc = ::poll(&pfd, 1, Vm::kWaitSliceMillis);
          if (rc < 0 && errno != EINTR) {
            return v.runtime_error(
                th, std::string("pipe_read: ") + std::strerror(errno));
          }
          if (rc > 0) break;
          if (th.interrupt.load(std::memory_order_relaxed) !=
              vm::InterruptReason::kNone) {
            return interrupt_error(v, th);
          }
        }
        char header[4];
        Status got = fd.read_exact(header, sizeof(header));
        if (!got.is_ok()) {
          if (got.error().code() == ErrorCode::kClosed) return Value();  // EOF
          return v.runtime_error(th, "pipe_read: " + got.to_string());
        }
        std::uint32_t len;
        std::memcpy(&len, header, sizeof(len));
        std::string bytes(len, '\0');
        if (len > 0) {
          got = fd.read_exact(bytes.data(), len);
          if (!got.is_ok()) {
            return v.runtime_error(th, "pipe_read: " + got.to_string());
          }
        }
        auto value = deserialize(bytes);
        if (!value.is_ok()) {
          return v.runtime_error(th, "pipe_read: " + value.error().to_string());
        }
        return std::move(value).value();
      });

  vm.define_native(
      "pipe_close_read", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmPipe* pipe = as_pipe(args[0]);
        if (pipe == nullptr) return type_error(v, th, "pipe_close_read", "pipe");
        pipe->pipe().close_read();
        return Value();
      });

  vm.define_native(
      "pipe_close_write", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        VmPipe* pipe = as_pipe(args[0]);
        if (pipe == nullptr) {
          return type_error(v, th, "pipe_close_write", "pipe");
        }
        pipe->pipe().close_write();
        return Value();
      });
}

}  // namespace dionea::mp
