// Inter-PROCESS queue: "The queue is implemented using a semaphore and
// a pipe" (§6.3, describing Python multiprocessing's SimpleQueue).
//
// Layout: a process-shared anonymous mapping holds a counting
// semaphore (items available) plus two process-shared mutexes (writer
// and reader serialization — messages can exceed PIPE_BUF, so pipe
// writes are not atomic on their own). Payloads travel through the
// pipe as 4-byte-length-prefixed pickle bytes.
//
// Create the queue BEFORE forking; both sides then share the mapping
// and the pipe fds. Pops are slice-interruptible (sem_timedwait) so a
// VM thread blocked here can be killed at shutdown.
#pragma once

#include <semaphore.h>

#include <cstdint>
#include <optional>
#include <string>

#include "ipc/pipe.hpp"
#include "support/result.hpp"
#include "vm/value.hpp"

namespace dionea::mp {

class MpQueue {
 public:
  static Result<MpQueue> create();

  MpQueue(MpQueue&& other) noexcept;
  MpQueue& operator=(MpQueue&& other) noexcept;
  MpQueue(const MpQueue&) = delete;
  MpQueue& operator=(const MpQueue&) = delete;
  ~MpQueue();

  // ---- raw byte API ----
  Status push_bytes(std::string_view bytes);
  // Blocks until an item arrives; interrupt_check (may be null) is
  // polled between wait slices — return true to abort with kUnavailable.
  Result<std::string> pop_bytes(bool (*interrupt_check)(void*) = nullptr,
                                void* interrupt_arg = nullptr);
  // kTimeout as nullopt.
  Result<std::optional<std::string>> pop_bytes_timeout(int timeout_millis);

  // ---- pickled vm::Value API ----
  Status push_value(const vm::Value& value);
  Result<vm::Value> pop_value();
  Result<std::optional<vm::Value>> pop_value_timeout(int timeout_millis);

  // Approximate item count (semaphore value).
  int size() const;

  // Close this process's copy of the write/read end (fd hygiene after
  // fork — the exact discipline whose absence is the §6.4 bug).
  void close_write() noexcept { pipe_.close_write(); }
  void close_read() noexcept { pipe_.close_read(); }

 private:
  struct Shared {
    sem_t items;
    pthread_mutex_t write_lock;
    pthread_mutex_t read_lock;
  };
  MpQueue(Shared* shared, ipc::Pipe pipe)
      : shared_(shared), pipe_(std::move(pipe)) {}

  Shared* shared_ = nullptr;
  ipc::Pipe pipe_;
};

}  // namespace dionea::mp
