// MiniLang bindings for the mp:: substrate — what `import
// multiprocessing` / `IO.pipe` give the paper's debuggees.
//
//   q = ipc_queue()       inter-process queue (semaphore + pipe, §6.3)
//   ipc_push(q, v)        pickle + enqueue
//   ipc_pop(q)            blocking dequeue (IoBlocked: a process-level
//                         wait, invisible to the deadlock detector —
//                         unlike queue(), which is inter-thread only)
//   ipc_try_pop(q, ms)    timed dequeue; nil on timeout
//   ipc_size(q)           approximate item count
//
//   p = mp_pipe()         raw pipe pair (the `IO.pipe` of §6.4)
//   pipe_write(p, v)      framed pickled value
//   pipe_read(p)          blocking read; nil on EOF
//   pipe_close_read(p) / pipe_close_write(p)
//
// Create queues/pipes BEFORE fork(); both sides then share them.
#pragma once

namespace dionea::vm {
class Vm;
}

namespace dionea::mp {

void install_vm_bindings(vm::Vm& vm);

}  // namespace dionea::mp
