#include "mp/serialize.hpp"

namespace dionea::mp {

using ipc::wire::Array;
using ipc::wire::Object;
using vm::Value;
using WireValue = ipc::wire::Value;

Result<WireValue> to_wire(const Value& value) {
  switch (value.kind()) {
    case vm::ValueKind::kNil:
      return WireValue(nullptr);
    case vm::ValueKind::kBool:
      return WireValue(value.as_bool());
    case vm::ValueKind::kInt:
      return WireValue(value.as_int());
    case vm::ValueKind::kFloat:
      return WireValue(value.as_float());
    case vm::ValueKind::kStr:
      return WireValue(value.as_str());
    case vm::ValueKind::kList: {
      Array array;
      array.reserve(value.as_list()->items.size());
      for (const Value& item : value.as_list()->items) {
        DIONEA_ASSIGN_OR_RETURN(WireValue wire_item, to_wire(item));
        array.push_back(std::move(wire_item));
      }
      return WireValue(std::move(array));
    }
    case vm::ValueKind::kMap: {
      Object object;
      for (const auto& [key, item] : value.as_map()->items) {
        DIONEA_ASSIGN_OR_RETURN(WireValue wire_item, to_wire(item));
        object.emplace(key, std::move(wire_item));
      }
      return WireValue(std::move(object));
    }
    default:
      return Error(ErrorCode::kInvalidArgument,
                   std::string("cannot pickle a ") + value.type_name() +
                       " (process-local object)");
  }
}

Value from_wire(const WireValue& value) {
  if (value.is_null()) return Value();
  if (value.is_bool()) return Value(value.as_bool());
  if (value.is_int()) return Value(value.as_int());
  if (value.is_double()) return Value(value.as_double());
  if (value.is_string()) return Value::str(value.as_string());
  if (value.is_array()) {
    auto list = std::make_shared<vm::List>();
    list->items.reserve(value.as_array().size());
    for (const WireValue& item : value.as_array()) {
      list->items.push_back(from_wire(item));
    }
    return Value(std::move(list));
  }
  auto map = std::make_shared<vm::Map>();
  for (const auto& [key, item] : value.as_object()) {
    map->items[key] = from_wire(item);
  }
  return Value(std::move(map));
}

Result<std::string> serialize(const Value& value) {
  DIONEA_ASSIGN_OR_RETURN(WireValue wire_value, to_wire(value));
  std::string out;
  wire_value.encode(&out);
  return out;
}

Result<Value> deserialize(const std::string& bytes) {
  DIONEA_ASSIGN_OR_RETURN(WireValue wire_value, WireValue::decode(bytes));
  return from_wire(wire_value);
}

}  // namespace dionea::mp
