// "Pickle" for MiniLang values (§6.3: "Functions or methods to be
// executed by the child process are passed from parent to child via
// queues encoded using pickle").
//
// Serializable subset: nil, bool, int, float, str, list, map — the
// same subset Python's pickle moves through multiprocessing queues.
// Threads, sync objects and closures are process-local and refuse to
// serialize (closures would need code shipping; multiprocessing works
// because fork already copied the code, and so do we — workers are
// forked, so functions exist on both sides by construction).
//
// Wire format: the ipc::wire codec, via a lossless mapping onto
// wire::Value for the picklable subset.
#pragma once

#include <string>

#include "ipc/wire.hpp"
#include "support/result.hpp"
#include "vm/value.hpp"

namespace dionea::mp {

// vm::Value -> wire::Value (kInvalidArgument for non-picklable kinds).
Result<ipc::wire::Value> to_wire(const vm::Value& value);
// wire::Value -> vm::Value (always succeeds; doubles stay floats).
vm::Value from_wire(const ipc::wire::Value& value);

Result<std::string> serialize(const vm::Value& value);
Result<vm::Value> deserialize(const std::string& bytes);

}  // namespace dionea::mp
