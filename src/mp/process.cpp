#include "mp/process.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "support/timing.hpp"

namespace dionea::mp {

int kill_grace_millis(int fallback) noexcept {
  // Read per call, not once: tests flip the variable between phases
  // and a process-wide cache would pin the first value forever.
  const char* v = std::getenv("DIONEA_KILL_GRACE_MS");
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0 || parsed > 60'000) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

Result<Process> Process::spawn(const std::function<int()>& fn) {
  std::fflush(nullptr);  // don't double-flush parent's stdio buffers
  pid_t pid = ::fork();
  if (pid < 0) return errno_error("fork", errno);
  if (pid == 0) {
    int code = 1;
    // No exceptions may escape across _exit.
    try {
      code = fn();
    } catch (...) {
      std::fprintf(stderr, "mp::Process: child function threw\n");
      code = 70;  // EX_SOFTWARE
    }
    std::fflush(nullptr);
    ::_exit(code);
  }
  return Process(pid);
}

Process::~Process() {
  if (valid()) (void)terminate(kill_grace_millis(kDestructorGraceMillis));
}

Result<int> Process::terminate(int grace_millis) {
  if (!valid()) return Error(ErrorCode::kInvalidArgument, "invalid process");
  // Already dead? Just reap.
  DIONEA_ASSIGN_OR_RETURN(std::optional<int> code, try_wait());
  if (code.has_value()) return *code;
  (void)::kill(pid_, SIGTERM);
  auto waited = wait_timeout(grace_millis);
  if (waited.is_ok()) return waited;
  if (waited.error().code() != ErrorCode::kTimeout) return waited;
  // The child ignored (or blocked) SIGTERM; escalate.
  (void)::kill(pid_, SIGKILL);
  return wait();
}

Result<int> Process::wait() {
  if (!valid()) return Error(ErrorCode::kInvalidArgument, "invalid process");
  while (true) {
    int status = 0;
    pid_t got = ::waitpid(pid_, &status, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_error("waitpid", errno);
    }
    pid_ = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
  }
}

Result<std::optional<int>> Process::try_wait() {
  if (!valid()) return Error(ErrorCode::kInvalidArgument, "invalid process");
  int status = 0;
  pid_t got = ::waitpid(pid_, &status, WNOHANG);
  if (got < 0) return errno_error("waitpid", errno);
  if (got == 0) return std::optional<int>();
  pid_ = -1;
  if (WIFEXITED(status)) return std::optional<int>(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) return std::optional<int>(-WTERMSIG(status));
  return std::optional<int>(-1);
}

Result<int> Process::wait_timeout(int timeout_millis) {
  Stopwatch watch;
  while (true) {
    DIONEA_ASSIGN_OR_RETURN(std::optional<int> code, try_wait());
    if (code.has_value()) return *code;
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "pid " + std::to_string(pid_) + " still running");
    }
    sleep_for_millis(5);
  }
}

Status Process::kill(int signal) {
  if (!valid()) return Status(ErrorCode::kInvalidArgument, "invalid process");
  if (::kill(pid_, signal) != 0) return errno_error("kill", errno);
  return Status::ok();
}

bool Process::running() {
  auto code = try_wait();
  return code.is_ok() && !code.value().has_value();
}

}  // namespace dionea::mp
