// The `parallel` gem analog (§6.4).
//
// "The parallel gem spawns workers, either threads or processes,
// assigning tasks to them and getting their results. When processes
// are used the communication is done via IO.pipe."
//
// Version 0.5.9 had a concurrency bug that Dionea exposed: forks and
// IO.pipe creation "take place interleaved by the threads that
// interact with the child processes", so every child inherits copies
// of sibling workers' pipe fds and never closes them. A child waiting
// for EOF on its input pipe can then hang forever — the write end it
// is waiting on is still open *in a sibling process*. The deadlock is
// timing-dependent ("a concurrency error that rarely happens"), which
// is why disturb mode was needed to pin it down.
//
// 0.5.10's fix: "the forks must be done sequentially by the main
// thread ... By doing so, each of the forked processes can close the
// copied but unused pipes (for sibling processes)."
//
// Both behaviours are implemented here behind a Version switch so the
// bug is demonstrable and the fix testable.
#pragma once

#include <functional>
#include <vector>

#include "support/result.hpp"
#include "vm/value.hpp"

namespace dionea::mp::parallel {

enum class Version {
  kV0_5_9,   // buggy: interleaved forks from interaction threads
  kV0_5_10,  // fixed: sequential forks by the main thread + fd hygiene
};

struct Options {
  Version version = Version::kV0_5_10;
  int worker_count = 2;
  // Overall deadline; kTimeout is how the 0.5.9 deadlock manifests to
  // callers (the paper's users saw a hang).
  int timeout_millis = 10'000;
  // Test hook: delay (ms) injected in each interaction thread between
  // pipe creation and fork, widening the §6.4 race window the way
  // disturb mode's stop-at-birth did. 0 for production.
  int disturb_delay_millis = 0;
};

// Run fn over each item in `options.worker_count` forked workers,
// item i going to worker i % worker_count; returns transformed items
// in order. With kV0_5_9 and an unlucky (or disturb-widened)
// interleaving this deadlocks and returns kTimeout.
Result<std::vector<vm::Value>> map_in_processes(
    const std::vector<vm::Value>& items,
    const std::function<vm::Value(const vm::Value&)>& fn,
    const Options& options);

}  // namespace dionea::mp::parallel
