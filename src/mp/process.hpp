// mp::Process — the Process abstraction of Python's multiprocessing
// ("Process-based 'threading' interface", §6.3): run a function in a
// forked child.
//
// The child runs `fn` and _exits with its return value; it never
// returns into the caller's code. No exec(2) follows the fork — this
// is exactly the "forking without calling exec is a special case that
// requires special treatment" situation of §5.1.
#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>
#include <utility>

#include "support/result.hpp"

namespace dionea::mp {

// SIGTERM -> SIGKILL grace used where the caller did not pick one (the
// Process destructor, ChildReaper::terminate_all's default): the
// DIONEA_KILL_GRACE_MS environment override when set to a value in
// [0, 60000], else `fallback`. A test harness tightening this to a few
// ms turns every stuck-child teardown from half a second of drag into
// a blip; a debuggee that needs longer to flush gets it the same way.
int kill_grace_millis(int fallback) noexcept;

class Process {
 public:
  // Fork and run fn in the child. Returns (in the parent) a handle.
  // `fn` runs in a copy of the parent's address space; only the
  // calling thread exists in the child.
  static Result<Process> spawn(const std::function<int()>& fn);

  Process(Process&& other) noexcept : pid_(other.pid_) { other.pid_ = -1; }
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      if (valid()) (void)terminate(kill_grace_millis(kDestructorGraceMillis));
      pid_ = std::exchange(other.pid_, -1);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  // Destroying a live handle reaps the child: SIGTERM, a short grace,
  // then SIGKILL (terminate()). A handle must never leak a zombie —
  // hand the pid to a ChildReaper via release() to keep the child
  // alive past the handle.
  ~Process();

  pid_t pid() const noexcept { return pid_; }
  bool valid() const noexcept { return pid_ > 0; }

  // Give up ownership of the child without touching it; the handle
  // becomes invalid and the caller takes over reaping.
  pid_t release() noexcept { return std::exchange(pid_, -1); }

  // Block until exit; returns exit code, or -signal for signal death.
  Result<int> wait();
  // Non-blocking: nullopt while still running.
  Result<std::optional<int>> try_wait();
  // Wait with timeout (polling); kTimeout if still alive.
  Result<int> wait_timeout(int timeout_millis);

  // Stop the child without leaking a zombie: reap if already dead,
  // else SIGTERM -> wait up to `grace_millis` -> SIGKILL -> wait.
  // Returns the exit code (or -signal).
  Result<int> terminate(int grace_millis = 1000);

  Status kill(int signal);
  bool running();

  // Grace the destructor gives a live child before escalating.
  static constexpr int kDestructorGraceMillis = 500;

 private:
  explicit Process(pid_t pid) : pid_(pid) {}
  pid_t pid_ = -1;
};

}  // namespace dionea::mp
