#include "mp/reaper.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

#include "mp/process.hpp"
#include "support/timing.hpp"

namespace dionea::mp {

namespace {

// SIGCHLD self-pipe (the classic trick): the handler writes one byte,
// wait_any poll(2)s the read end. Installed once per process, lazily —
// fork children inherit the disposition and the pipe, which is fine:
// each process's reapers read their own copy.
int g_sigchld_pipe[2] = {-1, -1};
std::once_flag g_sigchld_once;

void sigchld_handler(int) {
  int saved = errno;
  char byte = 'c';
  (void)!::write(g_sigchld_pipe[1], &byte, 1);
  errno = saved;
}

void install_sigchld_pipe() {
  std::call_once(g_sigchld_once, [] {
    if (::pipe(g_sigchld_pipe) != 0) return;
    for (int fd : g_sigchld_pipe) {
      (void)::fcntl(fd, F_SETFL, O_NONBLOCK);
      (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
    struct sigaction sa = {};
    sa.sa_handler = sigchld_handler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking reads elsewhere already retry on EINTR.
    sa.sa_flags = SA_NOCLDSTOP;
    (void)::sigaction(SIGCHLD, &sa, nullptr);
  });
}

void drain_sigchld_pipe() {
  if (g_sigchld_pipe[0] < 0) return;
  char buf[64];
  while (::read(g_sigchld_pipe[0], buf, sizeof(buf)) > 0) {
  }
}

}  // namespace

void ChildReaper::watch(pid_t pid) {
  if (pid <= 0) return;
  install_sigchld_pipe();
  watched_.emplace(pid, false);
}

void ChildReaper::adopt(Process&& process) {
  watch(process.release());
}

void ChildReaper::unwatch(pid_t pid) { watched_.erase(pid); }

std::vector<pid_t> ChildReaper::watched() const {
  std::vector<pid_t> out;
  out.reserve(watched_.size());
  for (const auto& [pid, unused] : watched_) out.push_back(pid);
  return out;
}

bool ChildReaper::try_reap(pid_t pid, Exit* out) {
  int status = 0;
  pid_t got = ::waitpid(pid, &status, WNOHANG);
  if (got == 0) return false;  // still running
  if (got < 0) {
    // ECHILD: someone else reaped it (or it never was ours). The exit
    // status is gone; report a clean unknown exit rather than leaking
    // the pid in the watched set forever.
    if (errno != ECHILD) return false;
    out->pid = pid;
    out->exit_code = -1;
    out->signal = 0;
    return true;
  }
  out->pid = pid;
  if (WIFSIGNALED(status)) {
    out->signal = WTERMSIG(status);
    out->exit_code = -1;
  } else {
    out->signal = 0;
    out->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return true;
}

std::vector<ChildReaper::Exit> ChildReaper::collect() {
  std::vector<Exit> exits;
  for (auto it = watched_.begin(); it != watched_.end();) {
    Exit ex;
    if (try_reap(it->first, &ex)) {
      exits.push_back(ex);
      it = watched_.erase(it);
    } else {
      ++it;
    }
  }
  return exits;
}

std::vector<ChildReaper::Exit> ChildReaper::poll() {
  std::vector<Exit> exits(backlog_.begin(), backlog_.end());
  backlog_.clear();
  for (const Exit& ex : collect()) exits.push_back(ex);
  return exits;
}

Result<ChildReaper::Exit> ChildReaper::wait_any(int timeout_millis) {
  if (watched_.empty() && backlog_.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no children watched");
  }
  Stopwatch watch;
  while (true) {
    if (!backlog_.empty()) {
      Exit ex = backlog_.front();
      backlog_.pop_front();
      return ex;
    }
    std::vector<Exit> exits = collect();
    if (!exits.empty()) {
      // One sweep can reap several children; report the first and
      // keep the rest for the next wait_any/poll.
      for (size_t i = 1; i < exits.size(); ++i) backlog_.push_back(exits[i]);
      return exits.front();
    }
    double elapsed_millis = watch.elapsed_seconds() * 1000.0;
    if (elapsed_millis >= timeout_millis) {
      return Error(ErrorCode::kTimeout, "no child exited");
    }
    // Sleep on the SIGCHLD pipe, capped so a lost signal (or a child
    // reaped by somebody else) only costs one slice of latency.
    int remaining = timeout_millis - static_cast<int>(elapsed_millis);
    int slice = remaining < 20 ? remaining : 20;
    if (g_sigchld_pipe[0] >= 0) {
      pollfd pfd{g_sigchld_pipe[0], POLLIN, 0};
      (void)::poll(&pfd, 1, slice);
      drain_sigchld_pipe();
    } else {
      sleep_for_millis(slice < 5 ? slice : 5);
    }
  }
}

Result<std::vector<ChildReaper::Exit>> ChildReaper::drain(int timeout_millis) {
  std::vector<Exit> exits = poll();  // backlog + already-dead children
  Stopwatch watch;
  while (!watched_.empty()) {
    for (const Exit& ex : poll()) exits.push_back(ex);
    if (watched_.empty()) break;
    double elapsed_millis = watch.elapsed_seconds() * 1000.0;
    if (elapsed_millis >= timeout_millis) {
      if (exits.empty()) {
        return Error(ErrorCode::kTimeout, "no child exited");
      }
      break;
    }
    int remaining = timeout_millis - static_cast<int>(elapsed_millis);
    int slice = remaining < 20 ? remaining : 20;
    if (g_sigchld_pipe[0] >= 0) {
      pollfd pfd{g_sigchld_pipe[0], POLLIN, 0};
      (void)::poll(&pfd, 1, slice);
      drain_sigchld_pipe();
    } else {
      sleep_for_millis(slice < 5 ? slice : 5);
    }
  }
  return exits;
}

Result<std::vector<ChildReaper::Exit>> ChildReaper::terminate_all(
    int grace_millis) {
  if (grace_millis < 0) grace_millis = kill_grace_millis(1000);
  for (auto& [pid, termed] : watched_) {
    if (!termed) {
      (void)::kill(pid, SIGTERM);
      termed = true;
    }
  }
  auto drained = drain(grace_millis);
  if (drained.is_ok() && watched_.empty()) return drained;
  std::vector<Exit> exits =
      drained.is_ok() ? std::move(drained).value() : std::vector<Exit>{};
  // Stragglers ignored SIGTERM; they do not get to ignore SIGKILL.
  for (const auto& [pid, unused] : watched_) (void)::kill(pid, SIGKILL);
  // SIGKILL cannot be blocked — the remaining waits are short.
  DIONEA_ASSIGN_OR_RETURN(std::vector<Exit> rest, drain(5000));
  for (const Exit& ex : rest) exits.push_back(ex);
  return exits;
}

}  // namespace dionea::mp
