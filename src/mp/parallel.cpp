#include "mp/parallel.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "ipc/pipe.hpp"
#include "mp/serialize.hpp"
#include "support/logging.hpp"
#include "support/timing.hpp"

namespace dionea::mp::parallel {
namespace {

using vm::Value;

// ---- length-prefixed pickled values over raw pipe fds ----

Status write_value(ipc::Fd& fd, const Value& value) {
  DIONEA_ASSIGN_OR_RETURN(std::string bytes, serialize(value));
  std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  char header[4];
  std::memcpy(header, &len, sizeof(len));
  DIONEA_RETURN_IF_ERROR(fd.write_all(header, sizeof(header)));
  return fd.write_all(bytes.data(), bytes.size());
}

// kClosed on EOF, kTimeout when the deadline passes first.
Result<Value> read_value_deadline(ipc::Fd& fd, double deadline_mono) {
  auto wait_readable = [&]() -> Status {
    while (true) {
      int remaining = static_cast<int>((deadline_mono - mono_seconds()) * 1e3);
      if (remaining <= 0) return Status(ErrorCode::kTimeout, "pipe read");
      pollfd pfd{fd.get(), POLLIN, 0};
      int rc = ::poll(&pfd, 1, remaining);
      if (rc > 0) return Status::ok();
      if (rc < 0 && errno != EINTR) return errno_error("poll", errno);
      if (rc == 0) return Status(ErrorCode::kTimeout, "pipe read");
    }
  };
  DIONEA_RETURN_IF_ERROR(wait_readable());
  char header[4];
  DIONEA_RETURN_IF_ERROR(fd.read_exact(header, sizeof(header)));
  std::uint32_t len;
  std::memcpy(&len, header, sizeof(len));
  std::string bytes(len, '\0');
  if (len > 0) DIONEA_RETURN_IF_ERROR(fd.read_exact(bytes.data(), len));
  return deserialize(bytes);
}

// Blocking read used by workers; kClosed on EOF.
Result<Value> read_value_blocking(ipc::Fd& fd) {
  char header[4];
  DIONEA_RETURN_IF_ERROR(fd.read_exact(header, sizeof(header)));
  std::uint32_t len;
  std::memcpy(&len, header, sizeof(len));
  std::string bytes(len, '\0');
  if (len > 0) DIONEA_RETURN_IF_ERROR(fd.read_exact(bytes.data(), len));
  return deserialize(bytes);
}

struct Worker {
  ipc::Pipe in;   // parent writes -> child reads
  ipc::Pipe out;  // child writes -> parent reads
  pid_t pid = -1;
  std::vector<size_t> item_indices;  // which items this worker owns
};

// The forked child's life: drop fds it must not hold (fix only), read
// tasks until EOF on stdin-pipe, apply fn, stream results, exit.
[[noreturn]] void child_main(
    Worker& self, std::vector<Worker>* siblings_to_close,
    const std::function<Value(const Value&)>& fn) {
  self.in.close_write();
  self.out.close_read();
  if (siblings_to_close != nullptr) {
    // 0.5.10 discipline: "each of the forked processes can close the
    // copied but unused pipes (for sibling processes)".
    for (Worker& sibling : *siblings_to_close) {
      if (&sibling == &self) continue;
      sibling.in.close_read();
      sibling.in.close_write();
      sibling.out.close_read();
      sibling.out.close_write();
    }
  }
  while (true) {
    auto task = read_value_blocking(self.in.read_end());
    if (!task.is_ok()) {
      // EOF = no more work. Anything else also ends the worker.
      std::fflush(nullptr);
      ::_exit(task.error().code() == ErrorCode::kClosed ? 0 : 6);
    }
    const auto& pair = task.value().as_list()->items;
    Value result = fn(pair[1]);
    auto tagged = std::make_shared<vm::List>();
    tagged->items.push_back(pair[0]);
    tagged->items.push_back(std::move(result));
    Status written = write_value(self.out.write_end(), Value(std::move(tagged)));
    if (!written.is_ok()) {
      std::fflush(nullptr);
      ::_exit(7);
    }
  }
}

// Parent-side interaction with one worker: feed its items, close the
// write end (EOF = end of work), then collect its results.
Status interact(Worker& worker, const std::vector<Value>& items,
                std::vector<Value>* results, double deadline) {
  for (size_t index : worker.item_indices) {
    auto task = std::make_shared<vm::List>();
    task->items.push_back(Value(static_cast<std::int64_t>(index)));
    task->items.push_back(items[index]);
    DIONEA_RETURN_IF_ERROR(
        write_value(worker.in.write_end(), Value(std::move(task))));
  }
  worker.in.close_write();  // our copy; a leaked sibling copy may remain!
  for (size_t i = 0; i < worker.item_indices.size(); ++i) {
    DIONEA_ASSIGN_OR_RETURN(Value tagged, read_value_deadline(
                                              worker.out.read_end(), deadline));
    const auto& pair = tagged.as_list()->items;
    (*results)[static_cast<size_t>(pair[0].as_int())] = pair[1];
  }
  return Status::ok();
}

void kill_and_reap(std::vector<Worker>& workers) {
  for (Worker& worker : workers) {
    if (worker.pid <= 0) continue;
    (void)::kill(worker.pid, SIGKILL);
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    worker.pid = -1;
  }
}

// Wait for every worker to exit by the deadline. The v0.5.9 deadlock
// manifests exactly here: the children delivered their results but
// hang forever waiting for an EOF that a sibling's leaked fd keeps
// from arriving.
bool reap_until(std::vector<Worker>& workers, double deadline_mono) {
  while (true) {
    bool any_left = false;
    for (Worker& worker : workers) {
      if (worker.pid <= 0) continue;
      int status = 0;
      pid_t got = ::waitpid(worker.pid, &status, WNOHANG);
      if (got == worker.pid) {
        worker.pid = -1;
      } else if (got == 0) {
        any_left = true;
      } else if (errno != EINTR) {
        worker.pid = -1;
      }
    }
    if (!any_left) return true;
    if (mono_seconds() >= deadline_mono) return false;
    sleep_for_millis(5);
  }
}

}  // namespace

Result<std::vector<Value>> map_in_processes(
    const std::vector<Value>& items,
    const std::function<Value(const Value&)>& fn, const Options& options) {
  if (options.worker_count <= 0) {
    return Error(ErrorCode::kInvalidArgument, "need at least one worker");
  }
  const int worker_count =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options.worker_count),
          items.empty() ? 1 : items.size()));
  auto workers = std::make_unique<std::vector<Worker>>(
      static_cast<size_t>(worker_count));
  for (size_t i = 0; i < items.size(); ++i) {
    (*workers)[i % static_cast<size_t>(worker_count)].item_indices.push_back(i);
  }

  const double deadline = mono_seconds() + options.timeout_millis / 1000.0;
  std::vector<Value> results(items.size());
  std::fflush(nullptr);

  if (options.version == Version::kV0_5_9) {
    // BUGGY path: each interaction thread creates its worker's pipes
    // and forks, interleaved with its siblings. Children do NOT close
    // sibling fds (they don't know about them — the snapshot they
    // inherited depends on the race).
    std::vector<std::thread> threads;
    std::vector<Status> outcomes(static_cast<size_t>(worker_count),
                                 Status::ok());
    std::atomic<int> pipes_ready{0};
    std::atomic<int> forks_done{0};
    std::mutex fork_mutex;  // serializes only the fork itself, not the
                            // pipe-creation/fork *ordering* across threads
    for (int w = 0; w < worker_count; ++w) {
      threads.emplace_back([&, w] {
        Worker& worker = (*workers)[static_cast<size_t>(w)];
        auto in = ipc::Pipe::create();
        auto out = ipc::Pipe::create();
        if (!in.is_ok() || !out.is_ok()) {
          outcomes[static_cast<size_t>(w)] =
              Status(ErrorCode::kOsError, "pipe creation failed");
          return;
        }
        worker.in = std::move(in).value();
        worker.out = std::move(out).value();
        if (options.disturb_delay_millis > 0) {
          // The window disturb mode exposes: sibling threads fork while
          // our pipes exist but before our own fork snapshots them. A
          // timed sleep alone leaves the ordering to the scheduler (a
          // starved sibling may not even have created its pipes yet),
          // so hold the window open until every sibling's pipes exist —
          // then every child inherits every sibling's write ends, the
          // §6.4 leak, on any machine under any load.
          pipes_ready.fetch_add(1, std::memory_order_acq_rel);
          while (pipes_ready.load(std::memory_order_acquire) < worker_count &&
                 mono_seconds() < deadline) {
            sleep_for_millis(1);
          }
          sleep_for_millis(options.disturb_delay_millis);
        }
        {
          std::scoped_lock lock(fork_mutex);
          pid_t pid = ::fork();
          if (pid == 0) {
            child_main(worker, /*siblings_to_close=*/nullptr, fn);
          }
          worker.pid = pid;
        }
        if (worker.pid < 0) {
          outcomes[static_cast<size_t>(w)] =
              Status(ErrorCode::kOsError, "fork failed");
          return;
        }
        if (options.disturb_delay_millis > 0) {
          // Second half of the window: no parent-side thread may close
          // a write end until the last sibling has forked — a thread
          // that raced ahead (fed its child and closed its pipe before
          // a starved sibling forked) lets that child see EOF, exit,
          // and cascade the whole leak cycle apart.
          forks_done.fetch_add(1, std::memory_order_acq_rel);
          while (forks_done.load(std::memory_order_acquire) < worker_count &&
                 mono_seconds() < deadline) {
            sleep_for_millis(1);
          }
        }
        worker.in.close_read();
        worker.out.close_write();
        outcomes[static_cast<size_t>(w)] =
            interact(worker, items, &results, deadline);
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const Status& outcome : outcomes) {
      if (!outcome.is_ok()) {
        kill_and_reap(*workers);
        return outcome.error();
      }
    }
    if (!reap_until(*workers, deadline)) {
      kill_and_reap(*workers);
      return Error(ErrorCode::kTimeout,
                   "parallel v0.5.9 deadlock: a child is waiting for EOF "
                   "on a pipe whose write end leaked into a sibling "
                   "process (§6.4)");
    }
    return results;
  }

  // FIXED path (0.5.10): all pipes first, then sequential forks by
  // this (the main) thread; every child closes sibling fds.
  for (Worker& worker : *workers) {
    DIONEA_ASSIGN_OR_RETURN(worker.in, ipc::Pipe::create());
    DIONEA_ASSIGN_OR_RETURN(worker.out, ipc::Pipe::create());
  }
  for (Worker& worker : *workers) {
    pid_t pid = ::fork();
    if (pid < 0) {
      kill_and_reap(*workers);
      return errno_error("fork", errno);
    }
    if (pid == 0) child_main(worker, workers.get(), fn);
    worker.pid = pid;
    worker.in.close_read();
    worker.out.close_write();
  }
  // Interaction threads are fine now — the forks are already done.
  std::vector<std::thread> threads;
  std::vector<Status> outcomes(workers->size(), Status::ok());
  for (size_t w = 0; w < workers->size(); ++w) {
    threads.emplace_back([&, w] {
      outcomes[w] = interact((*workers)[w], items, &results, deadline);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Status& outcome : outcomes) {
    if (!outcome.is_ok()) {
      kill_and_reap(*workers);
      return outcome.error();
    }
  }
  if (!reap_until(*workers, deadline)) {
    kill_and_reap(*workers);
    return Error(ErrorCode::kTimeout, "workers did not exit");
  }
  return results;
}

}  // namespace dionea::mp::parallel
