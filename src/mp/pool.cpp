#include "mp/pool.hpp"

#include <memory>
#include <signal.h>

#include "support/logging.hpp"

namespace dionea::mp {

using vm::Value;

Result<Pool> Pool::create(int workers, WorkerFn fn) {
  if (workers <= 0) {
    return Error(ErrorCode::kInvalidArgument, "need at least one worker");
  }
  DIONEA_ASSIGN_OR_RETURN(MpQueue tasks, MpQueue::create());
  DIONEA_ASSIGN_OR_RETURN(MpQueue results, MpQueue::create());

  std::vector<Process> procs;
  procs.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    auto proc = Process::spawn([&tasks, &results, &fn]() -> int {
      // Worker loop: pull until the nil sentinel. Every element is a
      // tagged pair [tag, payload]; the tag (-1 for submit(), the item
      // index for map()) rides along so results can be reordered.
      // Errors in fn are the embedder's to handle (fn should not
      // throw); queue errors mean the parent is gone, so exiting is
      // the right response.
      while (true) {
        auto task = tasks.pop_value();
        if (!task.is_ok()) return 3;
        if (task.value().is_nil()) return 0;
        if (!task.value().is_list() ||
            task.value().as_list()->items.size() != 2) {
          return 5;  // protocol violation
        }
        const auto& pair = task.value().as_list()->items;
        Value result = fn(pair[1]);
        auto tagged = std::make_shared<vm::List>();
        tagged->items.push_back(pair[0]);
        tagged->items.push_back(std::move(result));
        Status pushed = results.push_value(Value(std::move(tagged)));
        if (!pushed.is_ok()) return 4;
      }
    });
    if (!proc.is_ok()) {
      // Out of processes: shut down what we started.
      for (int j = 0; j < static_cast<int>(procs.size()); ++j) {
        (void)tasks.push_value(Value());
      }
      for (Process& p : procs) (void)p.wait();
      return proc.error();
    }
    procs.push_back(std::move(proc).value());
  }
  return Pool(std::move(tasks), std::move(results), std::move(procs));
}

Pool::~Pool() {
  if (!procs_.empty() && !shut_down_) (void)shutdown();
}

Status Pool::submit(const Value& task) {
  auto tagged = std::make_shared<vm::List>();
  tagged->items.push_back(Value(std::int64_t{-1}));
  tagged->items.push_back(task);
  return tasks_.push_value(Value(std::move(tagged)));
}

Result<Value> Pool::take_result(int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(std::optional<Value> result,
                          results_.pop_value_timeout(timeout_millis));
  if (!result.has_value()) {
    return Error(ErrorCode::kTimeout, "no result within timeout");
  }
  if (!result->is_list() || result->as_list()->items.size() != 2) {
    return Error(ErrorCode::kProtocol, "untagged result from worker");
  }
  return result->as_list()->items[1];
}

Result<std::vector<Value>> Pool::map(const std::vector<Value>& items,
                                     int timeout_millis_per_item) {
  // Tag each task with its index so results can be reordered.
  for (size_t i = 0; i < items.size(); ++i) {
    auto task_list = std::make_shared<vm::List>();
    task_list->items.push_back(Value(static_cast<std::int64_t>(i)));
    task_list->items.push_back(items[i]);
    DIONEA_RETURN_IF_ERROR(tasks_.push_value(Value(std::move(task_list))));
  }
  std::vector<Value> out(items.size());
  std::vector<bool> seen(items.size(), false);
  for (size_t received = 0; received < items.size(); ++received) {
    DIONEA_ASSIGN_OR_RETURN(std::optional<Value> popped,
                            results_.pop_value_timeout(timeout_millis_per_item));
    if (!popped.has_value()) {
      return Error(ErrorCode::kTimeout, "worker result overdue");
    }
    Value tagged = std::move(*popped);
    if (!tagged.is_list() || tagged.as_list()->items.size() != 2 ||
        !tagged.as_list()->items[0].is_int()) {
      return Error(ErrorCode::kProtocol, "untagged result from worker");
    }
    auto index = static_cast<size_t>(tagged.as_list()->items[0].as_int());
    if (index >= out.size() || seen[index]) {
      return Error(ErrorCode::kProtocol, "bad result index from worker");
    }
    seen[index] = true;
    out[index] = tagged.as_list()->items[1];
  }
  return out;
}

Status Pool::shutdown(int timeout_millis) {
  if (shut_down_) return Status::ok();
  shut_down_ = true;
  for (size_t i = 0; i < procs_.size(); ++i) {
    Status pushed = tasks_.push_value(Value());
    if (!pushed.is_ok()) return pushed;
  }
  for (Process& proc : procs_) {
    auto code = proc.wait_timeout(timeout_millis);
    if (!code.is_ok()) {
      DLOG_WARN("mp") << "worker " << proc.pid()
                      << " did not exit: " << code.error().to_string();
      (void)proc.kill(SIGKILL);
      (void)proc.wait();
    }
  }
  procs_.clear();
  return Status::ok();
}

const std::vector<pid_t> Pool::worker_pids() const {
  std::vector<pid_t> out;
  out.reserve(procs_.size());
  for (const Process& proc : procs_) out.push_back(proc.pid());
  return out;
}

}  // namespace dionea::mp
