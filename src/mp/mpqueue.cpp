#include "mp/mpqueue.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <time.h>

#include <cerrno>
#include <cstring>

#include "mp/serialize.hpp"
#include "support/metrics.hpp"
#include "support/scope_guard.hpp"
#include "support/timing.hpp"

namespace dionea::mp {
namespace {

void add_millis(timespec* ts, long millis) {
  ts->tv_sec += millis / 1000;
  ts->tv_nsec += (millis % 1000) * 1'000'000L;
  if (ts->tv_nsec >= 1'000'000'000L) {
    ts->tv_nsec -= 1'000'000'000L;
    ts->tv_sec += 1;
  }
}

// Scoped lock on a process-shared pthread mutex.
class SharedLock {
 public:
  explicit SharedLock(pthread_mutex_t* mutex) : mutex_(mutex) {
    int rc = pthread_mutex_lock(mutex_);
    if (rc == EOWNERDEAD) {
      // A worker died holding the lock; the pipe stream may be torn at
      // a frame boundary at worst (writers write header+payload under
      // the lock). Mark consistent and continue.
      pthread_mutex_consistent(mutex_);
    }
  }
  ~SharedLock() { pthread_mutex_unlock(mutex_); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  pthread_mutex_t* mutex_;
};

constexpr int kPopSliceMillis = 50;

}  // namespace

Result<MpQueue> MpQueue::create() {
  void* mem = ::mmap(nullptr, sizeof(Shared), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return errno_error("mmap shared queue state", errno);
  auto* shared = static_cast<Shared*>(mem);
  auto cleanup = on_scope_exit([&] { ::munmap(mem, sizeof(Shared)); });

  if (::sem_init(&shared->items, /*pshared=*/1, 0) != 0) {
    return errno_error("sem_init", errno);
  }
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  // Robust mutexes recover from a worker dying mid-push/pop.
  pthread_mutexattr_setrobust(&attr, PTHREAD_MUTEX_ROBUST);
  pthread_mutex_init(&shared->write_lock, &attr);
  pthread_mutex_init(&shared->read_lock, &attr);
  pthread_mutexattr_destroy(&attr);

  auto pipe = ipc::Pipe::create(/*cloexec=*/false);
  if (!pipe.is_ok()) return pipe.error();

  cleanup.dismiss();
  return MpQueue(shared, std::move(pipe).value());
}

MpQueue::MpQueue(MpQueue&& other) noexcept
    : shared_(other.shared_), pipe_(std::move(other.pipe_)) {
  other.shared_ = nullptr;
}

MpQueue& MpQueue::operator=(MpQueue&& other) noexcept {
  if (this != &other) {
    if (shared_ != nullptr) ::munmap(shared_, sizeof(Shared));
    shared_ = other.shared_;
    other.shared_ = nullptr;
    pipe_ = std::move(other.pipe_);
  }
  return *this;
}

MpQueue::~MpQueue() {
  // Unmap this process's view; the mapping (and semaphore) live until
  // the last process unmaps. sem_destroy is deliberately skipped: a
  // sibling may still be blocked on it.
  if (shared_ != nullptr) ::munmap(shared_, sizeof(Shared));
}

Status MpQueue::push_bytes(std::string_view bytes) {
  if (!pipe_.write_end().valid()) {
    return Status(ErrorCode::kClosed, "queue write end closed");
  }
  std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  char header[4];
  std::memcpy(header, &len, sizeof(len));
  // Post BEFORE writing: a payload larger than the pipe's capacity can
  // only complete if a reader is draining concurrently, and the reader
  // is gated on this semaphore. The reader's read_exact simply blocks
  // until our bytes arrive.
  ::sem_post(&shared_->items);
  SharedLock lock(&shared_->write_lock);
  Status written = pipe_.write_end().write_all(header, sizeof(header));
  if (written.is_ok() && !bytes.empty()) {
    written = pipe_.write_end().write_all(bytes.data(), bytes.size());
  }
  if (!written.is_ok()) {
    // Best-effort clawback of the announcement so a reader doesn't
    // wait for a payload that never comes. If a reader already took
    // it, it will fail with kClosed when the pipe tears down — the
    // same outcome a mid-write crash produces.
    (void)::sem_trywait(&shared_->items);
    return written;
  }
  metrics::add(metrics::Counter::kMpPushes);
  metrics::add(metrics::Counter::kMpBytesPushed, sizeof(header) + bytes.size());
  metrics::gauge_set(metrics::Gauge::kMpQueueDepth, size());
  return Status::ok();
}

Result<std::string> MpQueue::pop_bytes(bool (*interrupt_check)(void*),
                                       void* interrupt_arg) {
  while (true) {
    auto popped = pop_bytes_timeout(kPopSliceMillis);
    if (!popped.is_ok()) return popped.error();
    if (popped.value().has_value()) return std::move(*popped.value());
    if (interrupt_check != nullptr && interrupt_check(interrupt_arg)) {
      return Error(ErrorCode::kUnavailable, "pop interrupted");
    }
  }
}

Result<std::optional<std::string>> MpQueue::pop_bytes_timeout(
    int timeout_millis) {
  const bool record = metrics::Registry::instance().enabled();
  const std::int64_t wait_start = record ? mono_nanos() : 0;
  timespec deadline{};
  ::clock_gettime(CLOCK_REALTIME, &deadline);
  add_millis(&deadline, timeout_millis);
  while (::sem_timedwait(&shared_->items, &deadline) != 0) {
    if (errno == ETIMEDOUT) return std::optional<std::string>();
    if (errno != EINTR) return errno_error("sem_timedwait", errno);
  }
  if (record) {
    metrics::observe(metrics::Histogram::kMpPopWaitNanos,
                     static_cast<std::uint64_t>(mono_nanos() - wait_start));
  }
  // An item is committed to the pipe; read it under the reader lock.
  SharedLock lock(&shared_->read_lock);
  char header[4];
  Status status = pipe_.read_end().read_exact(header, sizeof(header));
  if (!status.is_ok()) return status.error();
  std::uint32_t len;
  std::memcpy(&len, header, sizeof(len));
  std::string payload(len, '\0');
  if (len > 0) {
    status = pipe_.read_end().read_exact(payload.data(), len);
    if (!status.is_ok()) return status.error();
  }
  metrics::add(metrics::Counter::kMpPops);
  metrics::gauge_set(metrics::Gauge::kMpQueueDepth, size());
  return std::optional<std::string>(std::move(payload));
}

Status MpQueue::push_value(const vm::Value& value) {
  DIONEA_ASSIGN_OR_RETURN(std::string bytes, serialize(value));
  return push_bytes(bytes);
}

Result<vm::Value> MpQueue::pop_value() {
  DIONEA_ASSIGN_OR_RETURN(std::string bytes, pop_bytes());
  return deserialize(bytes);
}

Result<std::optional<vm::Value>> MpQueue::pop_value_timeout(
    int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(std::optional<std::string> bytes,
                          pop_bytes_timeout(timeout_millis));
  if (!bytes.has_value()) return std::optional<vm::Value>();
  DIONEA_ASSIGN_OR_RETURN(vm::Value value, deserialize(*bytes));
  return std::optional<vm::Value>(std::move(value));
}

int MpQueue::size() const {
  int value = 0;
  ::sem_getvalue(&shared_->items, &value);
  return value;
}

}  // namespace dionea::mp
