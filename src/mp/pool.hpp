// mp::Pool — a worker pool of forked processes fed through MpQueues
// (multiprocessing.Pool's shape: "the parent and the worker processes
// share the same input and output queues", §6.3 / Fig. 8).
//
// Tasks and results are pickled vm::Values. Because workers are forks
// of the parent, the worker function exists on both sides without any
// code shipping — the same reason Python's fork-based Pool works.
//
// Scheduling is pull-based: an idle worker pops the next task, which
// is what produces the Fig. 8 behaviour ("when every other process is
// stopped by break points, an available child process takes over the
// jobs").
#pragma once

#include <functional>
#include <vector>

#include "mp/mpqueue.hpp"
#include "mp/process.hpp"
#include "support/result.hpp"
#include "vm/value.hpp"

namespace dionea::mp {

class Pool {
 public:
  using WorkerFn = std::function<vm::Value(const vm::Value&)>;

  // Forks `workers` children, each looping: pop task -> fn -> push
  // result. A nil task is the shutdown sentinel.
  static Result<Pool> create(int workers, WorkerFn fn);

  Pool(Pool&&) = default;
  Pool& operator=(Pool&&) = default;
  ~Pool();

  int worker_count() const noexcept { return static_cast<int>(procs_.size()); }

  // Fire-and-collect: submit a task / take any finished result.
  Status submit(const vm::Value& task);
  Result<vm::Value> take_result(int timeout_millis);

  // Ordered parallel map: results line up with `items` regardless of
  // which worker finished first (tasks are index-tagged internally).
  Result<std::vector<vm::Value>> map(const std::vector<vm::Value>& items,
                                     int timeout_millis_per_item = 60'000);

  // Send one sentinel per worker and reap them. Idempotent.
  Status shutdown(int timeout_millis = 10'000);

  const std::vector<pid_t> worker_pids() const;

 private:
  Pool(MpQueue tasks, MpQueue results, std::vector<Process> procs)
      : tasks_(std::move(tasks)), results_(std::move(results)),
        procs_(std::move(procs)) {}

  MpQueue tasks_;
  MpQueue results_;
  std::vector<Process> procs_;
  bool shut_down_ = false;
};

}  // namespace dionea::mp
