// mp::ChildReaper — SIGCHLD-safe collection of dead children.
//
// A debugger that forks debuggees (and whose debuggees fork again)
// must never leak zombies and must notice child deaths promptly even
// when the child dies of SIGKILL and thus cannot say goodbye over the
// debug channel. The reaper owns a watched-pid set and reaps with
// per-pid waitpid(WNOHANG) — never wait(-1), which would steal exit
// statuses from unrelated Process handles — and turns SIGCHLD into a
// poll(2)-able wakeup through a self-pipe so wait_any() sleeps instead
// of spinning.
//
// Exit observations are meant to be fed to client::MultiClient::
// note_child_exit so a SIGKILL'd debuggee surfaces as a first-class
// process-crashed event.
#pragma once

#include <sys/types.h>

#include <deque>
#include <map>
#include <vector>

#include "mp/process.hpp"
#include "support/result.hpp"

namespace dionea::mp {

class ChildReaper {
 public:
  struct Exit {
    pid_t pid = -1;
    int exit_code = 0;  // valid when signal == 0
    int signal = 0;     // terminating signal, 0 for clean _exit
    bool crashed() const noexcept { return signal != 0; }
  };

  ChildReaper() = default;
  ~ChildReaper() = default;  // watched children are NOT killed; use
                             // terminate_all() for that
  ChildReaper(const ChildReaper&) = delete;
  ChildReaper& operator=(const ChildReaper&) = delete;

  // Start watching a pid this process is the parent of.
  void watch(pid_t pid);
  // Take ownership of a Process handle's child (the handle's
  // destructor would otherwise SIGTERM it).
  void adopt(Process&& process);
  void unwatch(pid_t pid);
  std::vector<pid_t> watched() const;

  // Reap every watched child that has already exited (non-blocking).
  std::vector<Exit> poll();

  // Block until at least one watched child exits; kTimeout when none
  // does within the budget. SIGCHLD wakes the wait early; the fallback
  // poll cadence bounds the latency even if the signal is lost.
  Result<Exit> wait_any(int timeout_millis);

  // Collect exits until the watched set is empty or the deadline
  // passes. Returns what was reaped (kTimeout only if NOTHING exited).
  Result<std::vector<Exit>> drain(int timeout_millis);

  // SIGTERM every watched child, wait up to `grace_millis`, SIGKILL
  // the stragglers, and reap everything. The watched set is empty on
  // return. grace_millis < 0 resolves the default through
  // kill_grace_millis (DIONEA_KILL_GRACE_MS, else 1000ms); an explicit
  // non-negative value always wins over the environment.
  Result<std::vector<Exit>> terminate_all(int grace_millis = -1);

 private:
  // Reap one watched pid if it is dead; true if an exit was recorded.
  bool try_reap(pid_t pid, Exit* out);
  // poll() plus the backlog of exits wait_any reaped but did not
  // return (one waitpid sweep can find several dead children).
  std::vector<Exit> collect();

  std::map<pid_t, bool> watched_;  // value: SIGTERM already sent
  std::deque<Exit> backlog_;       // reaped but not yet reported
};

}  // namespace dionea::mp
