// Fork handlers A/B/C (§5.4) — the paper's contribution.
//
// The augmented fork (Vm::fork_now, the Listing 3/4 analog) invokes
// these around fork(2). They solve the three problems of §5.3:
//
//  1. "Ensuring the new process continues running." The VM's own fork
//     handlers pin every sync object's internal lock before the fork
//     and re-initialize them in the child, clearing ownership held by
//     threads that no longer exist (Listing 1/2's role); handler A
//     below additionally pins every *debugger* lock, so neither the
//     listener thread nor a parked debuggee thread can leave one
//     locked in the child.
//  2. "Debugging on child." The child inherits the parent's debug
//     metadata (Fig. 4): per-thread debug states for threads that no
//     longer exist, a session bound to the parent's pid. Handler C
//     rebuilds it — breakpoints are deliberately KEPT (they are the
//     user's, not the session's).
//  3. "Establishing proper communication with the client." The child
//     inherits the parent's sockets (Fig. 5) and must not speak on
//     them. Handler C closes every inherited descriptor, binds a fresh
//     listener, appends {pid, port} to the temp port file (Fig. 6),
//     and recreates the listener thread; the client tails the port
//     file and opens a new session.
#include <unistd.h>

#include "analysis/analysis.hpp"
#include "analysis/forkaudit.hpp"
#include "debugger/server.hpp"
#include "replay/replay.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/trace_export.hpp"

namespace dionea::dbg {

using ipc::wire::Value;

// Handler A — prepare fork. "Acquire control over synchronization
// objects. Disable the tracing until the listener thread is restarted,
// to avoid a deadlock in the child process."
void DebugServer::fork_prepare() {
  trace::Span span("fork:A-prepare", "fork");
  trace_was_enabled_ = vm_.trace_enabled();
  vm_.set_trace_enabled(false);

  // Snapshot every live sync object's child-generation counter for the
  // handler-C self-check — BEFORE pinning any server lock (the snapshot
  // takes the VM scheduler lock; keep the two orders disjoint). User
  // prepare hooks run before the VM's internal prepare, so the
  // scheduler lock is still free here.
  fork_sync_gen_.clear();
  for (auto& obj : vm_.sync_objects_snapshot()) {
    const std::uint32_t generation = obj->child_generation();
    fork_sync_gen_.emplace_back(std::move(obj), generation);
  }
  fork_quicken_gen_ = vm_.quicken_generation();

  // Pin all server locks in a fixed order (state -> per-thread debug
  // states by tid -> events -> sources -> breakpoints). After this, the
  // listener thread is provably outside every critical section, so the
  // child's copies of these mutexes are all consistently "held by the
  // forking thread".
  fork_state_lock_ = std::unique_lock(state_mutex_);
  fork_td_pinned_.clear();
  fork_td_locks_.clear();
  for (auto& [tid, td] : thread_debug_) {
    fork_td_pinned_.push_back(td);
    fork_td_locks_.emplace_back(td->mutex);
  }
  fork_events_lock_ = std::unique_lock(events_mutex_);
  fork_sources_lock_ = std::unique_lock(sources_mutex_);
  fork_bp_lock_ = breakpoints_.pin_for_fork();
  analysis::forkaudit::Registry::instance().note_prepare("dbg.server_locks");
}

// Handler B — handle parent at fork. "Immediately after the fork,
// release control of synchronization objects, and re-enable tracing."
void DebugServer::fork_parent(int child_pid) {
  trace::Span span("fork:B-parent", "fork");
  metrics::add(metrics::Counter::kForks);
  fork_bp_lock_.unlock();
  fork_bp_lock_ = {};
  fork_sources_lock_.unlock();
  fork_sources_lock_ = {};
  fork_events_lock_.unlock();
  fork_events_lock_ = {};
  for (size_t i = fork_td_locks_.size(); i-- > 0;) {
    fork_td_locks_[i].unlock();
  }
  fork_td_locks_.clear();
  fork_td_pinned_.clear();
  fork_state_lock_.unlock();
  fork_state_lock_ = {};
  analysis::forkaudit::Registry::instance().note_parent("dbg.server_locks");
  fork_sync_gen_.clear();  // the self-check belongs to the child
  vm_.set_trace_enabled(trace_was_enabled_ &&
                        tracing_wanted_.load(std::memory_order_relaxed));

  if (child_pid > 0) {
    // Courtesy notification; the authoritative signal is the child's
    // port-file record (the client may see either first).
    Value event = proto::make_event(proto::Event::kForked);
    event.set("pid", static_cast<int>(::getpid()));
    event.set("child_pid", child_pid);
    send_event(std::move(event));
  }
}

// Handler C — handle child at fork. "Initialize the synchronization
// objects, close the inherited sockets, initialize the data
// structures, create a listener thread, register the thread that
// called fork as the main thread, inform the client about the creation
// of a new debuggee, and finally re-enable the tracing that was
// disabled in A." (The 'register main thread' step is done by the VM's
// own child handler, which runs before this one — pthread_atfork
// ordering, §5.2.)
void DebugServer::fork_child() {
  // Observability is per-process: zero the metric shards inherited
  // from the parent (the child's `stats` must describe the child) and
  // re-point the trace exporter at a child-owned file. Both before the
  // span below, so the first span in the child's file is this handler.
  auto& audit = analysis::forkaudit::Registry::instance();
  metrics::Registry::instance().reset();
  audit.note_child("support.metrics");
  trace::child_atfork();
  audit.note_child("trace.exporter");
  // The replay engine's analog (fresh child log / child subtree of the
  // recorded log) ran in the VM's own child handler, before this one.
  if (replay::engine_active()) {
    DLOG_INFO("fork") << "child replay log: "
                      << replay::Engine::instance().info().log_path;
  }
  trace::Span span("fork:C-child", "fork");

  // We are the only thread alive. Every pinned lock below was taken by
  // *this* thread in handler A, so plain unlocks are well-defined.
  fork_bp_lock_.unlock();
  fork_bp_lock_ = {};
  fork_sources_lock_.unlock();
  fork_sources_lock_ = {};
  fork_events_lock_.unlock();
  fork_events_lock_ = {};
  for (size_t i = fork_td_locks_.size(); i-- > 0;) {
    fork_td_locks_[i].unlock();
  }
  fork_td_locks_.clear();
  fork_td_pinned_.clear();
  fork_state_lock_.unlock();
  fork_state_lock_ = {};
  audit.note_child("dbg.server_locks");

  // (3) Close every inherited descriptor: parent's listener, the
  // parent session's control and events channels (Fig. 5 -> Fig. 6).
  // The crash-notify fd points at the parent session's events socket:
  // re-key the report path to the child pid and drop it.
  crash::refresh_after_fork();
  audit.note_child("crash.report");
  if (listener_) listener_->close();
  control_.close();
  events_.close();
  // Backlogged events belong to the parent's session; the parent will
  // flush its own copy.
  event_backlog_.clear();
  // The parent's reactor is garbage here: its wakeup pipe is shared
  // with the parent and its internals may reference the (vanished)
  // listener thread. Leak it rather than run its destructor.
  (void)reactor_.release();

  // Socket half of the self-check runs HERE, while the closes above
  // are the only thing that could have touched these sockets. Once
  // bind_and_publish below writes the port record, a fast client can
  // attach to the new listener before handler C finishes — at that
  // point a valid control_/events_ is a legitimate fresh session, not
  // a leaked parent fd, and "repairing" it would sever the client we
  // just invited in.
  fork_self_check_sockets();

  // (2) Rebuild debug metadata: keep only the surviving thread's
  // per-thread state (its InterpThread keeps the object alive through
  // debugger_slot; states of vanished threads are dropped here and
  // stay alive — unlocked and untouched — through the VM's thread
  // graveyard). Breakpoints are inherited unchanged.
  {
    std::scoped_lock lock(state_mutex_);
    std::int64_t survivor = vm_.main_thread_id();
    auto it = thread_debug_.find(survivor);
    std::shared_ptr<ThreadDebug> kept =
        it == thread_debug_.end() ? nullptr : it->second;
    thread_debug_.clear();
    if (kept) thread_debug_[survivor] = kept;
  }

  // (3 continued) Fresh listener on a fresh port, published through
  // the temp file; then recreate the listener thread.
  running_.store(false, std::memory_order_relaxed);
  // The parent's listener thread does not exist in this process;
  // abandon its handle without touching pthread state.
  (void)listener_thread_.release();
  // The watchdog thread died with the parent's address space; abandon
  // the handle now so a transition can never fire mid-rebuild, restart
  // it once the session is whole again (below).
  if (watchdog_) watchdog_->abandon_after_fork();

  Status status = bind_and_publish();
  if (!status.is_ok()) {
    DLOG_ERROR("dbg") << "child could not re-bind debug server: "
                      << status.to_string();
    vm_.set_trace_enabled(false);
    fork_self_check();
    return;
  }
  start_listener_thread();

  // Hub invariant (§5.3 extended one hop): a child that rebuilt its
  // listener also re-announces itself to the hub, getting a fresh
  // session id with parent_pid linking the fork tree. hub_port_ was
  // fixed in the parent's start() and inherited across the fork.
  if (hub_port_ != 0) {
    hub_session_id_.store(0, std::memory_order_relaxed);
    Status hub_status = register_with_hub(static_cast<int>(::getppid()));
    if (!hub_status.is_ok()) {
      DLOG_WARN("dbg") << "child hub re-registration failed: "
                       << hub_status.to_string();
    }
    audit.note_child("dbg.hub_registration");
  }

  // Disturb mode (§6.4): the freshly forked process counts as a new
  // UE — stop it at its first traced line. stop_forked_children is the
  // narrower variant (processes only, not threads).
  if (disturb() || options_.stop_forked_children) {
    auto td = thread_state(vm_.main_thread_id());
    std::scoped_lock lock(td->mutex);
    td->pause_requested = true;
    td->refresh_attention();
  }

  // Re-enable the tracing that A disabled (unless the client detached
  // while the fork was in flight).
  vm_.set_trace_enabled(trace_was_enabled_ &&
                        tracing_wanted_.load(std::memory_order_relaxed));

  // The replay engine re-pointed its log at a child-owned file in the
  // VM's child handler; follow it so a crash report embeds the right
  // tail.
  if (postmortem_enabled_ && replay::engine_active()) {
    crash::set_aux_log(replay::Engine::instance().info().log_path.c_str());
  }
  if (watchdog_enabled_ && watchdog_) watchdog_->start();

  fork_self_check();
}

// Socket invariant: the parent session's sockets must be closed in
// the child — a child speaking on them interleaves bytes mid-frame
// (Fig. 5). Must run before the child's listener accepts its first
// connection (see the call site in fork_child); repairs found here are
// folded into the report fork_self_check writes at the end.
void DebugServer::fork_self_check_sockets() {
  fork_socket_repairs_ = 0;
  {
    std::scoped_lock lock(state_mutex_);
    if (control_.valid()) {
      DLOG_WARN("fork") << "self-check: parent control socket survived the "
                           "fork; closing";
      control_.close();
      ++fork_socket_repairs_;
    }
  }
  {
    std::scoped_lock lock(events_mutex_);
    if (events_.valid()) {
      DLOG_WARN("fork") << "self-check: parent events socket survived the "
                           "fork; closing";
      events_.close();
      ++fork_socket_repairs_;
    }
  }
}

// Self-check: the child invariants the handler chain just promised.
// Trust, but verify — the §5.3 failure modes (a sync object whose
// owner no longer exists, a socket shared with the parent) are exactly
// the ones that surface as unexplained hangs hours later, so a missed
// repair is worth a report the moment it happens.
void DebugServer::fork_self_check() {
  int repairs = fork_socket_repairs_;
  fork_socket_repairs_ = 0;
  const std::int64_t survivor = vm_.main_thread_id();

  // 1. Every sync object alive at prepare time must have had
  //    reinit_in_child run (generation bumped). Repair: run it now —
  //    idempotent in the single-threaded child.
  for (auto& [obj, generation] : fork_sync_gen_) {
    if (obj->child_generation() != generation) continue;  // bumped: ok
    DLOG_WARN("fork") << "self-check: " << obj->kind_name()
                      << " missed reinit_in_child; repairing";
    obj->reinit_in_child(survivor);
    ++repairs;
  }
  fork_sync_gen_.clear();

  // 2. Socket invariant: checked earlier, pre-listener, by
  //    fork_self_check_sockets (a fresh client may already be attached
  //    by now — its sockets are NOT leaked parent fds). Its repair
  //    count was folded in above.

  // 3. Code-cache invariants — the VM half of handler C, i.e. the
  //    box64 001/004 failure modes. The quicken generation must have
  //    moved past the prepare-time snapshot (004: a stale generation
  //    lets quickened trace sites keep running on gate snapshots and
  //    ICs half-written by parent-only threads), and every cache's
  //    pin count must be accounted for by the surviving frames (001:
  //    inherited pins keep dead caches unpurgeable forever). Both
  //    repairs are idempotent in the single-threaded child.
  if (vm_.quicken_generation() == fork_quicken_gen_) {
    DLOG_WARN("fork") << "self-check: quicken generation not bumped in "
                         "child; repairing";
    vm_.bump_quicken_generation();
    ++repairs;
  }
  const std::size_t stale_pins = vm_.repair_cache_pins();
  if (stale_pins > 0) {
    DLOG_WARN("fork") << "self-check: " << stale_pins
                      << " code cache(s) pinned by parent-only threads; "
                         "repaired";
    repairs += static_cast<int>(stale_pins);
  }

  // 4. The listener must be rebound (fresh port, record published).
  //    Not repairable here — bind_and_publish already failed and said
  //    so — but it must not pass silently.
  if (listener_ == nullptr || port_ == 0 ||
      !running_.load(std::memory_order_relaxed)) {
    DLOG_ERROR("fork") << "self-check: listener not rebound in child";
  }

  // 5. ForkLint atfork audit, strict: every registered primitive has
  //    its declared A/B/C coverage, the declared prepare order is
  //    acyclic, and the handler counters balance (prepare == parent +
  //    child) — i.e. no registered handler silently stopped firing.
  //    The child is single-threaded here, so no fork is in flight and
  //    the counter cross-check cannot race.
  analysis::Report audit_report = analysis::forkaudit::audit(/*strict=*/true);
  for (const analysis::Finding& finding : audit_report.findings) {
    DLOG_WARN("fork") << "self-check audit: " << finding.to_string();
    analysis::Engine::instance().add_forklint_finding(finding);
    ++repairs;
  }

  if (repairs > 0) {
    metrics::add(metrics::Counter::kForkSelfcheckRepairs,
                 static_cast<std::uint64_t>(repairs));
    // Leave a corpse describing the repaired state: if an invariant
    // broke once, the surrounding state is suspect.
    if (crash::installed()) crash::capture_now("fork-selfcheck");
  }
}

}  // namespace dionea::dbg
