// The Dionea debug protocol (§4: "Server and client interact through a
// predefined protocol using TCP/IP").
//
// Transport: framed wire::Values (ipc/frame.hpp) over two TCP
// connections per session, both made by the client to the server's
// listener port:
//   control — request/response. Request:  {cmd, seq, ...args}
//             Response: {re: seq, ok, error?, ...payload}
//   events  — server -> client pushes:    {event, ...payload}
// The first frame on each connection is a hello: {channel: "control" |
// "events", pid?: int}. This triple (listener + 2 channels) is the
// paper's three-socket design with the "source sync" socket folded
// into a control command ("source").
#pragma once

#include <cstdint>
#include <string>

#include "ipc/wire.hpp"

namespace dionea::dbg::proto {

inline constexpr const char* kChannelControl = "control";
inline constexpr const char* kChannelEvents = "events";

// ---- commands (client -> server) ----
inline constexpr const char* kCmdPing = "ping";
inline constexpr const char* kCmdInfo = "info";
inline constexpr const char* kCmdThreads = "threads";
inline constexpr const char* kCmdFrames = "frames";            // tid
inline constexpr const char* kCmdLocals = "locals";            // tid, depth
inline constexpr const char* kCmdGlobals = "globals";
inline constexpr const char* kCmdSource = "source";            // file
inline constexpr const char* kCmdEval = "eval";                // tid, depth, expr
inline constexpr const char* kCmdBreakSet = "break_set";       // file, line
inline constexpr const char* kCmdBreakClear = "break_clear";   // id
inline constexpr const char* kCmdBreakList = "break_list";
inline constexpr const char* kCmdContinue = "continue";        // tid
inline constexpr const char* kCmdContinueAll = "continue_all";
inline constexpr const char* kCmdStep = "step";                // tid
inline constexpr const char* kCmdNext = "next";                // tid
inline constexpr const char* kCmdFinish = "finish";            // tid
inline constexpr const char* kCmdPause = "pause";              // tid
inline constexpr const char* kCmdPauseAll = "pause_all";
inline constexpr const char* kCmdDisturb = "disturb";          // on: bool
inline constexpr const char* kCmdDetach = "detach";

// ---- events (server -> client) ----
inline constexpr const char* kEvStopped = "stopped";        // tid,file,line,reason
inline constexpr const char* kEvThreadStart = "thread_started";  // tid
inline constexpr const char* kEvThreadExit = "thread_exited";    // tid
inline constexpr const char* kEvForked = "forked";          // child_pid
inline constexpr const char* kEvTerminated = "terminated";  // pid
inline constexpr const char* kEvDeadlock = "deadlock";      // threads[]
inline constexpr const char* kEvOutput = "output";          // text
// Liveness beacon pushed on the events channel every heartbeat_ms
// (advertised in the ping/info response). Consumed by the client
// transport — never surfaced as a user-visible event.
inline constexpr const char* kEvHeartbeat = "heartbeat";    // pid
// Synthesized CLIENT-side (MultiClient) when a debuggee goes away:
// "process-exited" after a clean `terminated`, "process-crashed" when
// the connection died without one (SIGKILL, abort, lost peer).
inline constexpr const char* kEvProcessExited = "process-exited";    // pid
inline constexpr const char* kEvProcessCrashed = "process-crashed";  // pid

// ---- stop reasons ----
inline constexpr const char* kStopBreakpoint = "breakpoint";
inline constexpr const char* kStopStep = "step";
inline constexpr const char* kStopPause = "pause";
inline constexpr const char* kStopDisturb = "disturb";

ipc::wire::Value make_hello(const std::string& channel, int pid);
ipc::wire::Value make_request(const std::string& cmd, std::int64_t seq);
ipc::wire::Value make_ok(std::int64_t seq);
ipc::wire::Value make_error(std::int64_t seq, const std::string& message);
ipc::wire::Value make_event(const std::string& name);

}  // namespace dionea::dbg::proto
