// The Dionea debug protocol (§4: "Server and client interact through a
// predefined protocol using TCP/IP").
//
// Transport: framed wire::Values (ipc/frame.hpp) over two TCP
// connections per session, both made by the client to the server's
// listener port:
//   control — request/response. Request:  {cmd, seq, ...args}
//             Response: {re: seq, ok, error?, ...payload}
//   events  — server -> client pushes:    {event, ...payload}
// The first frame on each connection is a typed Hello carrying the
// protocol version and a capability list; peers with a different MAJOR
// are rejected with a typed error (never a hang), and a client
// negotiates DOWN gracefully when the server lacks a capability (e.g.
// an old peer simply never advertises "stats").
//
// Every command and response is a typed struct with to_wire/from_wire
// — the wire keys are the protocol's compatibility surface and live
// only inside those two functions. The server dispatches through a
// registry keyed by T::kName (server.cpp); the client sends through
// Session::send<T>() (session.cpp). Adding a command = adding a struct
// + one registry entry, with no stringly plumbing in between.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ipc/wire.hpp"
#include "support/metrics.hpp"
#include "support/result.hpp"

namespace dionea::dbg::proto {

// ---- protocol version / capabilities ----
// Major bumps break wire compatibility (rejected at hello); minor
// bumps add commands/fields old peers ignore.
inline constexpr int kProtoMajor = 1;
inline constexpr int kProtoMinor = 7;

inline constexpr const char* kCapStats = "stats";      // `stats` command
inline constexpr const char* kCapHeartbeat = "heartbeat";
inline constexpr const char* kCapReplay = "replay";    // `replay-info` command
inline constexpr const char* kCapAnalysis = "analysis";  // `analysis-report`
inline constexpr const char* kCapPostmortem = "postmortem";  // 1.4
// 1.5: the peer is a multi-session hub: it understands hub-attach /
// hub-sessions / hub-detach, routes requests by the session_id
// envelope key, and stamps session_id onto forwarded events. A plain
// DebugServer never advertises this — only the hub itself does.
inline constexpr const char* kCapHub = "hub";  // 1.5
// 1.6: the server replays a recording with fork-based checkpoints and
// understands timetravel-info / timetravel-resume. Clients finding no
// kCapTimetravel downgrade silently: every 1.5 verb keeps working.
inline constexpr const char* kCapTimetravel = "timetravel";  // 1.6
// 1.7: the server runs ForkLint (fork-safety bytecode dataflow +
// native atfork coverage audit) on demand: analysis-report grows a
// run_forklint request key and a forklint_findings response key. Both
// sides skip unknown wire keys, so a 1.6 peer downgrades silently —
// the forklint half is simply absent.
inline constexpr const char* kCapForksafety = "forksafety";  // 1.7

// What this build speaks (advertised in Hello and the ping response).
std::vector<std::string> local_capabilities();

inline constexpr const char* kChannelControl = "control";
inline constexpr const char* kChannelEvents = "events";
// 1.5: a debuggee server announcing itself to a hub. One-shot channel:
// hello, one hub-register request, one response, close.
inline constexpr const char* kChannelHubRegister = "hub-register";

// 1.5: envelope key. On requests to a hub it addresses the target
// session; on events from a hub it names the originating session.
// Direct (non-hub) peers ignore it — unknown envelope keys have always
// been skipped by the decoders.
inline constexpr const char* kSessionIdKey = "session_id";

// ---- typed error kinds ----
// Machine-readable discriminator carried next to the human message in
// error responses ("error_kind"), so clients can react without string
// matching on prose.
inline constexpr const char* kErrVersionMismatch = "version_mismatch";
inline constexpr const char* kErrUnknownCommand = "unknown_command";
inline constexpr const char* kErrBadRequest = "bad_request";

// ---- events (server -> client) ----
// The enum is the authority on which events are transport-internal:
// internal events are consumed by the client transport and NEVER
// surface to users. On the wire they additionally carry
// {"internal": true}, so even a client that does not know a (newer)
// internal event by name will not leak it.
enum class Event : int {
  kStopped,       // tid,file,line,function,reason[,breakpoint]
  kThreadStart,   // tid,pid
  kThreadExit,    // tid,pid
  kForked,        // pid,child_pid
  kTerminated,    // pid
  kDeadlock,      // pid,threads[]
  kOutput,        // text
  // Liveness beacon pushed on the events channel every heartbeat_ms
  // (advertised in the ping/info response). Transport-internal.
  kHeartbeat,     // pid
  // Synthesized CLIENT-side (MultiClient) when a debuggee goes away:
  // process-exited after a clean `terminated`, process-crashed when
  // the connection died without one (SIGKILL, abort, lost peer).
  // Since 1.4 a crashing server also pushes process-crashed itself
  // (from the fatal-signal handler, carrying the report path) — the
  // client dedupes against its own synthesis.
  kProcessExited,   // pid
  kProcessCrashed,  // pid[,report_path]
  // Watchdog state change (1.4): state,prev,stall_ms,what.
  kWatchdog,
  kUnknown,       // an event name this build does not know (newer peer)
};

const char* event_name(Event event) noexcept;
Event event_from_name(std::string_view name) noexcept;
// True for events the client transport must consume (heartbeats, any
// future internal beacon).
bool event_internal(Event event) noexcept;

// ---- stop reasons ----
inline constexpr const char* kStopBreakpoint = "breakpoint";
inline constexpr const char* kStopStep = "step";
inline constexpr const char* kStopPause = "pause";
inline constexpr const char* kStopDisturb = "disturb";

// ---- frame builders ----
ipc::wire::Value make_ok(std::int64_t seq);
ipc::wire::Value make_error(std::int64_t seq, const std::string& message,
                            const char* error_kind = nullptr);
ipc::wire::Value make_event(Event event);

// ---- hello ----
struct Hello {
  std::string channel;  // kChannelControl | kChannelEvents | hub-register
  int pid = 0;
  int proto_major = kProtoMajor;
  int proto_minor = kProtoMinor;
  std::vector<std::string> capabilities;  // what the sender speaks
  // 1.5: opaque client-chosen token sent on both channels so a hub can
  // pair a control connection with its events connection. "" from
  // older clients — the hub then falls back to default-session
  // binding (the capability-downgrade path).
  std::string client_token;

  ipc::wire::Value to_wire() const;
  // Lenient by design: a hello without version fields is a pre-1.1
  // peer and decodes as {major 1, minor 0, no capabilities}.
  static Result<Hello> from_wire(const ipc::wire::Value& value);
};

// =================== typed requests / responses ===================
// Requests carry only their arguments; Session/server add or strip the
// {cmd, seq} envelope. Responses likewise exclude {re, ok}.

struct PingRequest {
  static constexpr const char* kName = "ping";
  ipc::wire::Value to_wire() const;
  static Result<PingRequest> from_wire(const ipc::wire::Value& value);
};

struct PingResponse {
  int pid = 0;
  int heartbeat_ms = 0;
  int proto_major = 1;  // pre-1.1 servers send no version: treat as 1.0
  int proto_minor = 0;
  std::vector<std::string> capabilities;
  ipc::wire::Value to_wire() const;
  static Result<PingResponse> from_wire(const ipc::wire::Value& value);
};

struct InfoRequest {
  static constexpr const char* kName = "info";
  ipc::wire::Value to_wire() const;
  static Result<InfoRequest> from_wire(const ipc::wire::Value& value);
};

struct InfoResponse {
  int pid = 0;
  std::int64_t main_tid = 0;
  int fork_depth = 0;
  bool disturb = false;
  int heartbeat_ms = 0;
  int proto_major = 1;
  int proto_minor = 0;
  ipc::wire::Value to_wire() const;
  static Result<InfoResponse> from_wire(const ipc::wire::Value& value);
};

struct ThreadsRequest {
  static constexpr const char* kName = "threads";
  ipc::wire::Value to_wire() const;
  static Result<ThreadsRequest> from_wire(const ipc::wire::Value& value);
};

struct ThreadEntry {
  std::int64_t tid = 0;
  std::string name;
  std::string state;
  std::string file;
  int line = 0;
  std::string note;
  int depth = 0;
};

struct ThreadsResponse {
  std::vector<ThreadEntry> threads;
  ipc::wire::Value to_wire() const;
  static Result<ThreadsResponse> from_wire(const ipc::wire::Value& value);
};

struct FramesRequest {
  static constexpr const char* kName = "frames";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<FramesRequest> from_wire(const ipc::wire::Value& value);
};

struct FrameEntry {
  std::string function;
  std::string file;
  int line = 0;
};

struct FramesResponse {
  std::vector<FrameEntry> frames;
  ipc::wire::Value to_wire() const;
  static Result<FramesResponse> from_wire(const ipc::wire::Value& value);
};

struct LocalsRequest {
  static constexpr const char* kName = "locals";
  std::int64_t tid = 0;
  int depth = 0;
  ipc::wire::Value to_wire() const;
  static Result<LocalsRequest> from_wire(const ipc::wire::Value& value);
};

struct NamedValue {
  std::string name;
  std::string value;  // repr()
};

struct LocalsResponse {
  std::vector<NamedValue> locals;
  ipc::wire::Value to_wire() const;
  static Result<LocalsResponse> from_wire(const ipc::wire::Value& value);
};

struct GlobalsRequest {
  static constexpr const char* kName = "globals";
  ipc::wire::Value to_wire() const;
  static Result<GlobalsRequest> from_wire(const ipc::wire::Value& value);
};

struct GlobalsResponse {
  std::vector<NamedValue> globals;
  ipc::wire::Value to_wire() const;
  static Result<GlobalsResponse> from_wire(const ipc::wire::Value& value);
};

struct SourceRequest {
  static constexpr const char* kName = "source";
  std::string file;
  ipc::wire::Value to_wire() const;
  static Result<SourceRequest> from_wire(const ipc::wire::Value& value);
};

struct SourceResponse {
  std::string text;
  ipc::wire::Value to_wire() const;
  static Result<SourceResponse> from_wire(const ipc::wire::Value& value);
};

struct EvalRequest {
  static constexpr const char* kName = "eval";
  std::int64_t tid = 0;
  int depth = 0;
  std::string expr;
  ipc::wire::Value to_wire() const;
  static Result<EvalRequest> from_wire(const ipc::wire::Value& value);
};

struct EvalResponse {
  std::string value;  // repr()
  ipc::wire::Value to_wire() const;
  static Result<EvalResponse> from_wire(const ipc::wire::Value& value);
};

struct BreakSetRequest {
  static constexpr const char* kName = "break_set";
  std::string file;
  int line = 0;
  std::int64_t tid = 0;     // 0 = any thread
  std::int64_t ignore = 0;  // skip the first N hits
  ipc::wire::Value to_wire() const;
  static Result<BreakSetRequest> from_wire(const ipc::wire::Value& value);
};

struct BreakSetResponse {
  int id = 0;
  ipc::wire::Value to_wire() const;
  static Result<BreakSetResponse> from_wire(const ipc::wire::Value& value);
};

struct BreakClearRequest {
  static constexpr const char* kName = "break_clear";
  int id = 0;  // 0 = clear all
  ipc::wire::Value to_wire() const;
  static Result<BreakClearRequest> from_wire(const ipc::wire::Value& value);
};

struct BreakListRequest {
  static constexpr const char* kName = "break_list";
  ipc::wire::Value to_wire() const;
  static Result<BreakListRequest> from_wire(const ipc::wire::Value& value);
};

struct BreakpointEntry {
  int id = 0;
  std::string file;
  int line = 0;
  bool enabled = true;
  std::int64_t hits = 0;
};

struct BreakListResponse {
  std::vector<BreakpointEntry> breakpoints;
  ipc::wire::Value to_wire() const;
  static Result<BreakListResponse> from_wire(const ipc::wire::Value& value);
};

// Resume-family commands all carry one tid; distinct types keep the
// registry typed end to end.
struct ContinueRequest {
  static constexpr const char* kName = "continue";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<ContinueRequest> from_wire(const ipc::wire::Value& value);
};

struct StepRequest {
  static constexpr const char* kName = "step";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<StepRequest> from_wire(const ipc::wire::Value& value);
};

struct NextRequest {
  static constexpr const char* kName = "next";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<NextRequest> from_wire(const ipc::wire::Value& value);
};

struct FinishRequest {
  static constexpr const char* kName = "finish";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<FinishRequest> from_wire(const ipc::wire::Value& value);
};

struct PauseRequest {
  static constexpr const char* kName = "pause";
  std::int64_t tid = 0;
  ipc::wire::Value to_wire() const;
  static Result<PauseRequest> from_wire(const ipc::wire::Value& value);
};

struct ContinueAllRequest {
  static constexpr const char* kName = "continue_all";
  ipc::wire::Value to_wire() const;
  static Result<ContinueAllRequest> from_wire(const ipc::wire::Value& value);
};

struct PauseAllRequest {
  static constexpr const char* kName = "pause_all";
  ipc::wire::Value to_wire() const;
  static Result<PauseAllRequest> from_wire(const ipc::wire::Value& value);
};

struct DisturbRequest {
  static constexpr const char* kName = "disturb";
  bool on = false;
  ipc::wire::Value to_wire() const;
  static Result<DisturbRequest> from_wire(const ipc::wire::Value& value);
};

struct DetachRequest {
  static constexpr const char* kName = "detach";
  ipc::wire::Value to_wire() const;
  static Result<DetachRequest> from_wire(const ipc::wire::Value& value);
};

// ---- stats (1.1, capability kCapStats) ----

struct StatsRequest {
  static constexpr const char* kName = "stats";
  ipc::wire::Value to_wire() const;
  static Result<StatsRequest> from_wire(const ipc::wire::Value& value);
};

struct StatsHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_nanos = 0;
  std::uint64_t max_nanos = 0;
  std::uint64_t p50_nanos = 0;  // bucket-resolution percentiles
  std::uint64_t p99_nanos = 0;
  std::vector<std::uint64_t> buckets;  // power-of-two ns buckets

  double mean_nanos() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_nanos) /
                                  static_cast<double>(count);
  }
};

struct StatsResponse {
  int pid = 0;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<StatsHistogram> histograms;

  // nullptr when absent.
  const StatsHistogram* histogram(std::string_view name) const noexcept;
  std::int64_t counter(std::string_view name) const noexcept;

  ipc::wire::Value to_wire() const;
  static Result<StatsResponse> from_wire(const ipc::wire::Value& value);
  static StatsResponse from_snapshot(const metrics::Snapshot& snapshot,
                                     int pid);
};

// ---- replay-info (1.2, capability kCapReplay) ----
// Record/replay engine status: which mode this debuggee runs in, how
// far through the log it is, and — when a replay gave up forcing the
// recorded schedule — the step and reason of the divergence.

struct ReplayInfoRequest {
  static constexpr const char* kName = "replay-info";
  ipc::wire::Value to_wire() const;
  static Result<ReplayInfoRequest> from_wire(const ipc::wire::Value& value);
};

struct ReplayInfoResponse {
  int pid = 0;
  std::string mode;               // off | record | replay | diverged
  std::int64_t step = 0;          // records written / consumed
  std::int64_t total_steps = 0;   // log length (replay/diverged)
  std::string log_path;           // this process's log file ("" when off)
  std::int64_t divergence_step = -1;  // -1 = none
  std::string divergence_reason;

  ipc::wire::Value to_wire() const;
  static Result<ReplayInfoResponse> from_wire(const ipc::wire::Value& value);
};

// ---- analysis-report (1.3, capability kCapAnalysis) ----
// MiniSan results: dynamic race/misuse findings accumulated so far,
// plus — when run_lint is set — a fresh static lint of the program the
// VM is executing. Old servers answer kErrUnknownCommand, which the
// client maps to kNotFound; old clients simply never send this.

struct AnalysisReportRequest {
  static constexpr const char* kName = "analysis-report";
  bool run_lint = false;  // re-lint the current program on the server
  // 1.7 (kCapForksafety): run the ForkLint fork-safety dataflow plus
  // the native atfork audit on the server. Old servers skip the key.
  bool run_forklint = false;

  ipc::wire::Value to_wire() const;
  static Result<AnalysisReportRequest> from_wire(const ipc::wire::Value& value);
};

struct AnalysisFindingWire {
  std::string kind;     // finding_kind_name() slug
  std::string message;
  std::string file;
  std::int64_t line = 0;
  std::string file2;    // other half of a pair ("" when n/a)
  std::int64_t line2 = 0;
  std::int64_t step = 0;  // DRLG step at detection (1.6; 0 = none/pre-1.6)
  // Offending object ("mtx", "queue#3", an atfork registry entry name;
  // "" when n/a). 1.7 — older peers simply never see the key.
  std::string object;
};

struct AnalysisReportResponse {
  int pid = 0;
  bool enabled = false;             // dynamic detector active?
  std::int64_t accesses = 0;        // variable accesses observed
  std::int64_t sync_events = 0;     // HB edges observed
  std::vector<AnalysisFindingWire> findings;       // dynamic
  std::vector<AnalysisFindingWire> lint_findings;  // static
  // ForkLint findings (1.7, kCapForksafety; absent from 1.6 peers).
  std::vector<AnalysisFindingWire> forklint_findings;

  ipc::wire::Value to_wire() const;
  static Result<AnalysisReportResponse> from_wire(
      const ipc::wire::Value& value);
};

// ---- postmortem (1.4, capability kCapPostmortem) ----
// Post-mortem capture status: whether the fatal-signal handlers are
// armed, where the next crash report will land, and — when a report
// exists already (a previous crash, a fatal deadlock, a failed fork
// self-check) — its text, tail-capped. Old servers answer
// kErrUnknownCommand (client maps to kNotFound); the client method
// downgrades to kUnavailable without a round trip when the capability
// is not advertised.

struct PostmortemRequest {
  static constexpr const char* kName = "postmortem";
  // Write a fresh report right now (live snapshot, no crash needed) —
  // what the console's `postmortem` verb uses against a healthy
  // debuggee, and what tests use to exercise the capture path.
  bool capture = false;

  ipc::wire::Value to_wire() const;
  static Result<PostmortemRequest> from_wire(const ipc::wire::Value& value);
};

struct PostmortemResponse {
  int pid = 0;
  bool installed = false;     // handlers armed in this debuggee
  std::string report_path;    // where the (next) report lives
  bool has_report = false;    // a report file exists at report_path
  std::string report;         // its text ("" when none), tail-capped

  ipc::wire::Value to_wire() const;
  static Result<PostmortemResponse> from_wire(const ipc::wire::Value& value);
};

// ---- hub (1.5, capability kCapHub) ----
// The debug hub multiplexes many debuggee sessions behind one port.
// Debuggees announce themselves with hub-register (on the one-shot
// kChannelHubRegister channel); clients discover sessions with
// hub-sessions, subscribe their events channel with hub-attach, and
// address every other command by the kSessionIdKey envelope field.
// Clients finding no kCapHub in the ping response downgrade to plain
// 1.4 single-session behavior; servers finding none of these commands
// registered answer kErrUnknownCommand, which clients map to
// kNotFound — the same negotiation shape as stats/replay/analysis/
// postmortem before it.

// Debuggee -> hub: "I exist; dial me back." parent_pid links fork
// trees: a forked child re-registers itself (fork handler C) and gets
// a fresh session id, with parent_pid pointing at the session it was
// forked from.
struct HubRegisterRequest {
  static constexpr const char* kName = "hub-register";
  int pid = 0;
  int parent_pid = 0;
  int port = 0;  // the debuggee's own listener, for the dial-back
  int proto_major = kProtoMajor;
  int proto_minor = kProtoMinor;
  // 1.6: "debuggee" (default) or "checkpoint" — a time-travel
  // checkpoint process parked at a replay step. 1.5 peers omit it and
  // are treated as debuggees.
  std::string kind = "debuggee";
  std::vector<std::string> capabilities;

  ipc::wire::Value to_wire() const;
  static Result<HubRegisterRequest> from_wire(const ipc::wire::Value& value);
};

struct HubRegisterResponse {
  std::int64_t session_id = 0;
  ipc::wire::Value to_wire() const;
  static Result<HubRegisterResponse> from_wire(const ipc::wire::Value& value);
};

struct HubSessionsRequest {
  static constexpr const char* kName = "hub-sessions";
  ipc::wire::Value to_wire() const;
  static Result<HubSessionsRequest> from_wire(const ipc::wire::Value& value);
};

struct HubSessionEntry {
  std::int64_t session_id = 0;
  int pid = 0;
  int parent_pid = 0;
  int port = 0;
  bool alive = true;
  bool synthetic = false;  // bench/test session with no upstream socket
  int shard = 0;           // reactor shard the session is pinned to
  std::string kind = "debuggee";  // 1.6: "debuggee" | "checkpoint"
  std::int64_t events_routed = 0;
  std::int64_t events_dropped = 0;  // backpressure drops, cumulative
};

struct HubSessionsResponse {
  std::vector<HubSessionEntry> sessions;
  ipc::wire::Value to_wire() const;
  static Result<HubSessionsResponse> from_wire(const ipc::wire::Value& value);
};

// Subscribe the requesting client's events channel to a session's
// events (session_id 0 = every session, present and future).
struct HubAttachRequest {
  static constexpr const char* kName = "hub-attach";
  std::int64_t session_id = 0;
  ipc::wire::Value to_wire() const;
  static Result<HubAttachRequest> from_wire(const ipc::wire::Value& value);
};

struct HubAttachResponse {
  int attached = 0;  // sessions now covered by the subscription
  ipc::wire::Value to_wire() const;
  static Result<HubAttachResponse> from_wire(const ipc::wire::Value& value);
};

struct HubDetachRequest {
  static constexpr const char* kName = "hub-detach";
  std::int64_t session_id = 0;  // 0 = drop every subscription
  ipc::wire::Value to_wire() const;
  static Result<HubDetachRequest> from_wire(const ipc::wire::Value& value);
};

struct HubDetachResponse {
  int detached = 0;
  ipc::wire::Value to_wire() const;
  static Result<HubDetachResponse> from_wire(const ipc::wire::Value& value);
};

// ---- time travel (1.6, capability kCapTimetravel) ----
// A replaying server periodically forks checkpoint processes — copies
// of the VM frozen at a recorded step. timetravel-info describes the
// checkpoint ring; timetravel-resume forks a fresh process from the
// nearest checkpoint at or before a target step and replays it forward
// until the run-to-step gate parks every thread there. The console's
// rcontinue / rstep / rbreak verbs are sugar over these two commands
// plus a client-side set of break steps. Servers without the
// capability answer kErrUnknownCommand; clients map that to kNotFound
// and carry on — the silent-downgrade shape of every minor before it.

struct TimetravelCheckpoint {
  std::int64_t step = 0;
  int pid = 0;
  bool alive = true;
};

struct TimetravelInfoRequest {
  static constexpr const char* kName = "timetravel-info";
  ipc::wire::Value to_wire() const;
  static Result<TimetravelInfoRequest> from_wire(const ipc::wire::Value& value);
};

struct TimetravelInfoResponse {
  bool active = false;
  std::string role;  // "root" | "checkpoint" | "resumed"
  std::int64_t every = 0;      // current checkpoint spacing (steps)
  int max_live = 0;            // ring bound
  std::int64_t next_at = 0;    // next checkpoint step
  std::int64_t taken = 0;      // checkpoints forked, cumulative
  std::int64_t evicted = 0;    // ring evictions, cumulative
  std::int64_t dead = 0;       // checkpoints that died under us
  std::int64_t step = 0;       // this process's replay cursor
  std::int64_t total_steps = 0;
  std::int64_t stop_at = 0;    // armed run-to-step gate (0 = none)
  std::vector<TimetravelCheckpoint> checkpoints;

  ipc::wire::Value to_wire() const;
  static Result<TimetravelInfoResponse> from_wire(
      const ipc::wire::Value& value);
};

struct TimetravelResumeRequest {
  static constexpr const char* kName = "timetravel-resume";
  std::int64_t target_step = 0;
  ipc::wire::Value to_wire() const;
  static Result<TimetravelResumeRequest> from_wire(
      const ipc::wire::Value& value);
};

struct TimetravelResumeResponse {
  int pid = 0;  // the resumer: replays toward target, then freezes
  std::int64_t checkpoint_step = 0;
  std::int64_t target_step = 0;
  ipc::wire::Value to_wire() const;
  static Result<TimetravelResumeResponse> from_wire(
      const ipc::wire::Value& value);
};

}  // namespace dionea::dbg::proto
