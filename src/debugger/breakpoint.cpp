#include "debugger/breakpoint.hpp"

#include <algorithm>

namespace dionea::dbg {
namespace {

std::string_view basename_of(std::string_view path) {
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

int BreakpointTable::add(const std::string& file, int line,
                         std::int64_t thread_filter,
                         std::uint64_t ignore_count) {
  std::scoped_lock lock(mutex_);
  Breakpoint bp;
  bp.id = next_id_++;
  bp.file = file;
  bp.line = line;
  bp.thread_filter = thread_filter;
  bp.ignore_count = ignore_count;
  by_line_[line].push_back(bp);
  count_.fetch_add(1, std::memory_order_relaxed);
  return bp.id;
}

bool BreakpointTable::remove(int id) {
  std::scoped_lock lock(mutex_);
  for (auto& [line, bps] : by_line_) {
    auto it = std::find_if(bps.begin(), bps.end(),
                           [id](const Breakpoint& bp) { return bp.id == id; });
    if (it != bps.end()) {
      bps.erase(it);
      count_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void BreakpointTable::clear() {
  std::scoped_lock lock(mutex_);
  by_line_.clear();
  count_.store(0, std::memory_order_relaxed);
}

bool BreakpointTable::set_enabled(int id, bool enabled) {
  std::scoped_lock lock(mutex_);
  for (auto& [line, bps] : by_line_) {
    for (Breakpoint& bp : bps) {
      if (bp.id == id) {
        bp.enabled = enabled;
        return true;
      }
    }
  }
  return false;
}

int BreakpointTable::match(std::string_view file, int line,
                           std::int64_t tid) {
  if (empty()) return 0;
  std::scoped_lock lock(mutex_);
  auto it = by_line_.find(line);
  if (it == by_line_.end()) return 0;
  for (Breakpoint& bp : it->second) {
    if (!bp.enabled) continue;
    if (bp.thread_filter != 0 && bp.thread_filter != tid) continue;
    if (bp.file != file && bp.file != basename_of(file)) continue;
    ++bp.hit_count;
    if (bp.hit_count <= bp.ignore_count) continue;
    return bp.id;
  }
  return 0;
}

std::vector<Breakpoint> BreakpointTable::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<Breakpoint> out;
  for (const auto& [line, bps] : by_line_) {
    out.insert(out.end(), bps.begin(), bps.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Breakpoint& a, const Breakpoint& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace dionea::dbg
