// The Dionea debug server (§4): an in-process shim that controls the
// debuggee through the interpreter's trace facility, serves one client
// over TCP through a dedicated listener thread (Reactor pattern), and
// — the paper's contribution — stays attached across fork(2) via fork
// handlers A/B/C (§5.4):
//
//   A prepare: disable tracing, pin the server's own locks (so no
//     listener operation straddles the fork), flush pending events.
//   B parent: unpin, re-enable tracing.
//   C child: drop the inherited listener thread's sockets/reactor,
//     reset per-thread debug state, bind a fresh listener, publish the
//     new port through the temp port file, recreate the listener
//     thread, notify the (parent-session) client, re-enable tracing.
//
// Low-intrusiveness (§1 fn.1): a stop suspends exactly one interpreter
// thread — the suspended thread parks inside its trace callback with
// the GIL released, so every other thread and process runs untouched.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "debugger/breakpoint.hpp"
#include "debugger/protocol.hpp"
#include "ipc/frame.hpp"
#include "ipc/port_file.hpp"
#include "ipc/reactor.hpp"
#include "ipc/socket.hpp"
#include "support/crash_report.hpp"
#include "support/watchdog.hpp"
#include "vm/vm.hpp"

namespace dionea::dbg {

class DebugServer {
 public:
  struct Options {
    std::uint16_t port = 0;     // 0 = ephemeral
    std::string port_file;      // handoff file; required to debug forks
    bool disturb_mode = false;  // §6.4: stop every new UE at birth
    // Stop only forked child processes at their first traced line (a
    // narrower disturb: lets the client adopt a child before it runs).
    bool stop_forked_children = false;
    bool capture_output = false;  // mirror debuggee stdout to the client
    // Park the main thread at its first traced line until a client
    // attaches and resumes it (how `dioneas program.ml` behaves, §6.1).
    bool stop_at_entry = false;
    // Liveness beacon period on the events channel (0 disables). The
    // value is advertised to the client in the ping/info response so
    // it can derive its dead-peer timeout.
    int heartbeat_interval_millis = 2000;
    // How long a control frame may stall mid-read before the client is
    // presumed dead and the session dropped (half-open connections
    // must not wedge the listener thread).
    int control_recv_timeout_millis = 5000;
    // Run the full per-line bookkeeping (thread-state lock, mode
    // dispatch, breakpoint-table probe) on EVERY line event instead of
    // the two-atomic-loads fast exit. This models Dionea's actual
    // design — its per-line handler is interpreted Python — and is the
    // arm the §7 overhead benches compare against the paper.
    bool thorough_line_handling = false;
    // Post-mortem capture: install async-signal-safe crash handlers at
    // start() so a SIGSEGV/SIGABRT (or a fatal deadlock with no client)
    // leaves a DIONEA-CRASH report and — when an events channel is
    // attached — a last-gasp `process-crashed` frame on the wire.
    // DIONEA_POSTMORTEM=0 overrides to off.
    bool postmortem = true;
    std::string crash_dir;  // empty: $DIONEA_CRASH_DIR / $TMPDIR / /tmp
    // Session watchdog: sample stall deadlines (command-in-flight,
    // GIL-held, no-trace-progress) on a dedicated thread and escalate
    // healthy -> hung -> degraded -> detached instead of hanging with a
    // wedged debuggee. Off by default — the watchdog-off configuration
    // is the one the §7 overhead gate measures. DIONEA_WATCHDOG=1
    // overrides to on.
    bool watchdog = false;
    Watchdog::Options watchdog_options;
    // Debug hub (proto 1.5): when nonzero, announce this server to the
    // hub listening on 127.0.0.1:<hub_port> at start(), and again from
    // fork handler C in every child — the §5.3 "child rebinds its
    // listener" invariant extended one hop. 0 = no hub; the
    // DIONEA_HUB_PORT environment variable fills it in when unset.
    // Registration failure is logged, never fatal: a debuggee must run
    // with or without its debugger's infrastructure.
    std::uint16_t hub_port = 0;
  };

  DebugServer(vm::Vm& vm, Options options);
  ~DebugServer();
  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  // Bind, publish the port record, start the listener thread, install
  // the trace function / fork handlers / deadlock hook.
  Status start();
  // Detach: stop tracing, resume all parked threads, stop the listener.
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  bool client_connected() const;

  // Sources for run_string programs (the "source sync" data, §4).
  void register_source(const std::string& file, std::string text);

  BreakpointTable& breakpoints() noexcept { return breakpoints_; }

  void set_disturb(bool on) noexcept {
    disturb_.store(on, std::memory_order_relaxed);
  }
  bool disturb() const noexcept {
    return disturb_.load(std::memory_order_relaxed);
  }

  // Number of events pushed to the client (tests/benches).
  std::uint64_t events_sent() const noexcept {
    return events_sent_.load(std::memory_order_relaxed);
  }
  // Heartbeat frames pushed (kept out of events_sent_).
  std::uint64_t heartbeats_sent() const noexcept {
    return heartbeats_sent_.load(std::memory_order_relaxed);
  }

  // The session watchdog, when enabled (tests drive tick_for_test()).
  Watchdog* watchdog() noexcept { return watchdog_.get(); }

  // Session id the hub assigned (0 = not registered with a hub). A
  // forked child gets its own id when handler C re-registers.
  std::int64_t hub_session_id() const noexcept {
    return hub_session_id_.load(std::memory_order_relaxed);
  }

 private:
  // Per-debuggee-thread control state. `mode` is what the thread
  // should do when it reaches the next traced line.
  struct ThreadDebug {
    enum class Mode { kRun, kStepInto, kStepOver, kStepOut };
    std::mutex mutex;
    std::condition_variable cv;
    Mode mode = Mode::kRun;
    int step_base_depth = 0;
    bool pause_requested = false;  // park at next line event
    bool parked = false;
    bool resume = false;
    // Mirrors (pause_requested || mode != kRun); lets the per-line hot
    // path skip the mutex entirely when nothing is pending. Update via
    // refresh_attention() whenever either field changes (under mutex).
    std::atomic<bool> attention{false};

    void refresh_attention() {
      attention.store(pause_requested || mode != Mode::kRun,
                      std::memory_order_relaxed);
    }
  };

  std::shared_ptr<ThreadDebug> thread_state(std::int64_t tid);
  void drop_thread_state(std::int64_t tid);
  std::vector<std::shared_ptr<ThreadDebug>> debug_states_snapshot();

  // Trace callback pieces (run on debuggee threads, GIL held).
  void on_trace(vm::InterpThread& th, const vm::TraceEvent& event);
  void park_thread(vm::InterpThread& th, const vm::TraceEvent& event,
                   const std::string& reason, int breakpoint_id);

  // Listener thread.
  void listener_main();
  void handle_new_connection();
  void handle_control_frame();
  // `after_send` (if set) runs after the response frame is on the
  // wire. Resume-type commands wake the debuggee there — otherwise a
  // resumed process can exit (closing its sockets) before the client
  // has read the acknowledgement.
  ipc::wire::Value execute_command(const ipc::wire::Value& request,
                                   std::function<void()>* after_send);

  // Command registry: every protocol command is a typed handler keyed
  // by its struct's kName. execute_command strips the {cmd, seq}
  // envelope, finds the handler, and lets it decode its own request.
  using CommandHandler = std::function<ipc::wire::Value(
      const ipc::wire::Value& request, std::int64_t seq,
      std::function<void()>* after_send)>;
  void register_commands();
  // Wrap a typed handler: decodes Req::from_wire, maps a decode
  // failure to a kErrBadRequest response, passes the struct through.
  template <typename Req, typename Fn>
  void register_command(Fn handler);

  // Event push (any thread).
  void send_event(ipc::wire::Value event);
  void send_terminated_once();

  // Periodic liveness beacon (loop thread); a failed beacon write is
  // the dead-peer signal — both channels are dropped.
  void heartbeat_tick();

  // Validates and stages a resume; the returned closure (stored into
  // *wake) performs the actual wake-up.
  Status resume_thread(std::int64_t tid, ThreadDebug::Mode mode,
                       std::function<void()>* wake);

  // Fork handlers (fork_handlers.cpp).
  void fork_prepare();            // A
  void fork_parent(int child_pid);  // B
  void fork_child();              // C
  // Handler C epilogue: verify the child invariants the handler chain
  // promises (sync objects re-initialized, parent session sockets
  // closed, listener rebound) — repair what it can, count and report
  // what it repaired. The socket half must run before the child's new
  // listener accepts (a fresh session's fds look exactly like leaked
  // parent fds); its repair count carries into fork_self_check via
  // fork_socket_repairs_.
  void fork_self_check_sockets();
  void fork_self_check();
  Status bind_and_publish();
  void start_listener_thread();

  // Announce this server (pid, port, capabilities) to the hub and
  // record the assigned session id. One-shot synchronous exchange on
  // the kChannelHubRegister channel.
  Status register_with_hub(int parent_pid);

  // Robustness layer (post-mortem capture + session watchdog).
  void install_postmortem();
  void start_watchdog();
  // Pre-encode a `process-crashed` frame and point the crash handler's
  // last-gasp write at the events socket. events_mutex_ held.
  void arm_crash_notify_locked();
  Watchdog::Stall watchdog_probe();
  void watchdog_transition(Watchdog::State from, Watchdog::State to,
                           const Watchdog::Stall& stall);

  bool deadlock_hook(const std::vector<vm::DeadlockInfo>& infos);

  vm::Vm& vm_;
  Options options_;
  std::atomic<bool> disturb_{false};
  // Populated once in the constructor; read-only afterwards, so the
  // listener thread dispatches without a lock.
  std::unordered_map<std::string, CommandHandler> commands_;

  std::uint16_t port_ = 0;
  std::unique_ptr<ipc::TcpListener> listener_;
  std::unique_ptr<ipc::Reactor> reactor_;
  // unique_ptr so the child can abandon the parent's thread handle
  // without touching pthread state for a thread that does not exist
  // in this process.
  std::unique_ptr<std::thread> listener_thread_;
  std::atomic<bool> running_{false};
  std::int64_t port_seq_ = 0;
  bool hooks_installed_ = false;  // start() after stop() must not
                                  // double-register fork handlers
  // Effective hub port (Options.hub_port or DIONEA_HUB_PORT), fixed at
  // start(); inherited by forked children so handler C re-registers.
  std::uint16_t hub_port_ = 0;
  std::atomic<std::int64_t> hub_session_id_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
  // terminated must reach the client exactly once whether the program
  // calls exit() (at-exit hook) or runs off the end (stop()).
  std::atomic<bool> terminated_sent_{false};

  // Guards control/eventx streams and the thread-state map. Pinned
  // across fork by handler A.
  mutable std::mutex state_mutex_;
  ipc::TcpStream control_;
  std::map<std::int64_t, std::shared_ptr<ThreadDebug>> thread_debug_;

  // Event channel has its own lock so debuggee threads never contend
  // with long-running control commands. Also pinned across fork.
  mutable std::mutex events_mutex_;
  ipc::TcpStream events_;
  // Events raised before a client attaches (e.g. the stop-at-entry
  // park) are buffered and flushed when the events channel arrives.
  std::deque<ipc::wire::Value> event_backlog_;
  static constexpr size_t kMaxEventBacklog = 1024;
  std::atomic<std::uint64_t> events_sent_{0};

  std::mutex sources_mutex_;
  std::map<std::string, std::string> sources_;

  BreakpointTable breakpoints_;

  bool trace_was_enabled_ = false;  // handler A -> B/C handoff
  // Sticky intent: false once the client detached (or the server
  // stopped). Handlers B/C restore tracing only if still wanted —
  // otherwise a detach racing an in-flight fork would be undone by the
  // stale snapshot taken in handler A.
  std::atomic<bool> tracing_wanted_{false};
  // Handler A pins every server lock in a fixed order so no listener
  // operation straddles the fork; B unpins, C unlocks-in-child.
  std::unique_lock<std::mutex> fork_state_lock_;
  std::vector<std::shared_ptr<ThreadDebug>> fork_td_pinned_;
  std::vector<std::unique_lock<std::mutex>> fork_td_locks_;
  std::unique_lock<std::mutex> fork_events_lock_;
  std::unique_lock<std::mutex> fork_sources_lock_;
  std::unique_lock<std::mutex> fork_bp_lock_;
  // Handler A -> C: per-object generation counters at prepare time;
  // the child self-check verifies each was bumped by reinit_in_child.
  // Holding the shared_ptr keeps every snapshotted object registered
  // (and thus visited by the VM's child handler) across the fork.
  std::vector<std::pair<std::shared_ptr<vm::SyncObject>, std::uint32_t>>
      fork_sync_gen_;
  // Handler A -> C: quicken generation at prepare time; the child
  // self-check verifies the VM's child handler bumped it (a stale
  // generation means quickened trace sites would keep trusting gate
  // snapshots and IC state inherited from parent-only threads).
  std::uint64_t fork_quicken_gen_ = 0;
  int fork_socket_repairs_ = 0;  // fork_self_check_sockets -> fork_self_check
  bool first_line_seen_ = false;

  // Robustness layer. *_enabled_ are the options resolved against the
  // environment overrides, fixed at start().
  bool postmortem_enabled_ = false;
  bool watchdog_enabled_ = false;
  int crash_section_ = -1;  // slot id of our VM report section
  std::unique_ptr<Watchdog> watchdog_;
  // Stamped on command entry, zeroed on exit: the watchdog's
  // command-in-flight deadline.
  std::atomic<std::int64_t> command_started_nanos_{0};
  // Trace-progress tracking; watchdog thread only.
  std::uint64_t wd_last_line_events_ = 0;
  std::int64_t wd_last_line_change_nanos_ = 0;
};

}  // namespace dionea::dbg
