// Breakpoint table.
//
// Breakpoints survive fork: the child inherits the table (it is the
// "metadata for debugging, such as breakpoint information" of §5.3
// problem 2 / Fig. 4) — only session identity must be rebuilt, not the
// user's breakpoints. PyCharm and Dionea behave the same way.
//
// Lookup is hit on every traced line, so the table keeps a line-keyed
// index and an atomic emptiness flag for the common no-breakpoints case.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dionea::dbg {

struct Breakpoint {
  int id = 0;
  std::string file;       // exact path or bare basename
  int line = 0;
  bool enabled = true;
  std::int64_t thread_filter = 0;  // 0 = any thread
  std::uint64_t hit_count = 0;
  std::uint64_t ignore_count = 0;  // skip the first N hits
};

class BreakpointTable {
 public:
  // Returns the new breakpoint's id.
  int add(const std::string& file, int line, std::int64_t thread_filter = 0,
          std::uint64_t ignore_count = 0);
  bool remove(int id);
  void clear();
  bool set_enabled(int id, bool enabled);

  // Hot path: called from the trace callback on every line event.
  // Returns the breakpoint id hit, or 0. Matches when the breakpoint's
  // file equals the event file, or equals its basename.
  int match(std::string_view file, int line, std::int64_t tid);

  bool empty() const noexcept {
    return count_.load(std::memory_order_relaxed) == 0;
  }

  std::vector<Breakpoint> snapshot() const;

  // Fork support: the debug server pins the table's lock across fork
  // so the child cannot inherit it mid-mutation.
  std::unique_lock<std::mutex> pin_for_fork() {
    return std::unique_lock(mutex_);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, std::vector<Breakpoint>> by_line_;  // line -> bps
  int next_id_ = 1;
  std::atomic<int> count_{0};
};

}  // namespace dionea::dbg
