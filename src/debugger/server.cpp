#include "debugger/server.hpp"

#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/forkaudit.hpp"
#include "analysis/forklint.hpp"
#include "replay/replay.hpp"
#include "replay/timetravel.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "support/trace_export.hpp"

namespace dionea::dbg {

using ipc::wire::Array;
using ipc::wire::Value;

namespace {

// Success envelope + response-struct payload in one frame.
Value ok_with(std::int64_t seq, const Value& payload) {
  Value response = proto::make_ok(seq);
  for (const auto& [key, value] : payload.as_object()) {
    response.set(key, value);
  }
  return response;
}

// "0" disables, anything else (including unset) keeps the default.
bool env_allows(const char* name) {
  const char* v = std::getenv(name);
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

// Set and not "0" enables.
bool env_requests(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Same little-endian layout ipc::send_frame produces; used to
// pre-encode the crash-notify frame the signal handler blasts raw.
void put_u32le(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

}  // namespace

namespace {

// ForkLint audit contract for the debugger-driven primitives. The
// support-layer entries (metrics shards, trace exporter, crash notify
// fd) are registered here because handler C in fork_handlers.cpp is
// what repairs them — dionea_support itself never links against
// dionea_analysis. Once per process; re-tracking is idempotent.
void register_dbg_fork_contract() {
  static const bool once = [] {
    using analysis::forkaudit::Registry;
    using analysis::forkaudit::Spec;
    Registry& registry = Registry::instance();
    registry.track(Spec{.name = "dbg.server_locks",
                        .subsystem = "debugger",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true,
                        .pinned_before = {"vm.scheduler"}});
    // Child-repair-only contracts: nothing to pin, but the child must
    // rebuild them (Fig. 5/6 invariants and per-process observability).
    registry.track(Spec{.name = "dbg.hub_registration",
                        .subsystem = "debugger",
                        .needs_prepare = false,
                        .needs_parent = false,
                        .has_child = true});
    registry.track(Spec{.name = "support.metrics",
                        .subsystem = "support",
                        .needs_prepare = false,
                        .needs_parent = false,
                        .has_child = true});
    registry.track(Spec{.name = "trace.exporter",
                        .subsystem = "support",
                        .needs_prepare = false,
                        .needs_parent = false,
                        .has_child = true});
    registry.track(Spec{.name = "crash.report",
                        .subsystem = "support",
                        .needs_prepare = false,
                        .needs_parent = false,
                        .has_child = true});
    return true;
  }();
  (void)once;
}

}  // namespace

DebugServer::DebugServer(vm::Vm& vm, Options options)
    : vm_(vm), options_(std::move(options)) {
  disturb_.store(options_.disturb_mode, std::memory_order_relaxed);
  register_dbg_fork_contract();
  register_commands();
}

DebugServer::~DebugServer() { stop(); }

Status DebugServer::start() {
  DIONEA_RETURN_IF_ERROR(bind_and_publish());
  terminated_sent_.store(false);
  start_listener_thread();

  hub_port_ = options_.hub_port;
  if (hub_port_ == 0) {
    if (const char* env = std::getenv("DIONEA_HUB_PORT")) {
      long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0 && parsed <= 65535)
        hub_port_ = static_cast<std::uint16_t>(parsed);
    }
  }
  if (hub_port_ != 0) {
    // Listener first, registration second: the hub dials back the
    // moment it replies, and must find someone accepting.
    Status hub_status = register_with_hub(/*parent_pid=*/0);
    if (!hub_status.is_ok()) {
      DLOG_WARN("dbg") << "hub registration failed (continuing without): "
                       << hub_status.to_string();
    }
  }

  // The debuggee sees the server only through these three hooks — the
  // same coupling Dionea has with the interpreters it debugs.
  vm_.set_trace_fn([this](vm::Vm&, vm::InterpThread& th,
                          const vm::TraceEvent& event) { on_trace(th, event); });
  // add_fork_handlers appends: a restarted server (stop() then
  // start(), e.g. crash-recovery) must not stack a second set — the
  // duplicate handler A would self-deadlock pinning the same locks.
  if (!hooks_installed_) {
    hooks_installed_ = true;
    vm_.add_fork_handlers(vm::ForkHooks{
        [this](vm::Vm&) { fork_prepare(); },
        [this](vm::Vm&, int child_pid) { fork_parent(child_pid); },
        [this](vm::Vm&, int) { fork_child(); },
    });
  }
  vm_.set_deadlock_hook(
      [this](vm::Vm&, const std::vector<vm::DeadlockInfo>& infos) {
        return deadlock_hook(infos);
      });
  vm_.set_at_exit_hook([this](vm::Vm&) { send_terminated_once(); });
  if (options_.capture_output) {
    vm_.set_output([this](std::string_view text) {
      Value event = proto::make_event(proto::Event::kOutput);
      event.set("text", std::string(text));
      send_event(std::move(event));
      // Still mirror to the real stdout so local runs stay readable.
      std::fwrite(text.data(), 1, text.size(), stdout);
      std::fflush(stdout);
    });
  }
  tracing_wanted_.store(true, std::memory_order_relaxed);
  vm_.set_trace_enabled(true);

  postmortem_enabled_ = options_.postmortem && env_allows("DIONEA_POSTMORTEM");
  watchdog_enabled_ = options_.watchdog || env_requests("DIONEA_WATCHDOG");
  if (postmortem_enabled_) install_postmortem();
  if (watchdog_enabled_) start_watchdog();
  // Checkpointing is part of the debug-server lifecycle: a replaying
  // server with DIONEA_CKPT_EVERY set starts forking checkpoints.
  replay::tt::CheckpointManager::init_from_env(vm_);
  return Status::ok();
}

Status DebugServer::register_with_hub(int parent_pid) {
  auto stream = ipc::TcpStream::connect_retry(hub_port_, 2000);
  if (!stream.is_ok()) return stream.error();
  (void)stream.value().set_nodelay(true);
  proto::Hello hello;
  hello.channel = proto::kChannelHubRegister;
  hello.pid = static_cast<int>(::getpid());
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(stream.value(), hello.to_wire()));
  proto::HubRegisterRequest request;
  request.pid = static_cast<int>(::getpid());
  request.parent_pid = parent_pid;
  request.port = port_;
  // A checkpoint (or a resumer forked from one) registers as a
  // `checkpoint` session so hub listings can tell frozen snapshots
  // from the live debuggee.
  request.kind =
      replay::tt::CheckpointManager::instance().role() ==
              replay::tt::Role::kRoot
          ? "debuggee"
          : "checkpoint";
  request.capabilities = proto::local_capabilities();
  Value frame = request.to_wire();
  frame.set("cmd", proto::HubRegisterRequest::kName);
  frame.set("seq", static_cast<std::int64_t>(1));
  DIONEA_RETURN_IF_ERROR(ipc::send_frame(stream.value(), frame));
  auto reply = ipc::recv_frame_timeout(stream.value(), 2000);
  if (!reply.is_ok()) return reply.error();
  if (!reply.value().get_bool("ok")) {
    return Status(ErrorCode::kProtocol, "hub refused registration: " +
                                            reply.value().get_string("error"));
  }
  auto response = proto::HubRegisterResponse::from_wire(reply.value());
  if (!response.is_ok()) return response.error();
  hub_session_id_.store(response.value().session_id,
                        std::memory_order_relaxed);
  DLOG_INFO("dbg") << "registered with hub on port " << hub_port_
                   << " as session " << response.value().session_id;
  return Status::ok();
}

void DebugServer::install_postmortem() {
  crash::Options copts;
  copts.dir = options_.crash_dir;
  Status status = crash::install(copts);
  if (!status.is_ok()) {
    DLOG_WARN("dbg") << "post-mortem capture unavailable: "
                     << status.to_string();
    postmortem_enabled_ = false;
    return;
  }
  if (crash_section_ < 0) {
    crash_section_ = crash::add_section(
        "vm",
        [](crash::Writer& w, void* ctx) {
          static_cast<DebugServer*>(ctx)->vm_.crash_dump(w);
        },
        this);
  }
  if (replay::engine_active()) {
    crash::set_aux_log(replay::Engine::instance().info().log_path.c_str());
  }
}

void DebugServer::start_watchdog() {
  // The GIL timestamps its grants only while someone is watching —
  // keeps the clock read off the default acquire path (§7 gate).
  vm_.gil().set_hold_watch(true);
  if (!watchdog_) {
    watchdog_ = std::make_unique<Watchdog>(
        options_.watchdog_options, [this] { return watchdog_probe(); },
        [this](Watchdog::State from, Watchdog::State to,
               const Watchdog::Stall& stall) {
          watchdog_transition(from, to, stall);
        });
  }
  watchdog_->start();
}

Status DebugServer::bind_and_publish() {
  auto listener = ipc::TcpListener::bind(options_.port);
  if (!listener.is_ok()) return listener.error();
  listener_ = std::make_unique<ipc::TcpListener>(std::move(listener).value());
  port_ = listener_->port();
  if (!options_.port_file.empty()) {
    ipc::PortFile port_file(options_.port_file);
    DIONEA_RETURN_IF_ERROR(port_file.publish(ipc::PortRecord{
        static_cast<int>(::getpid()), static_cast<int>(::getppid()), port_,
        port_seq_++}));
  }
  return Status::ok();
}

void DebugServer::start_listener_thread() {
  reactor_ = std::make_unique<ipc::Reactor>();
  reactor_->add_fd(listener_->raw_fd(), [this] { handle_new_connection(); });
  if (options_.heartbeat_interval_millis > 0) {
    reactor_->add_periodic(options_.heartbeat_interval_millis,
                           [this] { heartbeat_tick(); });
  }
  running_.store(true, std::memory_order_relaxed);
  listener_thread_ = std::make_unique<std::thread>([this] { listener_main(); });
}

void DebugServer::listener_main() {
  Status status = reactor_->run();
  if (!status.is_ok()) {
    DLOG_ERROR("dbg") << "listener loop failed: " << status.to_string();
  }
}

void DebugServer::stop() {
  if (!running_.exchange(false)) return;
  // The watchdog goes first: a transition callback racing the teardown
  // below would touch sockets mid-close.
  if (watchdog_) watchdog_->stop();
  crash::disarm_notify();
  // The signal handlers stay installed (a crash after detach should
  // still leave a report), but our section must not outlive `this`.
  if (crash_section_ >= 0) {
    crash::remove_section(crash_section_);
    crash_section_ = -1;
  }
  tracing_wanted_.store(false, std::memory_order_relaxed);
  vm_.set_trace_enabled(false);
  // Resume every parked thread so the debuggee can finish.
  std::vector<std::shared_ptr<ThreadDebug>> states;
  {
    std::scoped_lock lock(state_mutex_);
    for (auto& [tid, td] : thread_debug_) states.push_back(td);
  }
  for (auto& td : states) {
    std::scoped_lock lock(td->mutex);
    td->mode = ThreadDebug::Mode::kRun;
    td->pause_requested = false;
    td->refresh_attention();
    td->resume = true;
    td->cv.notify_all();
  }
  if (reactor_) reactor_->stop();
  if (listener_thread_ && listener_thread_->joinable()) {
    listener_thread_->join();
  }
  listener_thread_.reset();
  // A program that runs off the end never fires the VM at-exit hook
  // (only exit() and forked children do) — without this the client
  // sees a bare EOF and reports a clean shutdown as a crash.
  send_terminated_once();
  {
    std::scoped_lock lock(state_mutex_);
    control_.close();
  }
  {
    std::scoped_lock lock(events_mutex_);
    events_.close();
  }
  if (listener_) listener_->close();
}

bool DebugServer::client_connected() const {
  std::scoped_lock lock(state_mutex_);
  return control_.valid();
}

void DebugServer::register_source(const std::string& file, std::string text) {
  std::scoped_lock lock(sources_mutex_);
  sources_[file] = std::move(text);
}

// ------------------------------------------------------------ thread state

std::shared_ptr<DebugServer::ThreadDebug> DebugServer::thread_state(
    std::int64_t tid) {
  std::scoped_lock lock(state_mutex_);
  auto it = thread_debug_.find(tid);
  if (it != thread_debug_.end()) return it->second;
  auto td = std::make_shared<ThreadDebug>();
  thread_debug_[tid] = td;
  return td;
}

void DebugServer::drop_thread_state(std::int64_t tid) {
  std::scoped_lock lock(state_mutex_);
  thread_debug_.erase(tid);
}

std::vector<std::shared_ptr<DebugServer::ThreadDebug>>
DebugServer::debug_states_snapshot() {
  std::scoped_lock lock(state_mutex_);
  std::vector<std::shared_ptr<ThreadDebug>> out;
  out.reserve(thread_debug_.size());
  for (auto& [tid, td] : thread_debug_) out.push_back(td);
  return out;
}

// ----------------------------------------------------------------- events

void DebugServer::send_terminated_once() {
  if (terminated_sent_.exchange(true)) return;
  Value event = proto::make_event(proto::Event::kTerminated);
  event.set("pid", static_cast<int>(::getpid()));
  send_event(std::move(event));
}

void DebugServer::send_event(Value event) {
  std::scoped_lock lock(events_mutex_);
  if (!events_.valid()) {
    // No client yet: buffer, so a stop raised before attach (e.g. the
    // stop-at-entry park) is not lost.
    if (event_backlog_.size() >= kMaxEventBacklog) {
      event_backlog_.pop_front();
    }
    event_backlog_.push_back(std::move(event));
    return;
  }
  Status status = ipc::send_frame(events_, event);
  if (!status.is_ok()) {
    DLOG_DEBUG("dbg") << "event channel lost: " << status.to_string();
    crash::disarm_notify();
    events_.close();
    return;
  }
  events_sent_.fetch_add(1, std::memory_order_relaxed);
  metrics::add(metrics::Counter::kEventsSent);
}

void DebugServer::heartbeat_tick() {
  // Runs on the loop thread. A beacon the kernel cannot deliver means
  // the client is gone (crashed, SIGKILLed, unplugged): drop the
  // session instead of carrying dead sockets forever. The debuggee
  // itself keeps running — a lost client never stops the program.
  bool peer_lost = false;
  {
    std::scoped_lock lock(events_mutex_);
    if (!events_.valid()) return;
    Value beacon = proto::make_event(proto::Event::kHeartbeat);
    beacon.set("pid", static_cast<int>(::getpid()));
    Status status = ipc::send_frame(events_, beacon);
    if (status.is_ok()) {
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      DLOG_DEBUG("dbg") << "heartbeat undeliverable, client presumed dead: "
                        << status.to_string();
      crash::disarm_notify();
      events_.close();
      peer_lost = true;
    }
  }
  if (peer_lost) {
    std::scoped_lock lock(state_mutex_);
    if (control_.valid()) {
      reactor_->remove_fd(control_.raw_fd());
      control_.close();
    }
  }
}

// --------------------------------------------------------- post-mortem

void DebugServer::arm_crash_notify_locked() {
  if (!events_.valid() || !crash::installed()) return;
  // The handler cannot encode (malloc, locks) — everything is done
  // here, down to the frame header, and the handler does one write().
  Value event = proto::make_event(proto::Event::kProcessCrashed);
  event.set("pid", static_cast<int>(::getpid()));
  event.set("report_path", crash::report_path_string());
  event.set("reason", "signal");
  std::string payload;
  event.encode(&payload);
  std::string frame(8, '\0');
  put_u32le(frame.data(), ipc::kFrameMagic);
  put_u32le(frame.data() + 4, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  crash::arm_notify(events_.raw_fd(), frame.data(), frame.size());
}

// ----------------------------------------------------------- watchdog

Watchdog::Stall DebugServer::watchdog_probe() {
  const std::int64_t now = mono_nanos();
  Watchdog::Stall worst;
  auto consider = [&](std::int64_t since_nanos, const char* what) {
    if (since_nanos <= 0) return;
    const std::int64_t millis = (now - since_nanos) / 1'000'000;
    if (millis > worst.millis) worst = Watchdog::Stall{millis, what};
  };
  // Deadline 1: a control command stuck inside the VM.
  consider(command_started_nanos_.load(std::memory_order_relaxed),
           "command-in-flight");
  // Deadline 2: one thread sitting on the GIL (wedged native call /
  // trace hook). The mirror is only timestamped while hold_watch is on.
  consider(vm_.gil().held_since_nanos(), "gil-held");
  // Deadline 3: trace dispatch stopped making progress while a thread
  // owns the GIL and nothing is parked — running but not reaching line
  // events. Fed by the sharded metrics registry.
  const metrics::Snapshot snap = metrics::Registry::instance().snapshot();
  const std::uint64_t lines =
      snap.counters[static_cast<int>(metrics::Counter::kTraceLineEvents)];
  const bool parked =
      snap.gauges[static_cast<int>(metrics::Gauge::kParkedThreads)] > 0;
  if (lines != wd_last_line_events_ || wd_last_line_change_nanos_ == 0) {
    wd_last_line_events_ = lines;
    wd_last_line_change_nanos_ = now;
  } else if (vm_.trace_enabled() && !parked &&
             vm_.gil().owner_relaxed() != 0) {
    consider(wd_last_line_change_nanos_, "no-trace-progress");
  }
  return worst;
}

void DebugServer::watchdog_transition(Watchdog::State from, Watchdog::State to,
                                      const Watchdog::Stall& stall) {
  DLOG_WARN("dbg") << "watchdog: " << Watchdog::state_name(from) << " -> "
                   << Watchdog::state_name(to) << " (" << stall.what << ", "
                   << stall.millis << "ms)";
  Value event = proto::make_event(proto::Event::kWatchdog);
  event.set("pid", static_cast<int>(::getpid()));
  event.set("state", std::string(Watchdog::state_name(to)));
  event.set("prev", std::string(Watchdog::state_name(from)));
  event.set("stall_millis", stall.millis);
  event.set("what", std::string(stall.what));
  send_event(std::move(event));
  switch (to) {
    case Watchdog::State::kHealthy:
      // Recovered: undo the degraded-mode shedding (if still wanted).
      vm_.set_trace_enabled(
          tracing_wanted_.load(std::memory_order_relaxed));
      break;
    case Watchdog::State::kHung:
      break;  // the event itself is the action: the client is warned
    case Watchdog::State::kDegraded: {
      // Shed debugger load: stop tracing and release every parked
      // thread so the debuggee can drain whatever it is stuck behind.
      vm_.set_trace_enabled(false);
      auto states = debug_states_snapshot();
      for (auto& td : states) {
        std::scoped_lock lock(td->mutex);
        td->mode = ThreadDebug::Mode::kRun;
        td->pause_requested = false;
        td->refresh_attention();
        td->resume = true;
        td->cv.notify_all();
      }
      break;
    }
    case Watchdog::State::kDetached: {
      // Terminal: drop the session, keep the debuggee and the listener
      // alive — a fresh client can attach and start over.
      {
        std::scoped_lock lock(events_mutex_);
        if (events_.valid()) {
          crash::disarm_notify();
          events_.close();
        }
      }
      std::scoped_lock lock(state_mutex_);
      if (control_.valid()) {
        reactor_->remove_fd(control_.raw_fd());
        control_.close();
      }
      break;
    }
  }
}

// ------------------------------------------------------------------ trace

void DebugServer::on_trace(vm::InterpThread& th,
                           const vm::TraceEvent& event) {
  switch (event.kind) {
    case vm::TraceKind::kCall:
    case vm::TraceKind::kReturn:
      return;  // stepping uses frame depth carried by line events

    case vm::TraceKind::kThreadStart: {
      auto td = thread_state(event.thread_id);
      th.debugger_slot = td;
      // §6.4: stop every NEW UE at birth. The process's original main
      // thread is not new (forked children are handled by handler C).
      if (disturb() && event.thread_id != vm_.main_thread_id()) {
        std::scoped_lock lock(td->mutex);
        td->pause_requested = true;
        td->refresh_attention();
      }
      Value ev = proto::make_event(proto::Event::kThreadStart);
      ev.set("tid", event.thread_id);
      ev.set("pid", static_cast<int>(::getpid()));
      send_event(std::move(ev));
      return;
    }
    case vm::TraceKind::kThreadEnd: {
      Value ev = proto::make_event(proto::Event::kThreadExit);
      ev.set("tid", event.thread_id);
      ev.set("pid", static_cast<int>(::getpid()));
      send_event(std::move(ev));
      drop_thread_state(event.thread_id);
      th.debugger_slot.reset();
      return;
    }

    case vm::TraceKind::kLine:
      break;
  }

  // Line event — the hot path. The §7 overhead numbers live and die
  // here: with no breakpoints and no pending stop, this is two relaxed
  // atomic loads and out.
  ThreadDebug* td = static_cast<ThreadDebug*>(th.debugger_slot.get());
  if (td == nullptr) {
    th.debugger_slot = thread_state(event.thread_id);
    td = static_cast<ThreadDebug*>(th.debugger_slot.get());
  }
  if (!options_.thorough_line_handling &&
      !td->attention.load(std::memory_order_relaxed) &&
      breakpoints_.empty() && first_line_seen_) {
    return;
  }

  const char* reason = nullptr;
  {
    std::scoped_lock lock(td->mutex);
    if (td->pause_requested) {
      td->pause_requested = false;
      reason = disturb() ? proto::kStopDisturb : proto::kStopPause;
    } else {
      switch (td->mode) {
        case ThreadDebug::Mode::kRun:
          break;
        case ThreadDebug::Mode::kStepInto:
          reason = proto::kStopStep;
          break;
        case ThreadDebug::Mode::kStepOver:
          if (event.frame_depth <= td->step_base_depth) {
            reason = proto::kStopStep;
          }
          break;
        case ThreadDebug::Mode::kStepOut:
          if (event.frame_depth < td->step_base_depth) {
            reason = proto::kStopStep;
          }
          break;
      }
      if (reason != nullptr) td->mode = ThreadDebug::Mode::kRun;
    }
    td->refresh_attention();
  }

  if (!first_line_seen_) {
    first_line_seen_ = true;
    if (options_.stop_at_entry && reason == nullptr) {
      reason = proto::kStopPause;
    }
  }

  int breakpoint_id = 0;
  if (reason == nullptr) {
    breakpoint_id = breakpoints_.match(event.file, event.line,
                                       event.thread_id);
    if (breakpoint_id != 0) reason = proto::kStopBreakpoint;
  }
  if (reason == nullptr) return;
  park_thread(th, event, reason, breakpoint_id);
}

void DebugServer::park_thread(vm::InterpThread& th,
                              const vm::TraceEvent& event,
                              const std::string& reason, int breakpoint_id) {
  auto td = std::static_pointer_cast<ThreadDebug>(th.debugger_slot);
  {
    std::scoped_lock lock(td->mutex);
    td->parked = true;
    td->resume = false;
  }
  metrics::add(metrics::Counter::kStops);
  metrics::gauge_add(metrics::Gauge::kParkedThreads, 1);
  metrics::ScopedTimer park_timer(metrics::Histogram::kStopParkNanos);
  trace::Span span("stop:" + reason, "debugger");
  // Low-intrusive suspension: this thread releases the GIL and waits;
  // every other UE keeps running at full speed (§1 footnote 1). The
  // stopped event is sent only after the BlockScope has published the
  // kDebugParked state, so a client that reacts to the event with a
  // `threads` command sees a consistent picture.
  {
    vm::Vm::BlockScope scope(vm_, th, vm::ThreadState::kDebugParked,
                             "debugger (" + reason + ")");
    Value ev = proto::make_event(proto::Event::kStopped);
    ev.set("pid", static_cast<int>(::getpid()));
    ev.set("tid", event.thread_id);
    ev.set("file", std::string(event.file));
    ev.set("line", event.line);
    ev.set("function", std::string(event.function));
    ev.set("reason", reason);
    if (breakpoint_id != 0) ev.set("breakpoint", breakpoint_id);
    send_event(std::move(ev));
    (void)vm_.wait_interruptible(th, td->mutex, td->cv,
                                 [&] { return td->resume; });
  }
  park_timer.stop();
  metrics::gauge_add(metrics::Gauge::kParkedThreads, -1);
  {
    std::scoped_lock lock(td->mutex);
    td->parked = false;
    td->resume = false;
    // Anchor step-over / step-out to where the user resumed from.
    td->step_base_depth = event.frame_depth;
    td->refresh_attention();
  }
}

// ----------------------------------------------------------- connections

void DebugServer::handle_new_connection() {
  auto accepted = listener_->accept();
  if (!accepted.is_ok()) {
    DLOG_WARN("dbg") << "accept failed: " << accepted.error().to_string();
    return;
  }
  ipc::TcpStream stream = std::move(accepted).value();
  auto frame = ipc::recv_frame_timeout(stream, 2000);
  if (!frame.is_ok()) {
    DLOG_WARN("dbg") << "bad hello: " << frame.error().to_string();
    return;
  }
  (void)stream.set_nodelay(true);
  auto hello = proto::Hello::from_wire(frame.value());
  if (!hello.is_ok()) {
    Value refusal = proto::make_error(
        0, "bad hello: " + hello.error().message(), proto::kErrBadRequest);
    (void)ipc::send_frame(stream, refusal);
    return;
  }
  const proto::Hello& hi = hello.value();
  if (hi.proto_major != proto::kProtoMajor) {
    // A different major means the wire layouts disagree; answering in
    // OUR dialect and carrying on would wedge both sides. Reject with
    // a typed error (the one shape every version understands) and
    // close. Minor skew is fine: additive commands old peers ignore.
    Value refusal = proto::make_error(
        0,
        "protocol version mismatch: server speaks " +
            std::to_string(proto::kProtoMajor) + "." +
            std::to_string(proto::kProtoMinor) + ", client sent " +
            std::to_string(hi.proto_major) + "." +
            std::to_string(hi.proto_minor),
        proto::kErrVersionMismatch);
    (void)ipc::send_frame(stream, refusal);
    return;
  }
  if (hi.channel == proto::kChannelControl) {
    std::scoped_lock lock(state_mutex_);
    if (control_.valid()) {
      // 1 server : 1 client (§4.1) — two clients driving one debuggee
      // would make it inconsistent.
      Value refusal = proto::make_error(0, "a client is already attached",
                                        proto::kErrBadRequest);
      (void)ipc::send_frame(stream, refusal);
      return;
    }
    control_ = std::move(stream);
    int fd = control_.raw_fd();
    reactor_->add_fd(fd, [this] { handle_control_frame(); });
    return;
  }
  if (hi.channel == proto::kChannelEvents) {
    std::scoped_lock lock(events_mutex_);
    crash::disarm_notify();  // any previous socket is gone
    events_ = std::move(stream);
    // Flush everything that happened before the client attached.
    while (!event_backlog_.empty() && events_.valid()) {
      Status status = ipc::send_frame(events_, event_backlog_.front());
      if (!status.is_ok()) {
        events_.close();
        break;
      }
      event_backlog_.pop_front();
      events_sent_.fetch_add(1, std::memory_order_relaxed);
      metrics::add(metrics::Counter::kEventsSent);
    }
    if (postmortem_enabled_) arm_crash_notify_locked();
    return;
  }
  DLOG_WARN("dbg") << "unknown channel '" << hi.channel << "'";
}

void DebugServer::handle_control_frame() {
  // Lock discipline: state_mutex_ is held only around socket access,
  // never across execute_command — several commands acquire the GIL
  // (vm_.list_threads etc.), and a debuggee thread holding the GIL may
  // be taking state_mutex_ in thread_state() at the same moment.
  Result<Value> request = [&]() -> Result<Value> {
    std::scoped_lock lock(state_mutex_);
    if (!control_.valid()) {
      return Error(ErrorCode::kClosed, "no control channel");
    }
    // Bounded receive: the reactor says bytes are ready, but a client
    // that died after a partial frame must yield kTimeout here, not
    // wedge the listener thread (which holds state_mutex_).
    return ipc::recv_frame_timeout(control_,
                                   options_.control_recv_timeout_millis);
  }();
  if (!request.is_ok()) {
    std::scoped_lock lock(state_mutex_);
    if (control_.valid()) {
      // Client went away (or spoke garbage): drop the session; a new
      // client may attach later.
      reactor_->remove_fd(control_.raw_fd());
      control_.close();
    }
    return;
  }
  std::function<void()> after_send;
  Value response = execute_command(request.value(), &after_send);
  {
    std::scoped_lock lock(state_mutex_);
    if (!control_.valid()) return;
    Status status = ipc::send_frame(control_, response);
    if (!status.is_ok()) {
      reactor_->remove_fd(control_.raw_fd());
      control_.close();
    }
  }
  // Wake resumed threads only now: a resumed debuggee may exit
  // immediately, and the client must have its acknowledgement first.
  if (after_send) after_send();
}

// ----------------------------------------------------------------- commands

ipc::wire::Value DebugServer::execute_command(
    const Value& request, std::function<void()>* after_send) {
  const std::string cmd = request.get_string("cmd");
  const std::int64_t seq = request.get_int("seq");
  metrics::add(metrics::Counter::kCommandsServed);
  metrics::ScopedTimer timer(metrics::Histogram::kCommandNanos);
  trace::Span span("cmd:" + cmd, "debugger");
  auto it = commands_.find(cmd);
  if (it == commands_.end()) {
    // Typed kind: a 1.x client probing for a newer minor's command
    // (e.g. `stats` against a 1.0 server) distinguishes "not
    // supported" from a real failure without parsing prose.
    return proto::make_error(seq, "unknown command '" + cmd + "'",
                             proto::kErrUnknownCommand);
  }
  // Stamp the in-flight window for the watchdog's command deadline: a
  // handler wedged inside the VM is exactly the stall the session
  // cannot otherwise see.
  command_started_nanos_.store(mono_nanos(), std::memory_order_relaxed);
  Value response = it->second(request, seq, after_send);
  command_started_nanos_.store(0, std::memory_order_relaxed);
  return response;
}

template <typename Req, typename Fn>
void DebugServer::register_command(Fn handler) {
  commands_[Req::kName] = [handler](const Value& request, std::int64_t seq,
                                    std::function<void()>* after_send) {
    Result<Req> req = Req::from_wire(request);
    if (!req.is_ok()) {
      return proto::make_error(seq, req.error().message(),
                               proto::kErrBadRequest);
    }
    return handler(std::move(req).value(), seq, after_send);
  };
}

void DebugServer::register_commands() {
  using Wake = std::function<void()>*;

  register_command<proto::PingRequest>(
      [this](const proto::PingRequest&, std::int64_t seq, Wake) {
        proto::PingResponse resp;
        resp.pid = static_cast<int>(::getpid());
        resp.heartbeat_ms = options_.heartbeat_interval_millis;
        resp.proto_major = proto::kProtoMajor;
        resp.proto_minor = proto::kProtoMinor;
        resp.capabilities = proto::local_capabilities();
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::InfoRequest>(
      [this](const proto::InfoRequest&, std::int64_t seq, Wake) {
        proto::InfoResponse resp;
        resp.pid = static_cast<int>(::getpid());
        resp.main_tid = vm_.main_thread_id();
        resp.fork_depth = vm_.fork_depth();
        resp.disturb = disturb();
        resp.heartbeat_ms = options_.heartbeat_interval_millis;
        resp.proto_major = proto::kProtoMajor;
        resp.proto_minor = proto::kProtoMinor;
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::ThreadsRequest>(
      [this](const proto::ThreadsRequest&, std::int64_t seq, Wake) {
        proto::ThreadsResponse resp;
        for (const vm::ThreadInfo& info : vm_.list_threads()) {
          resp.threads.push_back(proto::ThreadEntry{
              info.id, info.name, vm::thread_state_name(info.state),
              info.file, info.line, info.block_note, info.frame_depth});
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::FramesRequest>(
      [this](const proto::FramesRequest& req, std::int64_t seq, Wake) {
        proto::FramesResponse resp;
        for (const vm::FrameInfo& frame : vm_.thread_frames(req.tid)) {
          resp.frames.push_back(
              proto::FrameEntry{frame.function, frame.file, frame.line});
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::LocalsRequest>(
      [this](const proto::LocalsRequest& req, std::int64_t seq, Wake) {
        proto::LocalsResponse resp;
        for (const auto& [name, repr] : vm_.frame_locals(req.tid, req.depth)) {
          resp.locals.push_back(proto::NamedValue{name, repr});
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::GlobalsRequest>(
      [this](const proto::GlobalsRequest&, std::int64_t seq, Wake) {
        proto::GlobalsResponse resp;
        for (const auto& [name, repr] : vm_.globals_snapshot()) {
          resp.globals.push_back(proto::NamedValue{name, repr});
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::SourceRequest>(
      [this](const proto::SourceRequest& req, std::int64_t seq, Wake) {
        {
          std::scoped_lock lock(sources_mutex_);
          auto it = sources_.find(req.file);
          if (it != sources_.end()) {
            return ok_with(seq, proto::SourceResponse{it->second}.to_wire());
          }
        }
        auto text = read_file(req.file);
        if (!text.is_ok()) {
          return proto::make_error(
              seq, "cannot read source: " + text.error().to_string());
        }
        return ok_with(
            seq, proto::SourceResponse{std::move(text).value()}.to_wire());
      });

  register_command<proto::EvalRequest>(
      [this](const proto::EvalRequest& req, std::int64_t seq, Wake) {
        // Fig. 2's command shell `p expr`: evaluate in a suspended frame.
        auto value = vm_.eval_in_frame(req.tid, req.depth, req.expr);
        if (!value.is_ok()) {
          return proto::make_error(seq, value.error().message());
        }
        return ok_with(
            seq, proto::EvalResponse{std::move(value).value()}.to_wire());
      });

  register_command<proto::BreakSetRequest>(
      [this](const proto::BreakSetRequest& req, std::int64_t seq, Wake) {
        int id = breakpoints_.add(req.file, req.line, req.tid,
                                  static_cast<std::uint64_t>(req.ignore));
        return ok_with(seq, proto::BreakSetResponse{id}.to_wire());
      });

  register_command<proto::BreakClearRequest>(
      [this](const proto::BreakClearRequest& req, std::int64_t seq, Wake) {
        if (req.id == 0) {
          breakpoints_.clear();
          return proto::make_ok(seq);
        }
        if (!breakpoints_.remove(req.id)) {
          return proto::make_error(seq, "no such breakpoint");
        }
        return proto::make_ok(seq);
      });

  register_command<proto::BreakListRequest>(
      [this](const proto::BreakListRequest&, std::int64_t seq, Wake) {
        proto::BreakListResponse resp;
        for (const Breakpoint& bp : breakpoints_.snapshot()) {
          resp.breakpoints.push_back(proto::BreakpointEntry{
              bp.id, bp.file, bp.line, bp.enabled,
              static_cast<std::int64_t>(bp.hit_count)});
        }
        return ok_with(seq, resp.to_wire());
      });

  auto resume = [this](std::int64_t tid, ThreadDebug::Mode mode,
                       std::int64_t seq, Wake after_send) {
    Status status = resume_thread(tid, mode, after_send);
    if (!status.is_ok()) return proto::make_error(seq, status.to_string());
    return proto::make_ok(seq);
  };
  register_command<proto::ContinueRequest>(
      [resume](const proto::ContinueRequest& req, std::int64_t seq,
               Wake after_send) {
        return resume(req.tid, ThreadDebug::Mode::kRun, seq, after_send);
      });
  register_command<proto::StepRequest>(
      [resume](const proto::StepRequest& req, std::int64_t seq,
               Wake after_send) {
        return resume(req.tid, ThreadDebug::Mode::kStepInto, seq, after_send);
      });
  register_command<proto::NextRequest>(
      [resume](const proto::NextRequest& req, std::int64_t seq,
               Wake after_send) {
        return resume(req.tid, ThreadDebug::Mode::kStepOver, seq, after_send);
      });
  register_command<proto::FinishRequest>(
      [resume](const proto::FinishRequest& req, std::int64_t seq,
               Wake after_send) {
        return resume(req.tid, ThreadDebug::Mode::kStepOut, seq, after_send);
      });

  register_command<proto::ContinueAllRequest>(
      [this](const proto::ContinueAllRequest&, std::int64_t seq,
             Wake after_send) {
        auto states = debug_states_snapshot();
        for (auto& td : states) {
          std::scoped_lock lock(td->mutex);
          td->mode = ThreadDebug::Mode::kRun;
          td->pause_requested = false;
        }
        *after_send = [states] {
          for (auto& td : states) {
            std::scoped_lock lock(td->mutex);
            if (td->parked) {
              td->resume = true;
              td->cv.notify_all();
            }
          }
        };
        return proto::make_ok(seq);
      });

  register_command<proto::PauseRequest>(
      [this](const proto::PauseRequest& req, std::int64_t seq, Wake) {
        auto td = thread_state(req.tid);
        std::scoped_lock lock(td->mutex);
        td->pause_requested = true;
        td->refresh_attention();
        return proto::make_ok(seq);
      });

  register_command<proto::PauseAllRequest>(
      [this](const proto::PauseAllRequest&, std::int64_t seq, Wake) {
        // Pause every live thread at its next traced line ("Dionea can
        // also operate over the whole program", §4).
        for (const vm::ThreadInfo& info : vm_.list_threads()) {
          auto td = thread_state(info.id);
          std::scoped_lock lock(td->mutex);
          td->pause_requested = true;
          td->refresh_attention();
        }
        return proto::make_ok(seq);
      });

  register_command<proto::DisturbRequest>(
      [this](const proto::DisturbRequest& req, std::int64_t seq, Wake) {
        set_disturb(req.on);
        return proto::make_ok(seq);
      });

  register_command<proto::DetachRequest>(
      [this](const proto::DetachRequest&, std::int64_t seq, Wake after_send) {
        tracing_wanted_.store(false, std::memory_order_relaxed);
        vm_.set_trace_enabled(false);
        auto states = debug_states_snapshot();
        *after_send = [states] {
          for (auto& td : states) {
            std::scoped_lock lock(td->mutex);
            td->mode = ThreadDebug::Mode::kRun;
            td->pause_requested = false;
            td->refresh_attention();
            td->resume = true;
            td->cv.notify_all();
          }
        };
        return proto::make_ok(seq);
      });

  register_command<proto::StatsRequest>(
      [](const proto::StatsRequest&, std::int64_t seq, Wake) {
        proto::StatsResponse resp = proto::StatsResponse::from_snapshot(
            metrics::Registry::instance().snapshot(),
            static_cast<int>(::getpid()));
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::ReplayInfoRequest>(
      [](const proto::ReplayInfoRequest&, std::int64_t seq, Wake) {
        replay::Info info = replay::Engine::instance().info();
        proto::ReplayInfoResponse resp;
        resp.pid = static_cast<int>(::getpid());
        resp.mode = replay::mode_name(info.mode);
        resp.step = static_cast<std::int64_t>(info.step);
        resp.total_steps = static_cast<std::int64_t>(info.total_steps);
        resp.log_path = info.log_path;
        resp.divergence_step = info.divergence_step;
        resp.divergence_reason = info.divergence_reason;
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::AnalysisReportRequest>(
      [this](const proto::AnalysisReportRequest& req, std::int64_t seq,
             Wake) {
        analysis::Engine& engine = analysis::Engine::instance();
        proto::AnalysisReportResponse resp;
        resp.pid = static_cast<int>(::getpid());
        resp.enabled = analysis::engine_enabled();
        resp.accesses = static_cast<std::int64_t>(engine.accesses());
        resp.sync_events = static_cast<std::int64_t>(engine.sync_events());
        auto to_wire = [](const analysis::Finding& finding) {
          proto::AnalysisFindingWire wire;
          wire.kind = analysis::finding_kind_name(finding.kind);
          wire.message = finding.message;
          wire.file = finding.file;
          wire.line = finding.line;
          wire.file2 = finding.file2;
          wire.line2 = finding.line2;
          wire.step = static_cast<std::int64_t>(finding.step);
          wire.object = finding.object;
          return wire;
        };
        for (const analysis::Finding& finding : engine.report().findings) {
          resp.findings.push_back(to_wire(finding));
        }
        analysis::Report lint;
        if (req.run_lint) {
          // Re-lint the running program on demand (console `lint`).
          // Pure bytecode walk over immutable protos: no GIL needed.
          if (auto program = vm_.current_program()) {
            lint = analysis::lint_program(*program);
            analysis::Engine::instance().set_lint_report(lint);
          }
        } else {
          lint = engine.lint_report();  // whatever DIONEA_LINT produced
        }
        for (const analysis::Finding& finding : lint.findings) {
          resp.lint_findings.push_back(to_wire(finding));
        }
        analysis::Report forklint;
        if (req.run_forklint) {
          // 1.7 (kCapForksafety): run the fork-safety dataflow over
          // the running program plus the native atfork coverage audit
          // on demand (console `forklint`). Like lint, a pure walk
          // over immutable protos; the audit reads atomics only.
          if (auto program = vm_.current_program()) {
            forklint = analysis::forklint_program(*program);
          }
          analysis::Report audit = analysis::forkaudit::audit(false);
          for (analysis::Finding& finding : audit.findings) {
            forklint.findings.push_back(std::move(finding));
          }
          forklint.dedupe();
          analysis::Engine::instance().set_forklint_report(forklint);
        } else {
          forklint = engine.forklint_report();  // DIONEA_FORKLINT's
        }
        for (const analysis::Finding& finding : forklint.findings) {
          resp.forklint_findings.push_back(to_wire(finding));
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::PostmortemRequest>(
      [this](const proto::PostmortemRequest& req, std::int64_t seq, Wake) {
        proto::PostmortemResponse resp;
        resp.pid = static_cast<int>(::getpid());
        resp.installed = crash::installed();
        if (req.capture) {
          // Console `postmortem now`: snapshot the live process as if
          // it had crashed (threads, frames, held locks).
          const char* path = crash::capture_now("client-request");
          if (path == nullptr) {
            return proto::make_error(seq, "post-mortem capture not installed");
          }
          resp.report_path = path;
        } else {
          resp.report_path = crash::report_path_string();
        }
        if (auto text = read_file(resp.report_path); text.is_ok()) {
          std::string report = std::move(text).value();
          // Wire cap: ship at most the last 64 KiB of the report.
          constexpr size_t kMaxReportWireBytes = 64u << 10;
          if (report.size() > kMaxReportWireBytes) {
            report.erase(0, report.size() - kMaxReportWireBytes);
          }
          resp.has_report = true;
          resp.report = std::move(report);
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::TimetravelInfoRequest>(
      [](const proto::TimetravelInfoRequest&, std::int64_t seq, Wake) {
        replay::tt::Snapshot snap =
            replay::tt::CheckpointManager::instance().snapshot();
        replay::Info info = replay::Engine::instance().info();
        proto::TimetravelInfoResponse resp;
        resp.active = snap.active;
        resp.role = replay::tt::role_name(snap.role);
        resp.every = static_cast<std::int64_t>(snap.every);
        resp.max_live = snap.max_live;
        resp.next_at = static_cast<std::int64_t>(snap.next_at);
        resp.taken = static_cast<std::int64_t>(snap.taken);
        resp.evicted = static_cast<std::int64_t>(snap.evicted);
        resp.dead = static_cast<std::int64_t>(snap.dead);
        resp.step = static_cast<std::int64_t>(info.step);
        resp.total_steps = static_cast<std::int64_t>(info.total_steps);
        resp.stop_at = static_cast<std::int64_t>(
            replay::Engine::instance().stop_at_step());
        for (const replay::tt::CheckpointInfo& ckpt : snap.ring) {
          proto::TimetravelCheckpoint wire;
          wire.step = static_cast<std::int64_t>(ckpt.step);
          wire.pid = ckpt.pid;
          wire.alive = ckpt.alive;
          resp.checkpoints.push_back(wire);
        }
        return ok_with(seq, resp.to_wire());
      });

  register_command<proto::TimetravelResumeRequest>(
      [](const proto::TimetravelResumeRequest& req, std::int64_t seq, Wake) {
        proto::TimetravelResumeResponse resp;
        if (req.target_step == 0) {
          // target 0 = release this process's run-to-step gate: a
          // paused resumer thaws and replays on to the end.
          replay::Engine::instance().set_stop_at_step(0);
          resp.pid = static_cast<int>(::getpid());
          return ok_with(seq, resp.to_wire());
        }
        auto ticket = replay::tt::CheckpointManager::instance().resume_to(
            static_cast<std::uint64_t>(req.target_step));
        if (!ticket.is_ok()) {
          return proto::make_error(seq, ticket.error().to_string());
        }
        resp.pid = ticket.value().pid;
        resp.checkpoint_step =
            static_cast<std::int64_t>(ticket.value().checkpoint_step);
        resp.target_step =
            static_cast<std::int64_t>(ticket.value().target_step);
        return ok_with(seq, resp.to_wire());
      });
}

Status DebugServer::resume_thread(std::int64_t tid, ThreadDebug::Mode mode,
                                  std::function<void()>* wake) {
  std::shared_ptr<ThreadDebug> td;
  {
    std::scoped_lock lock(state_mutex_);
    auto it = thread_debug_.find(tid);
    if (it == thread_debug_.end()) {
      return Status(ErrorCode::kNotFound,
                    "no such thread: " + std::to_string(tid));
    }
    td = it->second;
  }
  {
    std::scoped_lock lock(td->mutex);
    if (!td->parked) {
      return Status(ErrorCode::kInvalidArgument,
                    "thread " + std::to_string(tid) + " is not suspended");
    }
    td->mode = mode;
    td->refresh_attention();
  }
  auto do_wake = [td] {
    std::scoped_lock lock(td->mutex);
    td->resume = true;
    td->cv.notify_all();
  };
  if (wake != nullptr) {
    *wake = std::move(do_wake);
  } else {
    do_wake();
  }
  return Status::ok();
}

// ---------------------------------------------------------------- deadlock

bool DebugServer::deadlock_hook(const std::vector<vm::DeadlockInfo>& infos) {
  if (!client_connected()) {
    // Stock-Ruby behaviour (Listing 6): the VM applies its fatal
    // policy. Leave a corpse first — with no client attached the
    // report is the only record of who blocked on what.
    if (postmortem_enabled_) crash::capture_now("fatal-deadlock");
    return false;
  }
  Value event = proto::make_event(proto::Event::kDeadlock);
  event.set("pid", static_cast<int>(::getpid()));
  Array list;
  for (const vm::DeadlockInfo& info : infos) {
    Value entry;
    entry.set("tid", info.thread_id);
    entry.set("name", info.thread_name);
    entry.set("file", info.file);
    entry.set("line", info.line);  // Fig. 7: the exact blocked line
    entry.set("note", info.note);
    list.push_back(std::move(entry));
  }
  event.set("threads", std::move(list));
  send_event(std::move(event));
  // Owning the deadlock keeps the debuggee alive (threads stay
  // blocked) so the user can inspect it — the §6.2 scenario.
  return true;
}

}  // namespace dionea::dbg
