#include "debugger/protocol.hpp"

namespace dionea::dbg::proto {

using ipc::wire::Array;
using ipc::wire::Value;

namespace {

// Shared decode guard: every from_wire on a frame that is not an
// object is a typed protocol error, never a default-constructed lie.
Status require_object(const Value& value, const char* what) {
  if (!value.is_object()) {
    return Status(ErrorCode::kProtocol,
                  std::string(what) + ": frame is not an object");
  }
  return Status::ok();
}

Value caps_to_wire(const std::vector<std::string>& caps) {
  Array list;
  for (const std::string& cap : caps) list.push_back(Value(cap));
  return Value(std::move(list));
}

std::vector<std::string> caps_from_wire(const Value& value,
                                        const std::string& key) {
  std::vector<std::string> out;
  const Value& list = value.at(key);
  if (!list.is_array()) return out;
  for (const Value& entry : list.as_array()) {
    if (entry.is_string()) out.push_back(entry.as_string());
  }
  return out;
}

}  // namespace

std::vector<std::string> local_capabilities() {
  return {kCapStats, kCapHeartbeat, kCapReplay, kCapAnalysis,
          kCapPostmortem, kCapTimetravel, kCapForksafety};
}

// -------------------------------------------------------------- events

const char* event_name(Event event) noexcept {
  switch (event) {
    case Event::kStopped: return "stopped";
    case Event::kThreadStart: return "thread_started";
    case Event::kThreadExit: return "thread_exited";
    case Event::kForked: return "forked";
    case Event::kTerminated: return "terminated";
    case Event::kDeadlock: return "deadlock";
    case Event::kOutput: return "output";
    case Event::kHeartbeat: return "heartbeat";
    case Event::kProcessExited: return "process-exited";
    case Event::kProcessCrashed: return "process-crashed";
    case Event::kWatchdog: return "watchdog";
    case Event::kUnknown: break;
  }
  return "unknown";
}

Event event_from_name(std::string_view name) noexcept {
  for (int i = 0; i < static_cast<int>(Event::kUnknown); ++i) {
    Event event = static_cast<Event>(i);
    if (name == event_name(event)) return event;
  }
  return Event::kUnknown;
}

bool event_internal(Event event) noexcept {
  switch (event) {
    case Event::kHeartbeat:
      return true;
    default:
      return false;
  }
}

// ------------------------------------------------------- frame builders

Value make_ok(std::int64_t seq) {
  Value v;
  v.set("re", seq);
  v.set("ok", true);
  return v;
}

Value make_error(std::int64_t seq, const std::string& message,
                 const char* error_kind) {
  Value v;
  v.set("re", seq);
  v.set("ok", false);
  v.set("error", message);
  if (error_kind != nullptr) v.set("error_kind", error_kind);
  return v;
}

Value make_event(Event event) {
  Value v;
  v.set("event", event_name(event));
  // Belt and braces with the enum: even a peer that does not know this
  // event's name can see it is not for users.
  if (event_internal(event)) v.set("internal", true);
  return v;
}

// --------------------------------------------------------------- hello

Value Hello::to_wire() const {
  Value v;
  v.set("channel", channel);
  v.set("pid", pid);
  v.set("proto_major", proto_major);
  v.set("proto_minor", proto_minor);
  v.set("caps", caps_to_wire(capabilities));
  if (!client_token.empty()) v.set("client_token", client_token);
  return v;
}

Result<Hello> Hello::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hello"));
  Hello hello;
  hello.channel = value.get_string("channel");
  if (hello.channel.empty()) {
    return Error(ErrorCode::kProtocol, "hello: missing channel");
  }
  hello.pid = static_cast<int>(value.get_int("pid"));
  // A 1.0 peer sends no version fields.
  hello.proto_major = static_cast<int>(value.get_int("proto_major", 1));
  hello.proto_minor = static_cast<int>(value.get_int("proto_minor", 0));
  hello.capabilities = caps_from_wire(value, "caps");
  hello.client_token = value.get_string("client_token");
  return hello;
}

// ------------------------------------------------- argless req structs

#define DIONEA_ARGLESS_REQUEST(TYPE)                        \
  Value TYPE::to_wire() const { return Value(ipc::wire::Object{}); } \
  Result<TYPE> TYPE::from_wire(const Value& value) {        \
    DIONEA_RETURN_IF_ERROR(require_object(value, kName));   \
    return TYPE{};                                          \
  }

DIONEA_ARGLESS_REQUEST(PingRequest)
DIONEA_ARGLESS_REQUEST(InfoRequest)
DIONEA_ARGLESS_REQUEST(ThreadsRequest)
DIONEA_ARGLESS_REQUEST(GlobalsRequest)
DIONEA_ARGLESS_REQUEST(BreakListRequest)
DIONEA_ARGLESS_REQUEST(ContinueAllRequest)
DIONEA_ARGLESS_REQUEST(PauseAllRequest)
DIONEA_ARGLESS_REQUEST(DetachRequest)
DIONEA_ARGLESS_REQUEST(StatsRequest)
DIONEA_ARGLESS_REQUEST(ReplayInfoRequest)

#undef DIONEA_ARGLESS_REQUEST

// -------------------------------------------------- tid-only requests

#define DIONEA_TID_REQUEST(TYPE)                          \
  Value TYPE::to_wire() const {                           \
    Value v;                                              \
    v.set("tid", tid);                                    \
    return v;                                             \
  }                                                       \
  Result<TYPE> TYPE::from_wire(const Value& value) {      \
    DIONEA_RETURN_IF_ERROR(require_object(value, kName)); \
    TYPE req;                                             \
    req.tid = value.get_int("tid");                       \
    return req;                                           \
  }

DIONEA_TID_REQUEST(FramesRequest)
DIONEA_TID_REQUEST(ContinueRequest)
DIONEA_TID_REQUEST(StepRequest)
DIONEA_TID_REQUEST(NextRequest)
DIONEA_TID_REQUEST(FinishRequest)
DIONEA_TID_REQUEST(PauseRequest)

#undef DIONEA_TID_REQUEST

// ------------------------------------------------------ ping/info

Value PingResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("heartbeat_ms", heartbeat_ms);
  v.set("proto_major", proto_major);
  v.set("proto_minor", proto_minor);
  v.set("caps", caps_to_wire(capabilities));
  return v;
}

Result<PingResponse> PingResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "ping response"));
  PingResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.heartbeat_ms = static_cast<int>(value.get_int("heartbeat_ms"));
  resp.proto_major = static_cast<int>(value.get_int("proto_major", 1));
  resp.proto_minor = static_cast<int>(value.get_int("proto_minor", 0));
  resp.capabilities = caps_from_wire(value, "caps");
  return resp;
}

Value InfoResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("main_tid", main_tid);
  v.set("fork_depth", fork_depth);
  v.set("disturb", disturb);
  v.set("heartbeat_ms", heartbeat_ms);
  v.set("proto_major", proto_major);
  v.set("proto_minor", proto_minor);
  return v;
}

Result<InfoResponse> InfoResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "info response"));
  InfoResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.main_tid = value.get_int("main_tid");
  resp.fork_depth = static_cast<int>(value.get_int("fork_depth"));
  resp.disturb = value.get_bool("disturb");
  resp.heartbeat_ms = static_cast<int>(value.get_int("heartbeat_ms"));
  resp.proto_major = static_cast<int>(value.get_int("proto_major", 1));
  resp.proto_minor = static_cast<int>(value.get_int("proto_minor", 0));
  return resp;
}

// ------------------------------------------------------ threads/frames

Value ThreadsResponse::to_wire() const {
  Value v;
  Array list;
  for (const ThreadEntry& t : threads) {
    Value entry;
    entry.set("tid", t.tid);
    entry.set("name", t.name);
    entry.set("state", t.state);
    entry.set("file", t.file);
    entry.set("line", t.line);
    entry.set("note", t.note);
    entry.set("depth", t.depth);
    list.push_back(std::move(entry));
  }
  v.set("threads", std::move(list));
  return v;
}

Result<ThreadsResponse> ThreadsResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "threads response"));
  ThreadsResponse resp;
  for (const Value& entry : value.at("threads").as_array()) {
    ThreadEntry t;
    t.tid = entry.get_int("tid");
    t.name = entry.get_string("name");
    t.state = entry.get_string("state");
    t.file = entry.get_string("file");
    t.line = static_cast<int>(entry.get_int("line"));
    t.note = entry.get_string("note");
    t.depth = static_cast<int>(entry.get_int("depth"));
    resp.threads.push_back(std::move(t));
  }
  return resp;
}

Value FramesResponse::to_wire() const {
  Value v;
  Array list;
  for (const FrameEntry& f : frames) {
    Value entry;
    entry.set("function", f.function);
    entry.set("file", f.file);
    entry.set("line", f.line);
    list.push_back(std::move(entry));
  }
  v.set("frames", std::move(list));
  return v;
}

Result<FramesResponse> FramesResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "frames response"));
  FramesResponse resp;
  for (const Value& entry : value.at("frames").as_array()) {
    resp.frames.push_back(FrameEntry{entry.get_string("function"),
                                     entry.get_string("file"),
                                     static_cast<int>(entry.get_int("line"))});
  }
  return resp;
}

// ------------------------------------------------------ locals/globals

namespace {

Value named_values_to_wire(const std::vector<NamedValue>& values,
                           const char* key) {
  Value v;
  Array list;
  for (const NamedValue& nv : values) {
    Value entry;
    entry.set("name", nv.name);
    entry.set("value", nv.value);
    list.push_back(std::move(entry));
  }
  v.set(key, std::move(list));
  return v;
}

std::vector<NamedValue> named_values_from_wire(const Value& value,
                                               const char* key) {
  std::vector<NamedValue> out;
  for (const Value& entry : value.at(key).as_array()) {
    out.push_back(NamedValue{entry.get_string("name"),
                             entry.get_string("value")});
  }
  return out;
}

}  // namespace

Value LocalsRequest::to_wire() const {
  Value v;
  v.set("tid", tid);
  v.set("depth", depth);
  return v;
}

Result<LocalsRequest> LocalsRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  LocalsRequest req;
  req.tid = value.get_int("tid");
  req.depth = static_cast<int>(value.get_int("depth"));
  return req;
}

Value LocalsResponse::to_wire() const {
  return named_values_to_wire(locals, "locals");
}

Result<LocalsResponse> LocalsResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "locals response"));
  return LocalsResponse{named_values_from_wire(value, "locals")};
}

Value GlobalsResponse::to_wire() const {
  return named_values_to_wire(globals, "globals");
}

Result<GlobalsResponse> GlobalsResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "globals response"));
  return GlobalsResponse{named_values_from_wire(value, "globals")};
}

// ------------------------------------------------------ source/eval

Value SourceRequest::to_wire() const {
  Value v;
  v.set("file", file);
  return v;
}

Result<SourceRequest> SourceRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  SourceRequest req;
  req.file = value.get_string("file");
  if (req.file.empty()) {
    return Error(ErrorCode::kProtocol, "source: missing file");
  }
  return req;
}

Value SourceResponse::to_wire() const {
  Value v;
  v.set("text", text);
  return v;
}

Result<SourceResponse> SourceResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "source response"));
  return SourceResponse{value.get_string("text")};
}

Value EvalRequest::to_wire() const {
  Value v;
  v.set("tid", tid);
  v.set("depth", depth);
  v.set("expr", expr);
  return v;
}

Result<EvalRequest> EvalRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  EvalRequest req;
  req.tid = value.get_int("tid");
  req.depth = static_cast<int>(value.get_int("depth"));
  req.expr = value.get_string("expr");
  if (req.expr.empty()) {
    return Error(ErrorCode::kProtocol, "eval: missing expr");
  }
  return req;
}

Value EvalResponse::to_wire() const {
  Value v;
  v.set("value", value);
  return v;
}

Result<EvalResponse> EvalResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "eval response"));
  return EvalResponse{value.get_string("value")};
}

// ------------------------------------------------------ breakpoints

Value BreakSetRequest::to_wire() const {
  Value v;
  v.set("file", file);
  v.set("line", line);
  if (tid != 0) v.set("tid", tid);
  if (ignore != 0) v.set("ignore", ignore);
  return v;
}

Result<BreakSetRequest> BreakSetRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  BreakSetRequest req;
  req.file = value.get_string("file");
  req.line = static_cast<int>(value.get_int("line"));
  req.tid = value.get_int("tid");
  req.ignore = value.get_int("ignore");
  if (req.file.empty() || req.line <= 0) {
    return Error(ErrorCode::kProtocol, "break_set: need file and line");
  }
  return req;
}

Value BreakSetResponse::to_wire() const {
  Value v;
  v.set("id", id);
  return v;
}

Result<BreakSetResponse> BreakSetResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "break_set response"));
  return BreakSetResponse{static_cast<int>(value.get_int("id"))};
}

Value BreakClearRequest::to_wire() const {
  Value v;
  v.set("id", id);
  return v;
}

Result<BreakClearRequest> BreakClearRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  return BreakClearRequest{static_cast<int>(value.get_int("id"))};
}

Value BreakListResponse::to_wire() const {
  Value v;
  Array list;
  for (const BreakpointEntry& bp : breakpoints) {
    Value entry;
    entry.set("id", bp.id);
    entry.set("file", bp.file);
    entry.set("line", bp.line);
    entry.set("enabled", bp.enabled);
    entry.set("hits", bp.hits);
    list.push_back(std::move(entry));
  }
  v.set("breakpoints", std::move(list));
  return v;
}

Result<BreakListResponse> BreakListResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "break_list response"));
  BreakListResponse resp;
  for (const Value& entry : value.at("breakpoints").as_array()) {
    BreakpointEntry bp;
    bp.id = static_cast<int>(entry.get_int("id"));
    bp.file = entry.get_string("file");
    bp.line = static_cast<int>(entry.get_int("line"));
    bp.enabled = entry.get_bool("enabled");
    bp.hits = entry.get_int("hits");
    resp.breakpoints.push_back(std::move(bp));
  }
  return resp;
}

// ------------------------------------------------------ disturb

Value DisturbRequest::to_wire() const {
  Value v;
  v.set("on", on);
  return v;
}

Result<DisturbRequest> DisturbRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  return DisturbRequest{value.get_bool("on")};
}

// --------------------------------------------------------------- stats

const StatsHistogram* StatsResponse::histogram(
    std::string_view name) const noexcept {
  for (const StatsHistogram& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::int64_t StatsResponse::counter(std::string_view name) const noexcept {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

Value StatsResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  Value counters_obj;
  for (const auto& [name, value] : counters) counters_obj.set(name, value);
  v.set("counters", std::move(counters_obj));
  Value gauges_obj;
  for (const auto& [name, value] : gauges) gauges_obj.set(name, value);
  v.set("gauges", std::move(gauges_obj));
  Array histo_list;
  for (const StatsHistogram& h : histograms) {
    Value entry;
    entry.set("name", h.name);
    entry.set("count", static_cast<std::int64_t>(h.count));
    entry.set("sum_nanos", static_cast<std::int64_t>(h.sum_nanos));
    entry.set("max_nanos", static_cast<std::int64_t>(h.max_nanos));
    entry.set("p50_nanos", static_cast<std::int64_t>(h.p50_nanos));
    entry.set("p99_nanos", static_cast<std::int64_t>(h.p99_nanos));
    Array buckets;
    for (std::uint64_t b : h.buckets) {
      buckets.push_back(Value(static_cast<std::int64_t>(b)));
    }
    entry.set("buckets", std::move(buckets));
    histo_list.push_back(std::move(entry));
  }
  v.set("histograms", std::move(histo_list));
  return v;
}

Result<StatsResponse> StatsResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "stats response"));
  StatsResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  const Value& counters = value.at("counters");
  if (counters.is_object()) {
    for (const auto& [name, v] : counters.as_object()) {
      resp.counters.emplace_back(name, v.as_int());
    }
  }
  const Value& gauges = value.at("gauges");
  if (gauges.is_object()) {
    for (const auto& [name, v] : gauges.as_object()) {
      resp.gauges.emplace_back(name, v.as_int());
    }
  }
  const Value& histograms = value.at("histograms");
  if (histograms.is_array()) {
    for (const Value& entry : histograms.as_array()) {
      StatsHistogram h;
      h.name = entry.get_string("name");
      h.count = static_cast<std::uint64_t>(entry.get_int("count"));
      h.sum_nanos = static_cast<std::uint64_t>(entry.get_int("sum_nanos"));
      h.max_nanos = static_cast<std::uint64_t>(entry.get_int("max_nanos"));
      h.p50_nanos = static_cast<std::uint64_t>(entry.get_int("p50_nanos"));
      h.p99_nanos = static_cast<std::uint64_t>(entry.get_int("p99_nanos"));
      const Value& buckets = entry.at("buckets");
      if (buckets.is_array()) {
        for (const Value& b : buckets.as_array()) {
          h.buckets.push_back(static_cast<std::uint64_t>(b.as_int()));
        }
      }
      resp.histograms.push_back(std::move(h));
    }
  }
  return resp;
}

StatsResponse StatsResponse::from_snapshot(const metrics::Snapshot& snapshot,
                                           int pid) {
  StatsResponse resp;
  resp.pid = pid;
  for (int c = 0; c < metrics::kCounterCount; ++c) {
    resp.counters.emplace_back(
        metrics::counter_name(static_cast<metrics::Counter>(c)),
        static_cast<std::int64_t>(snapshot.counters[static_cast<size_t>(c)]));
  }
  for (int g = 0; g < metrics::kGaugeCount; ++g) {
    resp.gauges.emplace_back(
        metrics::gauge_name(static_cast<metrics::Gauge>(g)),
        snapshot.gauges[static_cast<size_t>(g)]);
  }
  for (int h = 0; h < metrics::kHistogramCount; ++h) {
    const metrics::HistogramSnapshot& src =
        snapshot.histograms[static_cast<size_t>(h)];
    StatsHistogram out;
    out.name = metrics::histogram_name(static_cast<metrics::Histogram>(h));
    out.count = src.count;
    out.sum_nanos = src.sum_nanos;
    out.max_nanos = src.max_nanos;
    out.p50_nanos = src.percentile_nanos(0.50);
    out.p99_nanos = src.percentile_nanos(0.99);
    out.buckets.assign(src.buckets.begin(), src.buckets.end());
    resp.histograms.push_back(std::move(out));
  }
  return resp;
}

// --------------------------------------------------------- replay-info

Value ReplayInfoResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("mode", mode);
  v.set("step", step);
  v.set("total_steps", total_steps);
  v.set("log_path", log_path);
  v.set("divergence_step", divergence_step);
  v.set("divergence_reason", divergence_reason);
  return v;
}

Result<ReplayInfoResponse> ReplayInfoResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "replay-info response"));
  ReplayInfoResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.mode = value.get_string("mode");
  if (resp.mode.empty()) {
    return Error(ErrorCode::kProtocol, "replay-info: missing mode");
  }
  resp.step = value.get_int("step");
  resp.total_steps = value.get_int("total_steps");
  resp.log_path = value.get_string("log_path");
  resp.divergence_step = value.get_int("divergence_step", -1);
  resp.divergence_reason = value.get_string("divergence_reason");
  return resp;
}

// ------------------------------------------------------ analysis-report

Value AnalysisReportRequest::to_wire() const {
  Value v;
  v.set("run_lint", run_lint);
  v.set("run_forklint", run_forklint);
  return v;
}

Result<AnalysisReportRequest> AnalysisReportRequest::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "analysis-report request"));
  AnalysisReportRequest req;
  req.run_lint = value.get_bool("run_lint");
  req.run_forklint = value.get_bool("run_forklint");  // absent pre-1.7
  return req;
}

namespace {

Value finding_to_wire(const AnalysisFindingWire& finding) {
  Value entry;
  entry.set("kind", finding.kind);
  entry.set("message", finding.message);
  entry.set("file", finding.file);
  entry.set("line", finding.line);
  entry.set("file2", finding.file2);
  entry.set("line2", finding.line2);
  entry.set("step", finding.step);
  entry.set("object", finding.object);
  return entry;
}

std::vector<AnalysisFindingWire> findings_from_wire(const Value& value,
                                                    const std::string& key) {
  std::vector<AnalysisFindingWire> out;
  const Value& list = value.at(key);
  if (!list.is_array()) return out;
  for (const Value& entry : list.as_array()) {
    if (!entry.is_object()) continue;
    AnalysisFindingWire finding;
    finding.kind = entry.get_string("kind");
    finding.message = entry.get_string("message");
    finding.file = entry.get_string("file");
    finding.line = entry.get_int("line");
    finding.file2 = entry.get_string("file2");
    finding.line2 = entry.get_int("line2");
    finding.step = entry.get_int("step");  // absent pre-1.6: stays 0
    finding.object = entry.get_string("object");  // absent pre-1.7: ""
    out.push_back(std::move(finding));
  }
  return out;
}

}  // namespace

Value AnalysisReportResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("enabled", enabled);
  v.set("accesses", accesses);
  v.set("sync_events", sync_events);
  Array dynamic;
  for (const AnalysisFindingWire& finding : findings) {
    dynamic.push_back(finding_to_wire(finding));
  }
  v.set("findings", std::move(dynamic));
  Array lint;
  for (const AnalysisFindingWire& finding : lint_findings) {
    lint.push_back(finding_to_wire(finding));
  }
  v.set("lint_findings", std::move(lint));
  Array forklint;
  for (const AnalysisFindingWire& finding : forklint_findings) {
    forklint.push_back(finding_to_wire(finding));
  }
  v.set("forklint_findings", std::move(forklint));
  return v;
}

Result<AnalysisReportResponse> AnalysisReportResponse::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "analysis-report response"));
  AnalysisReportResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.enabled = value.get_bool("enabled");
  resp.accesses = value.get_int("accesses");
  resp.sync_events = value.get_int("sync_events");
  resp.findings = findings_from_wire(value, "findings");
  resp.lint_findings = findings_from_wire(value, "lint_findings");
  // Absent from 1.6 servers: stays empty (silent downgrade).
  resp.forklint_findings = findings_from_wire(value, "forklint_findings");
  return resp;
}

// ----------------------------------------------------------- postmortem

Value PostmortemRequest::to_wire() const {
  Value v;
  v.set("capture", capture);
  return v;
}

Result<PostmortemRequest> PostmortemRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "postmortem request"));
  PostmortemRequest req;
  req.capture = value.get_bool("capture");
  return req;
}

Value PostmortemResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("installed", installed);
  v.set("report_path", report_path);
  v.set("has_report", has_report);
  v.set("report", report);
  return v;
}

Result<PostmortemResponse> PostmortemResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "postmortem response"));
  PostmortemResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.installed = value.get_bool("installed");
  resp.report_path = value.get_string("report_path");
  resp.has_report = value.get_bool("has_report");
  resp.report = value.get_string("report");
  return resp;
}

// ------------------------------------------------------------------ hub

Value HubRegisterRequest::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("parent_pid", parent_pid);
  v.set("port", port);
  v.set("proto_major", proto_major);
  v.set("proto_minor", proto_minor);
  v.set("kind", kind);
  v.set("caps", caps_to_wire(capabilities));
  return v;
}

Result<HubRegisterRequest> HubRegisterRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hub-register request"));
  HubRegisterRequest req;
  req.pid = static_cast<int>(value.get_int("pid"));
  req.parent_pid = static_cast<int>(value.get_int("parent_pid"));
  req.port = static_cast<int>(value.get_int("port"));
  if (req.pid <= 0 || req.port <= 0) {
    return Error(ErrorCode::kProtocol,
                 "hub-register: pid and port are required");
  }
  req.proto_major = static_cast<int>(value.get_int("proto_major", 1));
  req.proto_minor = static_cast<int>(value.get_int("proto_minor", 0));
  req.kind = value.get_string("kind", "debuggee");
  req.capabilities = caps_from_wire(value, "caps");
  return req;
}

Value HubRegisterResponse::to_wire() const {
  Value v;
  v.set("session_id", session_id);
  return v;
}

Result<HubRegisterResponse> HubRegisterResponse::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hub-register response"));
  HubRegisterResponse resp;
  resp.session_id = value.get_int("session_id");
  if (resp.session_id <= 0) {
    return Error(ErrorCode::kProtocol, "hub-register: bad session_id");
  }
  return resp;
}

Value HubSessionsRequest::to_wire() const { return Value(ipc::wire::Object{}); }

Result<HubSessionsRequest> HubSessionsRequest::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  return HubSessionsRequest{};
}

Value HubSessionsResponse::to_wire() const {
  Value v;
  Array list;
  for (const HubSessionEntry& session : sessions) {
    Value entry;
    entry.set("session_id", session.session_id);
    entry.set("pid", session.pid);
    entry.set("parent_pid", session.parent_pid);
    entry.set("port", session.port);
    entry.set("alive", session.alive);
    entry.set("synthetic", session.synthetic);
    entry.set("shard", session.shard);
    entry.set("kind", session.kind);
    entry.set("events_routed", session.events_routed);
    entry.set("events_dropped", session.events_dropped);
    list.push_back(std::move(entry));
  }
  v.set("sessions", std::move(list));
  return v;
}

Result<HubSessionsResponse> HubSessionsResponse::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hub-sessions response"));
  HubSessionsResponse resp;
  const Value& list = value.at("sessions");
  if (!list.is_array()) return resp;
  for (const Value& entry : list.as_array()) {
    if (!entry.is_object()) continue;
    HubSessionEntry session;
    session.session_id = entry.get_int("session_id");
    session.pid = static_cast<int>(entry.get_int("pid"));
    session.parent_pid = static_cast<int>(entry.get_int("parent_pid"));
    session.port = static_cast<int>(entry.get_int("port"));
    session.alive = entry.get_bool("alive", true);
    session.synthetic = entry.get_bool("synthetic");
    session.shard = static_cast<int>(entry.get_int("shard"));
    session.kind = entry.get_string("kind", "debuggee");
    session.events_routed = entry.get_int("events_routed");
    session.events_dropped = entry.get_int("events_dropped");
    resp.sessions.push_back(std::move(session));
  }
  return resp;
}

#define DIONEA_SESSION_ID_REQUEST(TYPE, WHAT)             \
  Value TYPE::to_wire() const {                           \
    Value v;                                              \
    v.set("session_id", session_id);                      \
    return v;                                             \
  }                                                       \
  Result<TYPE> TYPE::from_wire(const Value& value) {      \
    DIONEA_RETURN_IF_ERROR(require_object(value, WHAT));  \
    TYPE req;                                             \
    req.session_id = value.get_int("session_id");         \
    return req;                                           \
  }

DIONEA_SESSION_ID_REQUEST(HubAttachRequest, "hub-attach request")
DIONEA_SESSION_ID_REQUEST(HubDetachRequest, "hub-detach request")

#undef DIONEA_SESSION_ID_REQUEST

Value HubAttachResponse::to_wire() const {
  Value v;
  v.set("attached", attached);
  return v;
}

Result<HubAttachResponse> HubAttachResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hub-attach response"));
  HubAttachResponse resp;
  resp.attached = static_cast<int>(value.get_int("attached"));
  return resp;
}

Value HubDetachResponse::to_wire() const {
  Value v;
  v.set("detached", detached);
  return v;
}

Result<HubDetachResponse> HubDetachResponse::from_wire(const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "hub-detach response"));
  HubDetachResponse resp;
  resp.detached = static_cast<int>(value.get_int("detached"));
  return resp;
}

// ---------------------------------------------------------- time travel

Value TimetravelInfoRequest::to_wire() const {
  return Value(ipc::wire::Object{});
}

Result<TimetravelInfoRequest> TimetravelInfoRequest::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, kName));
  return TimetravelInfoRequest{};
}

Value TimetravelInfoResponse::to_wire() const {
  Value v;
  v.set("active", active);
  v.set("role", role);
  v.set("every", every);
  v.set("max_live", max_live);
  v.set("next_at", next_at);
  v.set("taken", taken);
  v.set("evicted", evicted);
  v.set("dead", dead);
  v.set("step", step);
  v.set("total_steps", total_steps);
  v.set("stop_at", stop_at);
  Array ring;
  for (const TimetravelCheckpoint& ckpt : checkpoints) {
    Value entry;
    entry.set("step", ckpt.step);
    entry.set("pid", ckpt.pid);
    entry.set("alive", ckpt.alive);
    ring.push_back(std::move(entry));
  }
  v.set("checkpoints", std::move(ring));
  return v;
}

Result<TimetravelInfoResponse> TimetravelInfoResponse::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "timetravel-info response"));
  TimetravelInfoResponse resp;
  resp.active = value.get_bool("active");
  resp.role = value.get_string("role", "root");
  resp.every = value.get_int("every");
  resp.max_live = static_cast<int>(value.get_int("max_live"));
  resp.next_at = value.get_int("next_at");
  resp.taken = value.get_int("taken");
  resp.evicted = value.get_int("evicted");
  resp.dead = value.get_int("dead");
  resp.step = value.get_int("step");
  resp.total_steps = value.get_int("total_steps");
  resp.stop_at = value.get_int("stop_at");
  const Value& ring = value.at("checkpoints");
  if (ring.is_array()) {
    for (const Value& entry : ring.as_array()) {
      if (!entry.is_object()) continue;
      TimetravelCheckpoint ckpt;
      ckpt.step = entry.get_int("step");
      ckpt.pid = static_cast<int>(entry.get_int("pid"));
      ckpt.alive = entry.get_bool("alive", true);
      resp.checkpoints.push_back(ckpt);
    }
  }
  return resp;
}

Value TimetravelResumeRequest::to_wire() const {
  Value v;
  v.set("target_step", target_step);
  return v;
}

Result<TimetravelResumeRequest> TimetravelResumeRequest::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "timetravel-resume request"));
  TimetravelResumeRequest req;
  req.target_step = value.get_int("target_step");
  if (req.target_step < 0) {
    return Error(ErrorCode::kProtocol, "timetravel-resume: bad target_step");
  }
  return req;
}

Value TimetravelResumeResponse::to_wire() const {
  Value v;
  v.set("pid", pid);
  v.set("checkpoint_step", checkpoint_step);
  v.set("target_step", target_step);
  return v;
}

Result<TimetravelResumeResponse> TimetravelResumeResponse::from_wire(
    const Value& value) {
  DIONEA_RETURN_IF_ERROR(require_object(value, "timetravel-resume response"));
  TimetravelResumeResponse resp;
  resp.pid = static_cast<int>(value.get_int("pid"));
  resp.checkpoint_step = value.get_int("checkpoint_step");
  resp.target_step = value.get_int("target_step");
  return resp;
}

}  // namespace dionea::dbg::proto
