#include "debugger/protocol.hpp"

namespace dionea::dbg::proto {

using ipc::wire::Value;

Value make_hello(const std::string& channel, int pid) {
  Value v;
  v.set("channel", channel);
  v.set("pid", pid);
  return v;
}

Value make_request(const std::string& cmd, std::int64_t seq) {
  Value v;
  v.set("cmd", cmd);
  v.set("seq", seq);
  return v;
}

Value make_ok(std::int64_t seq) {
  Value v;
  v.set("re", seq);
  v.set("ok", true);
  return v;
}

Value make_error(std::int64_t seq, const std::string& message) {
  Value v;
  v.set("re", seq);
  v.set("ok", false);
  v.set("error", message);
  return v;
}

Value make_event(const std::string& name) {
  Value v;
  v.set("event", name);
  return v;
}

}  // namespace dionea::dbg::proto
