// Core MiniLang builtins: IO, collections, strings, threads, sync
// objects, fork/process control. Installed by the Vm constructor.
// Inter-process primitives (pipes, mp queues) live in mp::install_vm_bindings.
#pragma once

namespace dionea::vm {

class Vm;

void install_core_builtins(Vm& vm);

}  // namespace dionea::vm
