#include "vm/interp.hpp"

#include <unistd.h>

#include <cstdio>

#include "replay/replay.hpp"
#include "support/temp_file.hpp"
#include "support/trace_export.hpp"
#include "vm/compiler.hpp"

namespace dionea::vm {

Interp::Interp() : vm_(std::make_unique<Vm>()) {}

Interp::~Interp() = default;

Result<std::shared_ptr<const FunctionProto>> Interp::compile_file(
    const std::string& path) {
  DIONEA_ASSIGN_OR_RETURN(std::string source, read_file(path));
  return compile_source(source, path);
}

RunResult Interp::run_file(const std::string& path) {
  auto proto = compile_file(path);
  if (!proto.is_ok()) {
    RunResult result;
    result.ok = false;
    result.error.kind = VmErrorKind::kRuntime;
    result.error.message = proto.error().message();
    return result;
  }
  return vm_->run_main(std::move(proto).value());
}

RunResult Interp::run_string(std::string_view source,
                             const std::string& name) {
  return vm_->run_source(source, name);
}

int Interp::finish(const RunResult& result) {
  int code = 0;
  if (result.exited) {
    code = result.exit_code;
  } else if (!result.ok) {
    std::fprintf(stderr, "%s\n", result.error.to_string().c_str());
    code = 1;
  }
  if (vm_->is_forked_child()) {
    // The embedding program's code already executed in the parent; a
    // child that returned out of run_main must not re-run it.
    vm_->run_at_exit_hook();
    // _exit skips atexit handlers, so the child's trace buffer and
    // replay log would be lost without an explicit flush here.
    trace::flush();
    replay::Engine::instance().flush();
    std::fflush(nullptr);
    ::_exit(code);
  }
  return code;
}

}  // namespace dionea::vm
