// MiniLang compiler: AST -> FunctionProto (bytecode).
//
// Scoping rules (deliberately simple, Python-flavoured):
//  * at top level, assignments define/overwrite globals;
//  * inside a function, assignment defines a local on first use;
//  * a lambda's free names are captured BY VALUE from the enclosing
//    function's locals/captures at closure-creation time (heap values
//    still alias through shared_ptr — `fn() q.push(1) end` shares q);
//  * anything unresolved is a global, looked up at run time (so
//    mutually recursive top-level functions work).
//
// Every statement begins with a kTraceLine instruction — the anchor
// for trace events, breakpoints and the GIL switch check.
#pragma once

#include <memory>
#include <string>

#include "support/result.hpp"
#include "vm/ast.hpp"
#include "vm/bytecode.hpp"

namespace dionea::vm {

// Compile a parsed program into the "<main>" prototype. `file` is the
// script name recorded for tracebacks and breakpoints.
Result<std::shared_ptr<const FunctionProto>> compile_program(
    const Program& program, const std::string& file);

// Parse + compile in one step.
Result<std::shared_ptr<const FunctionProto>> compile_source(
    std::string_view source, const std::string& file);

}  // namespace dionea::vm
