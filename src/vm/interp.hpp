// Interp: the embedder-facing facade over Vm.
//
// `dioneas path/to/program.ml` style entry points (the paper's §6.1
// "ruby bin/dioneas.rb path/to/program.rb") go through this class. It
// owns the Vm, runs scripts, and — crucially for forked children —
// knows whether the current process is a child created mid-script, in
// which case the process must _exit instead of returning into the
// embedding program's code (which already ran in the parent).
#pragma once

#include <memory>
#include <string>

#include "support/result.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {

class Interp {
 public:
  Interp();
  ~Interp();
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  Vm& vm() noexcept { return *vm_; }

  // Compile without running (syntax checking, disassembly tooling).
  Result<std::shared_ptr<const FunctionProto>> compile_file(
      const std::string& path);

  // Run a script from disk / from memory. Blocks until completion.
  RunResult run_file(const std::string& path);
  RunResult run_string(std::string_view source, const std::string& name);

  // Convert a RunResult into a process exit code, printing any error
  // the way CRuby would. If this process is a forked child of the
  // script, _exits here (never returns).
  int finish(const RunResult& result);

 private:
  std::unique_ptr<Vm> vm_;
};

}  // namespace dionea::vm
