#include "vm/value.hpp"

#include "support/strings.hpp"
#include "vm/bytecode.hpp"

namespace dionea::vm {

const char* value_kind_name(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kFloat: return "float";
    case ValueKind::kStr: return "str";
    case ValueKind::kList: return "list";
    case ValueKind::kMap: return "map";
    case ValueKind::kClosure: return "fn";
    case ValueKind::kNative: return "builtin";
    case ValueKind::kMutex: return "mutex";
    case ValueKind::kQueue: return "queue";
    case ValueKind::kCond: return "cond";
    case ValueKind::kThread: return "thread";
    case ValueKind::kForeign: return "foreign";
  }
  return "?";
}

std::string VmError::to_string() const {
  std::string out = message;
  for (const TracebackEntry& entry : traceback) {
    out += strings::format(
        "\n\tfrom %s:in `%s'",
        strings::source_location(entry.file, entry.line).c_str(),
        entry.function.c_str());
  }
  return out;
}

bool Value::equals(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return number() == other.number();
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNil: return true;
    case ValueKind::kBool: return as_bool() == other.as_bool();
    case ValueKind::kStr: return as_str() == other.as_str();
    case ValueKind::kList: {
      const auto& a = as_list()->items;
      const auto& b = other.as_list()->items;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].equals(b[i])) return false;
      }
      return true;
    }
    case ValueKind::kMap: {
      const auto& a = as_map()->items;
      const auto& b = other.as_map()->items;
      if (a.size() != b.size()) return false;
      auto it_b = b.begin();
      for (auto it_a = a.begin(); it_a != a.end(); ++it_a, ++it_b) {
        if (it_a->first != it_b->first) return false;
        if (!it_a->second.equals(it_b->second)) return false;
      }
      return true;
    }
    case ValueKind::kClosure: return as_closure() == other.as_closure();
    case ValueKind::kNative: return as_native() == other.as_native();
    case ValueKind::kMutex: return as_mutex() == other.as_mutex();
    case ValueKind::kQueue: return as_queue() == other.as_queue();
    case ValueKind::kCond: return as_cond() == other.as_cond();
    case ValueKind::kThread:
      return as_thread()->thread_id == other.as_thread()->thread_id;
    case ValueKind::kForeign: return as_foreign() == other.as_foreign();
    default: return false;
  }
}

std::string Value::to_display() const {
  if (is_str()) return as_str();
  return repr();
}

std::string Value::repr() const {
  switch (kind()) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return as_bool() ? "true" : "false";
    case ValueKind::kInt: return std::to_string(as_int());
    case ValueKind::kFloat: {
      std::string s = strings::format("%.12g", as_float());
      // Keep floats visually distinct from ints.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kStr:
      return "\"" + strings::escape(as_str()) + "\"";
    case ValueKind::kList: {
      std::string out = "[";
      const auto& items = as_list()->items;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += items[i].repr();
      }
      return out + "]";
    }
    case ValueKind::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : as_map()->items) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + strings::escape(key) + "\": " + value.repr();
      }
      return out + "}";
    }
    case ValueKind::kClosure: {
      const auto& proto = as_closure()->proto;
      std::string name = proto ? proto->name : "?";
      if (name.empty()) name = "<lambda>";
      return "<fn " + name + ">";
    }
    case ValueKind::kNative:
      return "<builtin " + as_native()->name + ">";
    case ValueKind::kMutex: return "<mutex>";
    case ValueKind::kQueue: return "<queue>";
    case ValueKind::kCond: return "<cond>";
    case ValueKind::kThread:
      return "<thread " + std::to_string(as_thread()->thread_id) + ">";
    case ValueKind::kForeign: return as_foreign()->repr();
  }
  return "?";
}

}  // namespace dionea::vm
