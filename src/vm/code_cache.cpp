#include "vm/code_cache.hpp"

#include "support/result.hpp"

namespace dionea::vm {

void build_code_cache(const FunctionProto& proto, bool quicken,
                      CodeCache& cache) {
  const Chunk& chunk = proto.chunk;
  cache.code = chunk.code();
  cache.ics.clear();
  cache.in_use = 0;
  cache.quickened = quicken;
  if (!quicken) return;

  // Same-length rewrite over the verified instruction stream. The
  // verifier ran first, so this walk cannot leave the array.
  size_t offset = 0;
  while (offset < cache.code.size()) {
    const Op op = static_cast<Op>(cache.code[offset]);
    const size_t operand = offset + 1;
    switch (op) {
      case Op::kTraceLine:
        cache.code[offset] = static_cast<std::uint8_t>(Op::kTraceLineQ);
        break;
      case Op::kGetGlobal:
      case Op::kSetGlobal: {
        DIONEA_CHECK(cache.ics.size() < 0xffff, "too many IC sites");
        const std::uint16_t ic_index =
            static_cast<std::uint16_t>(cache.ics.size());
        GlobalIc ic;
        ic.name_const = chunk.read_u16(operand);
        cache.ics.push_back(ic);
        cache.code[offset] = static_cast<std::uint8_t>(
            op == Op::kGetGlobal ? Op::kGetGlobalIC : Op::kSetGlobalIC);
        cache.code[operand] = static_cast<std::uint8_t>(ic_index & 0xff);
        cache.code[operand + 1] = static_cast<std::uint8_t>(ic_index >> 8);
        break;
      }
      default:
        break;
    }
    offset += 1 + static_cast<size_t>(op_operand_bytes(op));
  }
}

}  // namespace dionea::vm
