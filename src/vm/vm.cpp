#include "vm/vm.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "analysis/analysis.hpp"
#include "replay/replay.hpp"
#include "support/crash_report.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/timing.hpp"
#include "vm/builtins.hpp"
#include "vm/compiler.hpp"

namespace dionea::vm {

namespace {
constexpr size_t kMaxFrames = 256;  // "stack level too deep"
}  // namespace

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kCall: return "call";
    case TraceKind::kLine: return "line";
    case TraceKind::kReturn: return "return";
    case TraceKind::kThreadStart: return "thread_start";
    case TraceKind::kThreadEnd: return "thread_end";
  }
  return "?";
}

Vm::Vm() {
  // Before any sync object exists, so creation-order replay ids line
  // up between a recording process and a replaying one.
  replay::Engine::init_from_env();
  analysis::Engine::init_from_env();
  output_ = [](std::string_view text) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  };
  install_core_builtins(*this);
}

Vm::~Vm() = default;

void Vm::install_builtins() { install_core_builtins(*this); }

// --------------------------------------------------------------- globals

void Vm::define_native(
    const std::string& name, int min_arity, int max_arity,
    std::function<NativeResult(Vm&, InterpThread&, std::vector<Value>&)> fn) {
  auto native = std::make_shared<NativeFn>();
  native->name = name;
  native->min_arity = min_arity;
  native->max_arity = max_arity;
  native->fn = std::move(fn);
  globals_[name] = Value(std::move(native));
}

void Vm::set_global(const std::string& name, Value value) {
  globals_[name] = std::move(value);
}

Value Vm::get_global(const std::string& name) const {
  auto it = globals_.find(name);
  return it == globals_.end() ? Value() : it->second;
}

void Vm::set_trace_fn(TraceFn fn) { trace_fn_ = std::move(fn); }

void Vm::clear_trace_fn() {
  trace_fn_ = nullptr;
  trace_enabled_.store(false, std::memory_order_relaxed);
}

void Vm::set_output(std::function<void(std::string_view)> sink) {
  output_ = std::move(sink);
}

void Vm::write_output(std::string_view text) {
  if (output_) output_(text);
}

void Vm::set_deadlock_hook(DeadlockHook hook) {
  std::scoped_lock lock(sched_mutex_);
  deadlock_hook_ = std::move(hook);
}

void Vm::set_at_exit_hook(std::function<void(Vm&)> hook) {
  at_exit_hook_ = std::move(hook);
}

void Vm::run_at_exit_hook() {
  if (at_exit_hook_) at_exit_hook_(*this);
}

void Vm::register_sync_object(std::shared_ptr<SyncObject> object) {
  std::scoped_lock lock(sched_mutex_);
  sync_objects_.push_back(object);
}

std::vector<std::shared_ptr<SyncObject>> Vm::sync_objects_snapshot() {
  std::scoped_lock lock(sched_mutex_);
  std::vector<std::shared_ptr<SyncObject>> out;
  for (auto& weak : sync_objects_) {
    if (auto obj = weak.lock()) out.push_back(std::move(obj));
  }
  return out;
}

void Vm::crash_dump(crash::Writer& w) noexcept {
  w.str("gil-owner: ");
  w.dec(gil_.owner_relaxed());
  w.nl();
  w.str("fork-depth: ");
  w.dec(fork_depth_);
  w.nl();
  // threads_ and each frames vector are read WITHOUT sched_mutex_ or
  // the GIL: the crashing thread may hold either. Hard caps bound the
  // walk; anything torn mid-mutation at worst faults into the
  // handler's re-entry guard.
  size_t listed = 0;
  for (const auto& [id, th] : threads_) {
    if (th == nullptr) continue;
    if (++listed > 128) {
      w.str("... more threads (truncated)\n");
      break;
    }
    w.str("thread ");
    w.dec(id);
    w.str(" name=");
    w.str(th->name().c_str());
    w.str(" state=");
    w.str(thread_state_name(th->state));
    if (!th->block_note.empty()) {
      w.str(" block=");
      w.str(th->block_note.c_str());
    }
    w.nl();
    size_t depth = th->frames.size();
    if (depth > kMaxFrames) depth = kMaxFrames;
    for (size_t i = depth; i-- > 0;) {
      const InterpThread::Frame& fr = th->frames[i];
      w.str("  #");
      w.udec(depth - 1 - i);  // innermost frame is #0
      w.str(" ");
      const Closure* closure = fr.closure.get();
      const FunctionProto* proto =
          closure != nullptr ? closure->proto.get() : nullptr;
      if (proto != nullptr) {
        w.str(proto->name.empty() ? "<lambda>" : proto->name.c_str());
        w.str(" ");
        w.str(proto->file.c_str());
        w.str(":");
        w.dec(fr.line);
      } else {
        w.str("<unknown>");
      }
      w.nl();
    }
  }
  size_t objects = 0;
  for (const auto& weak : sync_objects_) {
    auto obj = weak.lock();  // lock-free refcount bump, AS-safe enough
    if (obj == nullptr) continue;
    if (++objects > 256) {
      w.str("... more sync objects (truncated)\n");
      break;
    }
    obj->crash_describe(w);
  }
}

void Vm::request_exit(int code) {
  exit_code_.store(code, std::memory_order_relaxed);
  exit_pending_.store(true, std::memory_order_relaxed);
  std::scoped_lock lock(sched_mutex_);
  for (auto& [id, th] : threads_) {
    th->interrupt.store(InterruptReason::kKill, std::memory_order_relaxed);
  }
}

std::uint64_t Vm::statements_executed() {
  std::scoped_lock lock(sched_mutex_);
  std::uint64_t total = retired_statements_;
  for (const auto& [id, th] : threads_) total += th->stmt_count;
  return total;
}

// ---------------------------------------------------------------- errors

VmError Vm::runtime_error(InterpThread& th, std::string message,
                          VmErrorKind kind) {
  VmError err;
  err.kind = kind;
  err.message = std::move(message);
  for (size_t i = th.frames.size(); i-- > 0;) {
    const InterpThread::Frame& fr = th.frames[i];
    const FunctionProto& proto = *fr.closure->proto;
    std::string fn_name = proto.name.empty() ? "<lambda>" : proto.name;
    err.traceback.push_back(TracebackEntry{fn_name, proto.file, fr.line});
  }
  return err;
}

namespace {

VmError interrupt_error(Vm& vm, InterpThread& th) {
  InterruptReason reason = th.interrupt.load(std::memory_order_relaxed);
  if (reason == InterruptReason::kDeadlock) {
    return vm.runtime_error(th, "deadlock detected (fatal)",
                            VmErrorKind::kFatalDeadlock);
  }
  return vm.runtime_error(th, "killed", VmErrorKind::kThreadKill);
}

}  // namespace

// ------------------------------------------------------------ BlockScope

Vm::BlockScope::BlockScope(Vm& vm, InterpThread& th, ThreadState state,
                           std::string note)
    : vm_(vm), th_(th) {
  // Release the GIL first so that the deadlock hook (and any other
  // thread) may take it while we are parked.
  vm_.gil_.release();
  vm_.set_thread_state(th_, state, std::move(note));
}

Vm::BlockScope::~BlockScope() {
  vm_.set_thread_state(th_, ThreadState::kRunnable, {});
  vm_.gil_.acquire(th_.id());
}

void Vm::set_thread_state(InterpThread& th, ThreadState state,
                          std::string note) {
  std::unique_lock lock(sched_mutex_);
  th.state = state;
  ++th.block_epoch;
  th.block_note = std::move(note);
  if (!th.frames.empty()) {
    const InterpThread::Frame& fr = th.frames.back();
    th.block_file = fr.closure->proto->file;
    th.block_line = fr.line;
  }
  if (state == ThreadState::kBlockedForever) {
    check_deadlock_locked(lock);
  } else if (deadlock_candidate_active_.load(std::memory_order_relaxed)) {
    // A thread progressed: whatever candidate existed is stale.
    deadlock_candidate_.clear();
    deadlock_candidate_active_.store(false, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Vm::blocked_snapshot_locked(bool* all_blocked_forever) const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> snapshot;
  int alive = 0;
  int forever = 0;
  bool parked_or_waking = false;
  for (const auto& [id, th] : threads_) {
    switch (th->state) {
      case ThreadState::kDead:
        break;
      case ThreadState::kDebugParked:
        // A suspended thread can be resumed by the client; nothing is
        // provably stuck while one exists.
        parked_or_waking = true;
        ++alive;
        break;
      case ThreadState::kBlockedForever:
        // A thread parked at a replay gate is waiting for its recorded
        // turn, not for the program — the replay engine's own stall
        // timeout covers it. Without this, forcing an interleaving
        // would trip the deadlock detector on schedules that are
        // merely *paused*, not stuck. Genuinely deadlocked threads are
        // not gated (their wait predicate fails before it consults the
        // engine), so real detection is unaffected.
        if (replay::Engine::instance().gated(th->id())) {
          parked_or_waking = true;
          ++alive;
          break;
        }
        ++alive;
        ++forever;
        snapshot.emplace_back(th->id(), th->block_epoch);
        break;
      case ThreadState::kBlockedTimed:
      case ThreadState::kIoBlocked:
        parked_or_waking = true;
        ++alive;
        break;
      case ThreadState::kRunnable:
        ++alive;
        break;
    }
  }
  *all_blocked_forever = alive > 0 && !parked_or_waking && forever == alive;
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

void Vm::check_deadlock_locked(std::unique_lock<std::mutex>& /*sched_lock*/) {
  if (deadlock_reported_) return;
  bool all_blocked = false;
  auto snapshot = blocked_snapshot_locked(&all_blocked);
  if (!all_blocked) {
    deadlock_candidate_.clear();
    deadlock_candidate_active_.store(false, std::memory_order_relaxed);
    return;
  }
  if (snapshot != deadlock_candidate_) {
    // New (or changed) candidate: arm the grace timer; the blocked
    // threads' wait ticks will confirm it via deadlock_tick().
    deadlock_candidate_ = std::move(snapshot);
    deadlock_candidate_since_ = mono_seconds();
    deadlock_candidate_active_.store(true, std::memory_order_relaxed);
  }
}

void Vm::deadlock_tick() {
  std::unique_lock lock(sched_mutex_);
  if (deadlock_reported_ || deadlock_candidate_.empty()) return;
  bool all_blocked = false;
  auto snapshot = blocked_snapshot_locked(&all_blocked);
  if (!all_blocked || snapshot != deadlock_candidate_) {
    // Something moved since the candidate was formed — either the
    // system made progress (drop it) or it re-froze in a new shape
    // (restart the grace period on the new snapshot).
    if (all_blocked) {
      deadlock_candidate_ = std::move(snapshot);
      deadlock_candidate_since_ = mono_seconds();
    } else {
      deadlock_candidate_.clear();
      deadlock_candidate_active_.store(false, std::memory_order_relaxed);
    }
    return;
  }
  if ((mono_seconds() - deadlock_candidate_since_) * 1000.0 <
      kDeadlockGraceMillis) {
    return;  // not confirmed yet
  }
  fire_deadlock_locked(lock);
}

void Vm::fire_deadlock_locked(std::unique_lock<std::mutex>& sched_lock) {
  // Every live thread has been blocked on a VM object, with no timeout
  // and no external waker, for the whole grace period: the Ruby
  // `deadlock detected (fatal)` condition.
  deadlock_reported_ = true;
  deadlock_candidate_.clear();
  deadlock_candidate_active_.store(false, std::memory_order_relaxed);
  std::vector<DeadlockInfo> infos;
  infos.reserve(threads_.size());
  for (const auto& [id, th] : threads_) {
    if (th->state != ThreadState::kBlockedForever) continue;
    infos.push_back(DeadlockInfo{th->id(), th->name(), th->block_file,
                                 th->block_line, th->block_note});
  }
  DeadlockHook hook = deadlock_hook_;
  if (hook) {
    // CP.22: never call unknown code while holding a lock.
    sched_lock.unlock();
    bool handled = hook(*this, infos);
    sched_lock.lock();
    if (handled) return;  // debugger owns it; threads stay suspended
  }
  DLOG_INFO("vm") << "deadlock detected across " << infos.size()
                  << " thread(s)";
  for (auto& [id, th] : threads_) {
    if (th->state == ThreadState::kDead) continue;
    th->interrupt.store(InterruptReason::kDeadlock,
                        std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- frames

std::optional<VmError> Vm::push_frame(InterpThread& th,
                                      std::shared_ptr<Closure> closure,
                                      int argc) {
  const FunctionProto& proto = *closure->proto;
  if (argc != proto.arity) {
    return runtime_error(
        th, strings::format("wrong number of arguments for %s (given %d, "
                            "expected %d)",
                            proto.name.empty() ? "<lambda>" : proto.name.c_str(),
                            argc, proto.arity));
  }
  if (th.frames.size() >= kMaxFrames) {
    return runtime_error(th, "stack level too deep");
  }
  InterpThread::Frame frame;
  frame.closure = std::move(closure);
  frame.ip = 0;
  frame.base = th.stack.size() - static_cast<size_t>(argc);
  frame.line = proto.line;
  th.stack.resize(frame.base + proto.local_names.size());
  th.frames.push_back(std::move(frame));
  if (trace_enabled() && trace_fn_ && !th.suppress_trace) fire_trace(th, TraceKind::kCall, proto.line);
  return std::nullopt;
}

void Vm::fire_trace(InterpThread& th, TraceKind kind, int line) {
  switch (kind) {
    case TraceKind::kLine:
      metrics::add(metrics::Counter::kTraceLineEvents);
      break;
    case TraceKind::kCall:
      metrics::add(metrics::Counter::kTraceCallEvents);
      break;
    case TraceKind::kReturn:
      metrics::add(metrics::Counter::kTraceReturnEvents);
      break;
    case TraceKind::kThreadStart:
    case TraceKind::kThreadEnd:
      metrics::add(metrics::Counter::kTraceThreadEvents);
      break;
  }
  // Dispatch latency is sampled 1-in-64: two clock reads per line
  // event would dwarf the dispatch being measured; at this rate the
  // histogram stays honest and the probe stays off the §7 overhead.
  thread_local unsigned sample_tick = 0;
  const bool sampled = metrics::Registry::instance().enabled() &&
                       (++sample_tick & 63u) == 0;
  const std::int64_t start = sampled ? mono_nanos() : 0;

  TraceEvent event;
  event.kind = kind;
  event.thread_id = th.id();
  event.line = line;
  event.frame_depth = static_cast<int>(th.frames.size());
  if (!th.frames.empty()) {
    const FunctionProto& proto = *th.frames.back().closure->proto;
    event.file = proto.file;
    event.function = proto.name.empty() ? std::string_view("<lambda>")
                                        : std::string_view(proto.name);
    // The proto outlives the run (pinned by the program/closures), so
    // its file string is a stable pointer for the crash report.
    crash::note_trace(proto.file.c_str(), line, th.id());
  }
  trace_fn_(*this, th, event);

  if (sampled) {
    metrics::observe(metrics::Histogram::kTraceHookNanos,
                     static_cast<std::uint64_t>(mono_nanos() - start));
  }
}

// --------------------------------------------------------------- interpret

std::variant<Value, VmError> Vm::interpret(InterpThread& th,
                                           size_t stop_depth) {
  int since_switch = 0;

  auto fail = [&](VmError err) -> std::variant<Value, VmError> {
    // Unwind frames created at or above stop_depth.
    while (th.frames.size() >= stop_depth) {
      size_t base = th.frames.back().base;
      th.frames.pop_back();
      th.stack.resize(base > 0 ? base - 1 : 0);
    }
    return err;
  };

  while (true) {
    InterpThread::Frame& fr = th.frames.back();
    const Chunk& chunk = fr.closure->proto->chunk;
    DIONEA_CHECK(fr.ip < chunk.size(), "ip out of range");
    Op op = static_cast<Op>(chunk.read_u8(fr.ip++));
    switch (op) {
      case Op::kTraceLine: {
        int line = chunk.read_u16(fr.ip);
        fr.ip += 2;
        fr.line = line;
        ++th.stmt_count;
        InterruptReason reason =
            th.interrupt.load(std::memory_order_relaxed);
        if (reason != InterruptReason::kNone) {
          return fail(interrupt_error(*this, th));
        }
        if (++since_switch >= switch_interval_) {
          since_switch = 0;
          gil_.yield(th.id());
        }
        if (trace_enabled() && trace_fn_ && !th.suppress_trace) {
          fire_trace(th, TraceKind::kLine, line);
          // The trace callback may have parked and resumed us; an
          // interrupt could have arrived while parked.
          reason = th.interrupt.load(std::memory_order_relaxed);
          if (reason != InterruptReason::kNone) {
            return fail(interrupt_error(*this, th));
          }
        }
        break;
      }

      case Op::kConst: {
        const Value& v = chunk.constants()[chunk.read_u16(fr.ip)];
        fr.ip += 2;
        th.stack.push_back(v);
        break;
      }
      case Op::kNil: th.stack.emplace_back(); break;
      case Op::kTrue: th.stack.emplace_back(true); break;
      case Op::kFalse: th.stack.emplace_back(false); break;
      case Op::kPop: th.stack.pop_back(); break;
      case Op::kDup: th.stack.push_back(th.stack.back()); break;

      case Op::kGetLocal: {
        std::uint16_t slot = chunk.read_u16(fr.ip);
        fr.ip += 2;
        th.stack.push_back(th.stack[fr.base + slot]);
        break;
      }
      case Op::kSetLocal: {
        std::uint16_t slot = chunk.read_u16(fr.ip);
        fr.ip += 2;
        th.stack[fr.base + slot] = th.stack.back();
        break;
      }
      case Op::kGetCapture: {
        std::uint16_t idx = chunk.read_u16(fr.ip);
        fr.ip += 2;
        th.stack.push_back(fr.closure->captures[idx]);
        break;
      }
      case Op::kSetCapture: {
        std::uint16_t idx = chunk.read_u16(fr.ip);
        fr.ip += 2;
        fr.closure->captures[idx] = th.stack.back();
        break;
      }
      case Op::kGetGlobal: {
        const Value& name = chunk.constants()[chunk.read_u16(fr.ip)];
        fr.ip += 2;
        auto it = globals_.find(name.as_str());
        if (it == globals_.end()) {
          return fail(runtime_error(
              th, "undefined name '" + name.as_str() + "'"));
        }
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_access(
              th.id(), name.as_str(), analysis::AccessKind::kRead,
              it->second, fr.closure->proto->file, fr.line);
        }
        th.stack.push_back(it->second);
        break;
      }
      case Op::kSetGlobal: {
        const Value& name = chunk.constants()[chunk.read_u16(fr.ip)];
        fr.ip += 2;
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_access(
              th.id(), name.as_str(), analysis::AccessKind::kWrite,
              th.stack.back(), fr.closure->proto->file, fr.line);
        }
        globals_[name.as_str()] = th.stack.back();
        break;
      }

      case Op::kAdd: {
        Value rhs = std::move(th.stack.back());
        th.stack.pop_back();
        Value& lhs = th.stack.back();
        if (lhs.is_int() && rhs.is_int()) {
          std::int64_t out;
          if (__builtin_add_overflow(lhs.as_int(), rhs.as_int(), &out)) {
            return fail(runtime_error(th, "integer overflow in +"));
          }
          lhs = Value(out);
        } else if (lhs.is_number() && rhs.is_number()) {
          lhs = Value(lhs.number() + rhs.number());
        } else if (lhs.is_str() && rhs.is_str()) {
          lhs = Value::str(lhs.as_str() + rhs.as_str());
        } else if (lhs.is_list() && rhs.is_list()) {
          auto combined = std::make_shared<List>();
          combined->items = lhs.as_list()->items;
          combined->items.insert(combined->items.end(),
                                 rhs.as_list()->items.begin(),
                                 rhs.as_list()->items.end());
          lhs = Value(std::move(combined));
        } else {
          return fail(runtime_error(
              th, strings::format("cannot add %s and %s", lhs.type_name(),
                                  rhs.type_name())));
        }
        break;
      }
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        Value rhs = std::move(th.stack.back());
        th.stack.pop_back();
        Value& lhs = th.stack.back();
        if (!lhs.is_number() || !rhs.is_number()) {
          return fail(runtime_error(
              th, strings::format("numeric operator on %s and %s",
                                  lhs.type_name(), rhs.type_name())));
        }
        if (lhs.is_int() && rhs.is_int()) {
          std::int64_t a = lhs.as_int();
          std::int64_t b = rhs.as_int();
          std::int64_t out = 0;
          bool overflow = false;
          switch (op) {
            case Op::kSub: overflow = __builtin_sub_overflow(a, b, &out); break;
            case Op::kMul: overflow = __builtin_mul_overflow(a, b, &out); break;
            case Op::kDiv:
              if (b == 0) return fail(runtime_error(th, "divided by 0"));
              if (a == INT64_MIN && b == -1) {
                overflow = true;
              } else {
                out = a / b;
              }
              break;
            default: break;
          }
          if (overflow) {
            return fail(runtime_error(th, "integer overflow"));
          }
          lhs = Value(out);
        } else {
          double a = lhs.number();
          double b = rhs.number();
          double out = op == Op::kSub ? a - b : op == Op::kMul ? a * b : a / b;
          lhs = Value(out);
        }
        break;
      }
      case Op::kMod: {
        Value rhs = std::move(th.stack.back());
        th.stack.pop_back();
        Value& lhs = th.stack.back();
        if (!lhs.is_int() || !rhs.is_int()) {
          return fail(runtime_error(th, "'%' requires integers"));
        }
        if (rhs.as_int() == 0) {
          return fail(runtime_error(th, "divided by 0"));
        }
        lhs = Value(lhs.as_int() % rhs.as_int());
        break;
      }
      case Op::kNeg: {
        Value& v = th.stack.back();
        if (v.is_int()) {
          v = Value(-v.as_int());
        } else if (v.is_float()) {
          v = Value(-v.as_float());
        } else {
          return fail(runtime_error(
              th, strings::format("cannot negate %s", v.type_name())));
        }
        break;
      }
      case Op::kNot: {
        Value& v = th.stack.back();
        v = Value(!v.truthy());
        break;
      }
      case Op::kEq:
      case Op::kNe: {
        Value rhs = std::move(th.stack.back());
        th.stack.pop_back();
        Value& lhs = th.stack.back();
        bool eq = lhs.equals(rhs);
        lhs = Value(op == Op::kEq ? eq : !eq);
        break;
      }
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        Value rhs = std::move(th.stack.back());
        th.stack.pop_back();
        Value& lhs = th.stack.back();
        int cmp;
        if (lhs.is_number() && rhs.is_number()) {
          double a = lhs.number();
          double b = rhs.number();
          cmp = a < b ? -1 : a > b ? 1 : 0;
        } else if (lhs.is_str() && rhs.is_str()) {
          int c = lhs.as_str().compare(rhs.as_str());
          cmp = c < 0 ? -1 : c > 0 ? 1 : 0;
        } else {
          return fail(runtime_error(
              th, strings::format("cannot compare %s with %s",
                                  lhs.type_name(), rhs.type_name())));
        }
        bool result = op == Op::kLt   ? cmp < 0
                      : op == Op::kLe ? cmp <= 0
                      : op == Op::kGt ? cmp > 0
                                      : cmp >= 0;
        lhs = Value(result);
        break;
      }

      case Op::kJump: {
        std::uint16_t offset = chunk.read_u16(fr.ip);
        fr.ip += 2 + offset;
        break;
      }
      case Op::kJumpIfFalse: {
        std::uint16_t offset = chunk.read_u16(fr.ip);
        fr.ip += 2;
        Value cond = std::move(th.stack.back());
        th.stack.pop_back();
        if (!cond.truthy()) fr.ip += offset;
        break;
      }
      case Op::kJumpIfFalsePeek: {
        std::uint16_t offset = chunk.read_u16(fr.ip);
        fr.ip += 2;
        if (!th.stack.back().truthy()) fr.ip += offset;
        break;
      }
      case Op::kJumpIfTruePeek: {
        std::uint16_t offset = chunk.read_u16(fr.ip);
        fr.ip += 2;
        if (th.stack.back().truthy()) fr.ip += offset;
        break;
      }
      case Op::kLoop: {
        std::uint16_t offset = chunk.read_u16(fr.ip);
        fr.ip = fr.ip + 2 - offset;
        break;
      }

      case Op::kCall: {
        int argc = chunk.read_u8(fr.ip);
        fr.ip += 1;
        size_t callee_index = th.stack.size() - static_cast<size_t>(argc) - 1;
        Value callee = th.stack[callee_index];
        if (callee.is_closure()) {
          // Instantiate the called closure's frame directly on top of
          // the args (callee slot stays below base for cleanup).
          auto err = push_frame(th, callee.as_closure(), argc);
          if (err) return fail(std::move(*err));
          break;
        }
        if (callee.is_native()) {
          const NativeFn& native = *callee.as_native();
          if (argc < native.min_arity ||
              (native.max_arity >= 0 && argc > native.max_arity)) {
            return fail(runtime_error(
                th, strings::format("wrong number of arguments for %s",
                                    native.name.c_str())));
          }
          std::vector<Value> args;
          args.reserve(static_cast<size_t>(argc));
          for (size_t i = callee_index + 1; i < th.stack.size(); ++i) {
            args.push_back(std::move(th.stack[i]));
          }
          th.stack.resize(callee_index);
          NativeResult result = native.fn(*this, th, args);
          if (std::holds_alternative<VmError>(result)) {
            VmError err = std::get<VmError>(std::move(result));
            if (err.traceback.empty()) {
              err.traceback = runtime_error(th, "").traceback;
            }
            return fail(std::move(err));
          }
          th.stack.push_back(std::get<Value>(std::move(result)));
          break;
        }
        return fail(runtime_error(
            th, strings::format("%s is not callable", callee.type_name())));
      }

      case Op::kReturn: {
        Value result = std::move(th.stack.back());
        th.stack.pop_back();
        if (trace_enabled() && trace_fn_ && !th.suppress_trace) {
          fire_trace(th, TraceKind::kReturn, th.frames.back().line);
        }
        size_t base = th.frames.back().base;
        th.frames.pop_back();
        th.stack.resize(base > 0 ? base - 1 : 0);
        if (th.frames.size() < stop_depth) return result;
        th.stack.push_back(std::move(result));
        break;
      }

      case Op::kBuildList: {
        std::uint16_t count = chunk.read_u16(fr.ip);
        fr.ip += 2;
        auto list = std::make_shared<List>();
        list->items.reserve(count);
        size_t first = th.stack.size() - count;
        for (size_t i = first; i < th.stack.size(); ++i) {
          list->items.push_back(std::move(th.stack[i]));
        }
        th.stack.resize(first);
        th.stack.emplace_back(std::move(list));
        break;
      }
      case Op::kBuildMap: {
        std::uint16_t pairs = chunk.read_u16(fr.ip);
        fr.ip += 2;
        auto map = std::make_shared<Map>();
        size_t first = th.stack.size() - static_cast<size_t>(pairs) * 2;
        for (size_t i = first; i < th.stack.size(); i += 2) {
          if (!th.stack[i].is_str()) {
            return fail(runtime_error(th, "map keys must be strings"));
          }
          map->items[th.stack[i].as_str()] = std::move(th.stack[i + 1]);
        }
        th.stack.resize(first);
        th.stack.emplace_back(std::move(map));
        break;
      }

      case Op::kIndexGet: {
        Value index = std::move(th.stack.back());
        th.stack.pop_back();
        Value& target = th.stack.back();
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_index_access(
              th.id(), target, analysis::AccessKind::kRead,
              fr.closure->proto->file, fr.line);
        }
        if (target.is_list()) {
          if (!index.is_int()) {
            return fail(runtime_error(th, "list index must be an int"));
          }
          const auto& items = target.as_list()->items;
          std::int64_t i = index.as_int();
          if (i < 0) i += static_cast<std::int64_t>(items.size());
          if (i < 0 || i >= static_cast<std::int64_t>(items.size())) {
            return fail(runtime_error(
                th, strings::format("list index %lld out of range (len %zu)",
                                    static_cast<long long>(index.as_int()),
                                    items.size())));
          }
          target = items[static_cast<size_t>(i)];
        } else if (target.is_map()) {
          if (!index.is_str()) {
            return fail(runtime_error(th, "map key must be a string"));
          }
          const auto& items = target.as_map()->items;
          auto it = items.find(index.as_str());
          target = it == items.end() ? Value() : it->second;
        } else if (target.is_str()) {
          if (!index.is_int()) {
            return fail(runtime_error(th, "string index must be an int"));
          }
          const std::string& s = target.as_str();
          std::int64_t i = index.as_int();
          if (i < 0) i += static_cast<std::int64_t>(s.size());
          if (i < 0 || i >= static_cast<std::int64_t>(s.size())) {
            return fail(runtime_error(th, "string index out of range"));
          }
          target = Value::str(std::string(1, s[static_cast<size_t>(i)]));
        } else {
          return fail(runtime_error(
              th, strings::format("%s is not indexable", target.type_name())));
        }
        break;
      }
      case Op::kIndexSet: {
        Value value = std::move(th.stack.back());
        th.stack.pop_back();
        Value index = std::move(th.stack.back());
        th.stack.pop_back();
        Value target = std::move(th.stack.back());
        th.stack.pop_back();
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_index_access(
              th.id(), target, analysis::AccessKind::kWrite,
              fr.closure->proto->file, fr.line);
        }
        if (target.is_list()) {
          if (!index.is_int()) {
            return fail(runtime_error(th, "list index must be an int"));
          }
          auto& items = target.as_list()->items;
          std::int64_t i = index.as_int();
          if (i < 0) i += static_cast<std::int64_t>(items.size());
          if (i < 0 || i >= static_cast<std::int64_t>(items.size())) {
            return fail(runtime_error(th, "list assignment index out of range"));
          }
          items[static_cast<size_t>(i)] = value;
        } else if (target.is_map()) {
          if (!index.is_str()) {
            return fail(runtime_error(th, "map key must be a string"));
          }
          target.as_map()->items[index.as_str()] = value;
        } else {
          return fail(runtime_error(
              th,
              strings::format("cannot index-assign %s", target.type_name())));
        }
        th.stack.push_back(std::move(value));
        break;
      }

      case Op::kClosure: {
        const Value& proto_value = chunk.constants()[chunk.read_u16(fr.ip)];
        fr.ip += 2;
        const auto& template_closure = proto_value.as_closure();
        auto instance = std::make_shared<Closure>();
        instance->proto = template_closure->proto;
        instance->captures.reserve(instance->proto->captures.size());
        for (const CaptureSource& source : instance->proto->captures) {
          if (source.from_enclosing_capture) {
            instance->captures.push_back(fr.closure->captures[source.index]);
          } else {
            instance->captures.push_back(th.stack[fr.base + source.index]);
          }
        }
        th.stack.emplace_back(std::move(instance));
        break;
      }

      case Op::kIterNew: {
        Value& v = th.stack.back();
        auto list = std::make_shared<List>();
        if (v.is_list()) {
          list->items = v.as_list()->items;  // snapshot, like `for` in Ruby
        } else if (v.is_map()) {
          list->items.reserve(v.as_map()->items.size());
          for (const auto& [key, unused] : v.as_map()->items) {
            list->items.push_back(Value::str(key));
          }
        } else if (v.is_str()) {
          const std::string& s = v.as_str();
          list->items.reserve(s.size());
          for (char c : s) list->items.push_back(Value::str(std::string(1, c)));
        } else if (v.is_int()) {
          std::int64_t n = v.as_int();
          if (n < 0) n = 0;
          list->items.reserve(static_cast<size_t>(n));
          for (std::int64_t i = 0; i < n; ++i) list->items.push_back(Value(i));
        } else {
          return fail(runtime_error(
              th, strings::format("%s is not iterable", v.type_name())));
        }
        v = Value(std::move(list));
        break;
      }
      case Op::kIterNext: {
        std::uint16_t slot = chunk.read_u16(fr.ip);
        std::uint16_t exit_offset = chunk.read_u16(fr.ip + 2);
        fr.ip += 4;
        const auto& list = th.stack[fr.base + slot].as_list();
        Value& index = th.stack[fr.base + slot + 1];
        std::int64_t i = index.as_int();
        if (i >= static_cast<std::int64_t>(list->items.size())) {
          fr.ip += exit_offset;
          break;
        }
        index = Value(i + 1);
        th.stack.push_back(list->items[static_cast<size_t>(i)]);
        break;
      }

      case Op::kHalt:
        return Value();
    }
  }
}

// ---------------------------------------------------------------- calling

std::variant<Value, VmError> Vm::call_value(InterpThread& th, Value callee,
                                            std::vector<Value> args) {
  if (callee.is_native()) {
    const NativeFn& native = *callee.as_native();
    int argc = static_cast<int>(args.size());
    if (argc < native.min_arity ||
        (native.max_arity >= 0 && argc > native.max_arity)) {
      return runtime_error(
          th, strings::format("wrong number of arguments for %s",
                              native.name.c_str()));
    }
    NativeResult result = native.fn(*this, th, args);
    if (std::holds_alternative<VmError>(result)) {
      return std::get<VmError>(std::move(result));
    }
    return std::get<Value>(std::move(result));
  }
  if (!callee.is_closure()) {
    return runtime_error(
        th, strings::format("%s is not callable", callee.type_name()));
  }
  size_t stop_depth = th.frames.size() + 1;
  th.stack.push_back(callee);
  for (Value& arg : args) th.stack.push_back(std::move(arg));
  auto err = push_frame(th, callee.as_closure(),
                        static_cast<int>(args.size()));
  if (err) {
    th.stack.resize(th.stack.size() - args.size() - 1);
    return std::move(*err);
  }
  return interpret(th, stop_depth);
}

// ---------------------------------------------------------------- threads

std::variant<Value, VmError> Vm::spawn_thread(InterpThread& parent,
                                              Value callee,
                                              std::vector<Value> args) {
  if (!callee.is_closure()) {
    return runtime_error(parent, "spawn expects a fn");
  }
  if (static_cast<int>(args.size()) != callee.as_closure()->proto->arity) {
    return runtime_error(parent, "spawn: argument count mismatch");
  }
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    std::int64_t id = ++next_thread_id_;
    th = std::make_shared<InterpThread>(
        id, strings::format("thread-%lld", static_cast<long long>(id)));
    threads_[id] = th;
  }
  auto handle = std::make_shared<ThreadHandle>();
  handle->thread_id = th->id();
  handle->thread = th;
  if (analysis::engine_enabled()) {
    // start edge: the child thread inherits the parent's history.
    analysis::Engine::instance().on_thread_start(parent.id(), th->id());
  }

  std::shared_ptr<Closure> closure = callee.as_closure();
  std::thread os_thread(
      [this, th, closure, args = std::move(args)]() mutable {
        thread_entry(th, closure, std::move(args));
      });
  os_thread.detach();
  return Value(std::move(handle));
}

void Vm::thread_entry(std::shared_ptr<InterpThread> th,
                      std::shared_ptr<Closure> closure,
                      std::vector<Value> args) {
  gil_.acquire(th->id());
  if (trace_enabled() && trace_fn_ && !th->suppress_trace) {
    fire_trace(*th, TraceKind::kThreadStart, closure->proto->line);
  }
  th->stack.push_back(Value(closure));
  for (Value& arg : args) th->stack.push_back(std::move(arg));
  auto push_err = push_frame(*th, closure, static_cast<int>(args.size()));

  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*th, 1);
  }
  if (trace_enabled() && trace_fn_ && !th->suppress_trace) {
    fire_trace(*th, TraceKind::kThreadEnd, 0);
  }
  gil_.release();

  // From here on the thread touches only `th` (shared): once mark_done
  // publishes, the joiner may finish the program and destroy this Vm
  // while this (detached) thread is still unwinding.
  unregister_thread(*th);
  if (std::holds_alternative<Value>(outcome)) {
    th->mark_done(std::get<Value>(std::move(outcome)));
  } else {
    VmError err = std::get<VmError>(std::move(outcome));
    if (err.kind == VmErrorKind::kRuntime) {
      DLOG_DEBUG("vm") << "thread " << th->id()
                       << " died with: " << err.message;
    }
    th->mark_failed(std::move(err));
  }
}

void Vm::unregister_thread(InterpThread& th) {
  std::unique_lock lock(sched_mutex_);
  retired_statements_ += th.stmt_count;
  th.state = ThreadState::kDead;
  threads_.erase(th.id());
  // A thread's death can complete a deadlock (its peers may all be
  // blocked waiting on something only it could have provided).
  check_deadlock_locked(lock);
}

std::shared_ptr<InterpThread> Vm::find_thread(std::int64_t tid) {
  std::scoped_lock lock(sched_mutex_);
  auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : it->second;
}

int Vm::live_thread_count() {
  std::scoped_lock lock(sched_mutex_);
  int count = 0;
  for (const auto& [id, th] : threads_) {
    if (th->state != ThreadState::kDead) ++count;
  }
  return count;
}

// ------------------------------------------------------------- inspection

std::vector<ThreadInfo> Vm::list_threads() {
  GilHold gil(gil_);
  std::scoped_lock lock(sched_mutex_);
  std::vector<ThreadInfo> out;
  out.reserve(threads_.size());
  for (const auto& [id, th] : threads_) {
    ThreadInfo info;
    info.id = th->id();
    info.name = th->name();
    info.state = th->state;
    info.block_note = th->block_note;
    info.frame_depth = static_cast<int>(th->frames.size());
    if (!th->frames.empty()) {
      const InterpThread::Frame& fr = th->frames.back();
      info.file = fr.closure->proto->file;
      info.line = fr.line;
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadInfo& a, const ThreadInfo& b) { return a.id < b.id; });
  return out;
}

std::vector<FrameInfo> Vm::thread_frames(std::int64_t tid) {
  GilHold gil(gil_);
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) return {};
    th = it->second;
  }
  std::vector<FrameInfo> out;
  for (size_t i = th->frames.size(); i-- > 0;) {
    const InterpThread::Frame& fr = th->frames[i];
    const FunctionProto& proto = *fr.closure->proto;
    out.push_back(FrameInfo{
        proto.name.empty() ? "<lambda>" : proto.name, proto.file, fr.line});
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Vm::frame_locals(
    std::int64_t tid, int depth) {
  GilHold gil(gil_);
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) return {};
    th = it->second;
  }
  if (depth < 0 || static_cast<size_t>(depth) >= th->frames.size()) return {};
  const InterpThread::Frame& fr =
      th->frames[th->frames.size() - 1 - static_cast<size_t>(depth)];
  const FunctionProto& proto = *fr.closure->proto;
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i < proto.local_names.size(); ++i) {
    const std::string& name = proto.local_names[i];
    if (!name.empty() && name[0] == '$') continue;  // hidden iterator slots
    if (fr.base + i >= th->stack.size()) break;
    out.emplace_back(name, th->stack[fr.base + i].repr());
  }
  // Captured variables are part of the visible scope too.
  for (size_t i = 0; i < proto.capture_names.size(); ++i) {
    out.emplace_back(proto.capture_names[i], fr.closure->captures[i].repr());
  }
  return out;
}

Result<std::string> Vm::eval_in_frame(std::int64_t tid, int depth,
                                      const std::string& expression) {
  if (expression.find('\n') != std::string::npos) {
    return Error(ErrorCode::kInvalidArgument,
                 "eval takes a single expression");
  }
  GilHold gil(gil_);  // target thread cannot be mid-statement under us

  std::shared_ptr<InterpThread> target;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) {
      return Error(ErrorCode::kNotFound,
                   "no such thread: " + std::to_string(tid));
    }
    target = it->second;
  }
  if (depth < 0 || static_cast<size_t>(depth) >= target->frames.size()) {
    return Error(ErrorCode::kInvalidArgument, "no such frame");
  }
  const InterpThread::Frame& fr =
      target->frames[target->frames.size() - 1 - static_cast<size_t>(depth)];
  const FunctionProto& proto = *fr.closure->proto;

  // Compile `fn __eval(<frame names>) return (<expr>) end`; the frame's
  // locals and captures become parameters (by value — heap objects
  // still alias), anything else resolves as a global at run time.
  std::vector<std::string> names;
  std::vector<Value> values;
  for (size_t i = 0; i < proto.local_names.size(); ++i) {
    const std::string& name = proto.local_names[i];
    if (name.empty() || name[0] == '$') continue;  // hidden iterator slots
    if (fr.base + i >= target->stack.size()) break;
    names.push_back(name);
    values.push_back(target->stack[fr.base + i]);
  }
  for (size_t i = 0; i < proto.capture_names.size(); ++i) {
    names.push_back(proto.capture_names[i]);
    values.push_back(fr.closure->captures[i]);
  }
  std::string source = "fn __eval(" + strings::join(names, ", ") +
                       ")\n  return (" + expression + ")\nend";
  auto compiled = compile_source(source, "<eval>");
  if (!compiled.is_ok()) return compiled.error();
  std::shared_ptr<Closure> eval_closure;
  for (const Value& constant : compiled.value()->chunk.constants()) {
    if (constant.is_closure()) {
      eval_closure = std::make_shared<Closure>(*constant.as_closure());
    }
  }
  DIONEA_CHECK(eval_closure != nullptr, "eval closure missing");

  // Run it on an ephemeral interpreter thread. It executes under the
  // GIL we already hold; any blocking it performs releases/reacquires
  // that hold in a balanced way.
  std::shared_ptr<InterpThread> eval_th;
  {
    std::scoped_lock lock(sched_mutex_);
    std::int64_t id = ++next_thread_id_;
    eval_th = std::make_shared<InterpThread>(
        id, strings::format("eval-%lld", static_cast<long long>(id)));
    eval_th->suppress_trace = true;
    threads_[id] = eval_th;
  }
  eval_th->stack.push_back(Value(eval_closure));
  for (Value& value : values) eval_th->stack.push_back(value);
  auto push_err =
      push_frame(*eval_th, eval_closure, static_cast<int>(values.size()));
  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*eval_th, 1);
  }
  {
    std::scoped_lock lock(sched_mutex_);
    retired_statements_ += eval_th->stmt_count;
    eval_th->state = ThreadState::kDead;
    threads_.erase(eval_th->id());
  }
  if (std::holds_alternative<VmError>(outcome)) {
    const VmError& err = std::get<VmError>(outcome);
    return Error(ErrorCode::kInvalidArgument, err.message);
  }
  return std::get<Value>(outcome).repr();
}

std::vector<std::pair<std::string, std::string>> Vm::globals_snapshot() {
  GilHold gil(gil_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, value] : globals_) {
    if (value.is_native()) continue;  // builtins would drown the view
    out.emplace_back(name, value.repr());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------ fork

int Vm::add_fork_handlers(ForkHooks hooks) {
  fork_hooks_.push_back(std::move(hooks));
  return static_cast<int>(fork_hooks_.size() - 1);
}

void Vm::internal_fork_prepare(InterpThread& th) {
  fork_sched_lock_ = std::unique_lock(sched_mutex_);
  fork_done_lock_ = std::unique_lock(th.done_mutex);
  fork_park_lock_ = std::unique_lock(th.park_mutex);
  // Pin every live sync object, in registration order (a total order,
  // so this cannot deadlock against another fork — forks are serialized
  // by the GIL anyway).
  fork_pinned_.clear();
  std::vector<std::weak_ptr<SyncObject>> still_alive;
  for (auto& weak : sync_objects_) {
    if (auto obj = weak.lock()) {
      fork_pinned_.push_back(obj);
      still_alive.push_back(weak);
    }
  }
  sync_objects_ = std::move(still_alive);  // drop expired entries
  for (auto& obj : fork_pinned_) obj->lock_for_fork();
  gil_.prepare_fork();
  // Pinned last / released first: both engine mutexes are leaves.
  analysis::Engine::instance().prepare_fork();
  replay::Engine::instance().prepare_fork();
}

void Vm::internal_fork_parent() {
  replay::Engine::instance().parent_atfork();
  analysis::Engine::instance().parent_atfork();
  gil_.parent_atfork();
  for (size_t i = fork_pinned_.size(); i-- > 0;) {
    fork_pinned_[i]->unlock_after_fork();
  }
  fork_pinned_.clear();
  fork_park_lock_.unlock();
  fork_park_lock_ = {};
  fork_done_lock_.unlock();
  fork_done_lock_ = {};
  fork_sched_lock_.unlock();
  fork_sched_lock_ = {};
}

void Vm::internal_fork_child(InterpThread& th) {
  forked_child_ = true;
  ++fork_depth_;
  analysis::Engine::instance().child_atfork();
  gil_.child_atfork(th.id());
  for (auto& obj : fork_pinned_) obj->reinit_in_child(th.id());
  fork_pinned_.clear();

  // Listing 1/2 analog: only the forking thread survives. The other
  // InterpThread objects are parked in a graveyard instead of being
  // destroyed — their mutexes/cvs may hold state from threads that
  // existed only in the parent, and destroying such primitives is UB.
  auto self = threads_.at(th.id());
  for (auto& [id, dead] : threads_) {
    if (dead.get() == &th) continue;
    dead->state = ThreadState::kDead;
    fork_graveyard_.push_back(dead);
  }
  threads_.clear();
  threads_[th.id()] = self;
  main_thread_id_.store(th.id(), std::memory_order_relaxed);
  th.state = ThreadState::kRunnable;
  th.interrupt.store(InterruptReason::kNone, std::memory_order_relaxed);
  deadlock_reported_ = false;

  // We locked these ourselves in prepare; same thread, so plain
  // unlocks are well-defined in the child.
  fork_park_lock_.unlock();
  fork_park_lock_ = {};
  fork_done_lock_.unlock();
  fork_done_lock_ = {};
  fork_sched_lock_.unlock();
  fork_sched_lock_ = {};
}

Result<int> Vm::fork_now(InterpThread& th) {
  DIONEA_CHECK(gil_.held_by(th.id()), "fork_now requires the GIL");
  // Logged (or matched against the log) while the GIL still serializes
  // us — the child id is what names the child's own replay log.
  replay::Engine& rep = replay::Engine::instance();
  const std::uint64_t logical = rep.on_fork(th.id());
  // Flush stdio so the child doesn't inherit (and later re-emit)
  // buffered output written before the fork.
  std::fflush(nullptr);
  // pthread_atfork ordering: prepare handlers run newest-first, the
  // VM's own (implicitly oldest) last; parent/child run oldest-first.
  for (size_t i = fork_hooks_.size(); i-- > 0;) {
    if (fork_hooks_[i].prepare) fork_hooks_[i].prepare(*this);
  }
  internal_fork_prepare(th);

  pid_t pid = ::fork();
  if (pid < 0) {
    int saved = errno;
    internal_fork_parent();
    for (auto& hooks : fork_hooks_) {
      if (hooks.parent) hooks.parent(*this, -1);
    }
    return errno_error("fork", saved);
  }
  if (pid == 0) {
    rep.child_atfork(logical);
    internal_fork_child(th);
    for (auto& hooks : fork_hooks_) {
      if (hooks.child) hooks.child(*this, 0);
    }
    return 0;
  }
  internal_fork_parent();
  rep.record_fork_pid(th.id(), static_cast<int>(pid));
  for (auto& hooks : fork_hooks_) {
    if (hooks.parent) hooks.parent(*this, static_cast<int>(pid));
  }
  return static_cast<int>(pid);
}

// ------------------------------------------------------------------- run

RunResult Vm::run_source(std::string_view source, const std::string& file) {
  auto proto = compile_source(source, file);
  if (!proto.is_ok()) {
    RunResult result;
    result.ok = false;
    result.error.kind = VmErrorKind::kRuntime;
    result.error.message = proto.error().message();
    return result;
  }
  return run_main(std::move(proto).value());
}

RunResult Vm::run_main(std::shared_ptr<const FunctionProto> proto) {
  {
    // Published for the debug server's `analysis-report` command (the
    // console `lint` verb re-lints the running program on demand).
    std::scoped_lock lock(program_mutex_);
    current_program_ = proto;
  }
  // Post-compile, pre-exec static lint (DIONEA_LINT=1): report and
  // continue — the lint predicts hazards, it does not block the run.
  const char* lint_env = std::getenv("DIONEA_LINT");
  if (lint_env != nullptr && lint_env[0] != '\0' &&
      std::string_view(lint_env) != "0") {
    analysis::Report lint = analysis::lint_program(*proto);
    for (const analysis::Finding& finding : lint.findings) {
      std::string text = "dionea-lint: " + finding.to_string() + "\n";
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    analysis::Engine::instance().set_lint_report(std::move(lint));
  }
  auto main_th = std::make_shared<InterpThread>(1, "main");
  {
    std::scoped_lock lock(sched_mutex_);
    DIONEA_CHECK(threads_.empty(), "run_main on a VM that is already running");
    threads_[1] = main_th;
    if (next_thread_id_ < 1) next_thread_id_ = 1;
  }
  auto closure = std::make_shared<Closure>(Closure{proto, {}});

  gil_.acquire(1);
  if (trace_enabled() && trace_fn_ && !main_th->suppress_trace) {
    fire_trace(*main_th, TraceKind::kThreadStart, 0);
  }
  main_th->stack.push_back(Value(closure));
  auto push_err = push_frame(*main_th, closure, 0);
  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*main_th, 1);
  }
  if (trace_enabled() && trace_fn_ && !main_th->suppress_trace) {
    fire_trace(*main_th, TraceKind::kThreadEnd, 0);
  }
  gil_.release();

  unregister_thread(*main_th);
  shutdown_threads();

  RunResult result;
  if (std::holds_alternative<Value>(outcome)) {
    result.ok = true;
    result.value = std::get<Value>(std::move(outcome));
    main_th->mark_done(result.value);
    if (exit_pending_.load(std::memory_order_relaxed)) {
      result.exited = true;
      result.exit_code = exit_code_.load(std::memory_order_relaxed);
    }
    return result;
  }
  VmError err = std::get<VmError>(std::move(outcome));
  main_th->mark_failed(err);
  if (err.kind == VmErrorKind::kExit ||
      (err.kind == VmErrorKind::kThreadKill &&
       exit_pending_.load(std::memory_order_relaxed))) {
    result.ok = true;
    result.exited = true;
    result.exit_code = err.kind == VmErrorKind::kExit
                           ? err.exit_code
                           : exit_code_.load(std::memory_order_relaxed);
    return result;
  }
  result.ok = false;
  result.error = std::move(err);
  return result;
}

void Vm::shutdown_threads() {
  // Ruby semantics: when the main thread exits, remaining threads are
  // killed at their next safepoint / interruptible wait.
  Stopwatch watch;
  bool warned = false;
  while (true) {
    {
      std::scoped_lock lock(sched_mutex_);
      bool any = false;
      for (auto& [id, th] : threads_) {
        if (th->state == ThreadState::kDead) continue;
        any = true;
        th->interrupt.store(InterruptReason::kKill,
                            std::memory_order_relaxed);
        th->park_cv.notify_all();
      }
      if (!any) return;
    }
    if (watch.elapsed_seconds() > 30.0 && !warned) {
      warned = true;
      DLOG_ERROR("vm") << "threads did not exit within 30s of shutdown";
    }
    sleep_for_millis(5);
  }
}

}  // namespace dionea::vm
