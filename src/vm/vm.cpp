#include "vm/vm.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/forkaudit.hpp"
#include "analysis/forklint.hpp"
#include "replay/replay.hpp"
#include "support/crash_report.hpp"
#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/timing.hpp"
#include "vm/builtins.hpp"
#include "vm/compiler.hpp"
#include "vm/verifier.hpp"

namespace dionea::vm {

namespace {
constexpr size_t kMaxFrames = 256;  // "stack level too deep"
}  // namespace

const char* trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kCall: return "call";
    case TraceKind::kLine: return "line";
    case TraceKind::kReturn: return "return";
    case TraceKind::kThreadStart: return "thread_start";
    case TraceKind::kThreadEnd: return "thread_end";
  }
  return "?";
}

namespace {

// ForkLint audit contract for the primitives whose fork pinning the VM
// drives (DESIGN.md fork-handler contract table). The replay engine
// and fault injector are registered here, on their pinning driver's
// side, so dionea_replay/dionea_support never link against
// dionea_analysis. Once per process; re-tracking is idempotent.
void register_vm_fork_contract() {
  static const bool once = [] {
    using analysis::forkaudit::Registry;
    using analysis::forkaudit::Spec;
    Registry& registry = Registry::instance();
    registry.track(Spec{.name = "vm.scheduler",
                        .subsystem = "vm",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true,
                        .pinned_before = {"vm.sync_objects"}});
    registry.track(Spec{.name = "vm.sync_objects",
                        .subsystem = "vm",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true,
                        .pinned_before = {"vm.gil"}});
    registry.track(Spec{.name = "vm.gil",
                        .subsystem = "vm",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true,
                        .pinned_before = {"analysis.engine"}});
    // Caches are not pinned across the fork; the contract is child-side
    // repair only (the box64 001/004 fixes).
    registry.track(Spec{.name = "vm.code_cache",
                        .subsystem = "vm",
                        .needs_prepare = false,
                        .needs_parent = false,
                        .has_child = true});
    registry.track(Spec{.name = "replay.engine",
                        .subsystem = "replay",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true,
                        .pinned_before = {"support.fault"}});
    // fault::Injector pins itself via pthread_atfork (a leaf lock, so
    // it sits at the end of the declared order).
    registry.track(Spec{.name = "support.fault",
                        .subsystem = "support",
                        .has_prepare = true,
                        .has_parent = true,
                        .has_child = true});
    return true;
  }();
  (void)once;
}

}  // namespace

Vm::Vm() {
  // Before any sync object exists, so creation-order replay ids line
  // up between a recording process and a replaying one.
  replay::Engine::init_from_env();
  analysis::Engine::init_from_env();
  register_vm_fork_contract();
  // Build-time default backend (CMake -DDIONEA_DISPATCH=...), runtime
  // override via env for A/B runs without a rebuild.
#if defined(DIONEA_DISPATCH_DEFAULT_GOTO) && DIONEA_DISPATCH_DEFAULT_GOTO
  set_dispatch_mode(DispatchMode::kGoto);
#endif
  if (const char* env = std::getenv("DIONEA_DISPATCH")) {
    if (std::string_view(env) == "goto") {
      set_dispatch_mode(DispatchMode::kGoto);
    } else if (std::string_view(env) == "switch") {
      set_dispatch_mode(DispatchMode::kSwitch);
    }
  }
  if (const char* env = std::getenv("DIONEA_QUICKEN")) {
    quicken_enabled_ = !(env[0] == '0' && env[1] == '\0');
  }
  output_ = [](std::string_view text) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
  };
  install_core_builtins(*this);
}

Vm::~Vm() = default;

void Vm::install_builtins() { install_core_builtins(*this); }

// --------------------------------------------------------------- globals

GlobalSlot* Vm::find_global_slot(std::string_view name) noexcept {
  auto it = global_index_.find(name);
  return it == global_index_.end() ? nullptr : &global_slots_[it->second];
}

const GlobalSlot* Vm::find_global_slot(std::string_view name) const noexcept {
  auto it = global_index_.find(name);
  return it == global_index_.end() ? nullptr : &global_slots_[it->second];
}

GlobalSlot& Vm::intern_global_slot(std::string_view name) {
  auto it = global_index_.find(name);
  if (it != global_index_.end()) return global_slots_[it->second];
  const auto index = static_cast<std::uint32_t>(global_slots_.size());
  GlobalSlot& slot = global_slots_.emplace_back();
  slot.name.assign(name);
  // Key views into the slot's own name string: the deque never moves
  // elements and the name is never mutated, so the view stays valid.
  global_index_.emplace(std::string_view(slot.name), index);
  return slot;
}

void Vm::define_native(
    const std::string& name, int min_arity, int max_arity,
    std::function<NativeResult(Vm&, InterpThread&, std::vector<Value>&)> fn) {
  auto native = std::make_shared<NativeFn>();
  native->name = name;
  native->min_arity = min_arity;
  native->max_arity = max_arity;
  native->fn = std::move(fn);
  intern_global_slot(name).value = Value(std::move(native));
}

void Vm::set_global(const std::string& name, Value value) {
  intern_global_slot(name).value = std::move(value);
}

Value Vm::get_global(const std::string& name) const {
  const GlobalSlot* slot = find_global_slot(name);
  return slot == nullptr ? Value() : slot->value;
}

void Vm::set_trace_fn(TraceFn fn) {
  // Publish the callback before flipping the gate bit so an armed
  // reader always finds a non-null fn.
  trace_fn_.store(std::make_shared<const TraceFn>(std::move(fn)),
                  std::memory_order_release);
  line_gate_.fetch_or(kGateFnBit, std::memory_order_release);
}

void Vm::clear_trace_fn() {
  // Drop the gate bits first; a racing thread that already saw "armed"
  // holds the callback alive through its shared_ptr load.
  line_gate_.fetch_and(~(kGateFnBit | kGateEnabledBit),
                       std::memory_order_relaxed);
  trace_fn_.store(nullptr, std::memory_order_release);
}

void Vm::set_output(std::function<void(std::string_view)> sink) {
  output_ = std::move(sink);
}

void Vm::write_output(std::string_view text) {
  if (output_) output_(text);
}

void Vm::set_deadlock_hook(DeadlockHook hook) {
  std::scoped_lock lock(sched_mutex_);
  deadlock_hook_ = std::move(hook);
}

void Vm::set_at_exit_hook(std::function<void(Vm&)> hook) {
  at_exit_hook_ = std::move(hook);
}

void Vm::run_at_exit_hook() {
  if (at_exit_hook_) at_exit_hook_(*this);
}

void Vm::register_sync_object(std::shared_ptr<SyncObject> object) {
  std::scoped_lock lock(sched_mutex_);
  sync_objects_.push_back(object);
}

std::vector<std::shared_ptr<SyncObject>> Vm::sync_objects_snapshot() {
  std::scoped_lock lock(sched_mutex_);
  std::vector<std::shared_ptr<SyncObject>> out;
  for (auto& weak : sync_objects_) {
    if (auto obj = weak.lock()) out.push_back(std::move(obj));
  }
  return out;
}

void Vm::crash_dump(crash::Writer& w) noexcept {
  w.str("gil-owner: ");
  w.dec(gil_.owner_relaxed());
  w.nl();
  w.str("fork-depth: ");
  w.dec(fork_depth_);
  w.nl();
  // threads_ and each frames vector are read WITHOUT sched_mutex_ or
  // the GIL: the crashing thread may hold either. Hard caps bound the
  // walk; anything torn mid-mutation at worst faults into the
  // handler's re-entry guard.
  size_t listed = 0;
  for (const auto& [id, th] : threads_) {
    if (th == nullptr) continue;
    if (++listed > 128) {
      w.str("... more threads (truncated)\n");
      break;
    }
    w.str("thread ");
    w.dec(id);
    w.str(" name=");
    w.str(th->name().c_str());
    w.str(" state=");
    w.str(thread_state_name(th->state));
    if (!th->block_note.empty()) {
      w.str(" block=");
      w.str(th->block_note.c_str());
    }
    w.nl();
    size_t depth = th->frames.size();
    if (depth > kMaxFrames) depth = kMaxFrames;
    for (size_t i = depth; i-- > 0;) {
      const InterpThread::Frame& fr = th->frames[i];
      w.str("  #");
      w.udec(depth - 1 - i);  // innermost frame is #0
      w.str(" ");
      const Closure* closure = fr.closure.get();
      const FunctionProto* proto =
          closure != nullptr ? closure->proto.get() : nullptr;
      if (proto != nullptr) {
        w.str(proto->name.empty() ? "<lambda>" : proto->name.c_str());
        w.str(" ");
        w.str(proto->file.c_str());
        w.str(":");
        w.dec(fr.line);
      } else {
        w.str("<unknown>");
      }
      w.nl();
    }
  }
  size_t objects = 0;
  for (const auto& weak : sync_objects_) {
    auto obj = weak.lock();  // lock-free refcount bump, AS-safe enough
    if (obj == nullptr) continue;
    if (++objects > 256) {
      w.str("... more sync objects (truncated)\n");
      break;
    }
    obj->crash_describe(w);
  }
}

void Vm::request_exit(int code) {
  exit_code_.store(code, std::memory_order_relaxed);
  exit_pending_.store(true, std::memory_order_relaxed);
  std::scoped_lock lock(sched_mutex_);
  for (auto& [id, th] : threads_) {
    th->interrupt.store(InterruptReason::kKill, std::memory_order_relaxed);
  }
}

std::uint64_t Vm::statements_executed() {
  std::scoped_lock lock(sched_mutex_);
  std::uint64_t total = retired_statements_;
  for (const auto& [id, th] : threads_) total += th->stmt_count;
  return total;
}

// ---------------------------------------------------------------- errors

VmError Vm::runtime_error(InterpThread& th, std::string message,
                          VmErrorKind kind) {
  VmError err;
  err.kind = kind;
  err.message = std::move(message);
  for (size_t i = th.frames.size(); i-- > 0;) {
    const InterpThread::Frame& fr = th.frames[i];
    const FunctionProto& proto = *fr.closure->proto;
    std::string fn_name = proto.name.empty() ? "<lambda>" : proto.name;
    err.traceback.push_back(TracebackEntry{fn_name, proto.file, fr.line});
  }
  return err;
}

// ------------------------------------------------------------ BlockScope

Vm::BlockScope::BlockScope(Vm& vm, InterpThread& th, ThreadState state,
                           std::string note)
    : vm_(vm), th_(th) {
  // Release the GIL first so that the deadlock hook (and any other
  // thread) may take it while we are parked.
  vm_.gil_.release();
  vm_.set_thread_state(th_, state, std::move(note));
}

Vm::BlockScope::~BlockScope() {
  vm_.set_thread_state(th_, ThreadState::kRunnable, {});
  vm_.gil_.acquire(th_.id());
}

void Vm::set_thread_state(InterpThread& th, ThreadState state,
                          std::string note) {
  std::unique_lock lock(sched_mutex_);
  th.state = state;
  ++th.block_epoch;
  th.block_note = std::move(note);
  if (!th.frames.empty()) {
    const InterpThread::Frame& fr = th.frames.back();
    th.block_file = fr.closure->proto->file;
    th.block_line = fr.line;
  }
  if (state == ThreadState::kBlockedForever) {
    check_deadlock_locked(lock);
  } else if (deadlock_candidate_active_.load(std::memory_order_relaxed)) {
    // A thread progressed: whatever candidate existed is stale.
    deadlock_candidate_.clear();
    deadlock_candidate_active_.store(false, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Vm::blocked_snapshot_locked(bool* all_blocked_forever) const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> snapshot;
  int alive = 0;
  int forever = 0;
  bool parked_or_waking = false;
  for (const auto& [id, th] : threads_) {
    switch (th->state) {
      case ThreadState::kDead:
        break;
      case ThreadState::kDebugParked:
        // A suspended thread can be resumed by the client; nothing is
        // provably stuck while one exists.
        parked_or_waking = true;
        ++alive;
        break;
      case ThreadState::kBlockedForever:
        // A thread parked at a replay gate is waiting for its recorded
        // turn, not for the program — the replay engine's own stall
        // timeout covers it. Without this, forcing an interleaving
        // would trip the deadlock detector on schedules that are
        // merely *paused*, not stuck. Genuinely deadlocked threads are
        // not gated (their wait predicate fails before it consults the
        // engine), so real detection is unaffected.
        if (replay::Engine::instance().gated(th->id())) {
          parked_or_waking = true;
          ++alive;
          break;
        }
        ++alive;
        ++forever;
        snapshot.emplace_back(th->id(), th->block_epoch);
        break;
      case ThreadState::kBlockedTimed:
      case ThreadState::kIoBlocked:
        parked_or_waking = true;
        ++alive;
        break;
      case ThreadState::kRunnable:
        ++alive;
        break;
    }
  }
  *all_blocked_forever = alive > 0 && !parked_or_waking && forever == alive;
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

void Vm::check_deadlock_locked(std::unique_lock<std::mutex>& /*sched_lock*/) {
  if (deadlock_reported_) return;
  bool all_blocked = false;
  auto snapshot = blocked_snapshot_locked(&all_blocked);
  if (!all_blocked) {
    deadlock_candidate_.clear();
    deadlock_candidate_active_.store(false, std::memory_order_relaxed);
    return;
  }
  if (snapshot != deadlock_candidate_) {
    // New (or changed) candidate: arm the grace timer; the blocked
    // threads' wait ticks will confirm it via deadlock_tick().
    deadlock_candidate_ = std::move(snapshot);
    deadlock_candidate_since_ = mono_seconds();
    deadlock_candidate_active_.store(true, std::memory_order_relaxed);
  }
}

void Vm::deadlock_tick() {
  std::unique_lock lock(sched_mutex_);
  if (deadlock_reported_ || deadlock_candidate_.empty()) return;
  bool all_blocked = false;
  auto snapshot = blocked_snapshot_locked(&all_blocked);
  if (!all_blocked || snapshot != deadlock_candidate_) {
    // Something moved since the candidate was formed — either the
    // system made progress (drop it) or it re-froze in a new shape
    // (restart the grace period on the new snapshot).
    if (all_blocked) {
      deadlock_candidate_ = std::move(snapshot);
      deadlock_candidate_since_ = mono_seconds();
    } else {
      deadlock_candidate_.clear();
      deadlock_candidate_active_.store(false, std::memory_order_relaxed);
    }
    return;
  }
  if ((mono_seconds() - deadlock_candidate_since_) * 1000.0 <
      kDeadlockGraceMillis) {
    return;  // not confirmed yet
  }
  fire_deadlock_locked(lock);
}

void Vm::fire_deadlock_locked(std::unique_lock<std::mutex>& sched_lock) {
  // Every live thread has been blocked on a VM object, with no timeout
  // and no external waker, for the whole grace period: the Ruby
  // `deadlock detected (fatal)` condition.
  deadlock_reported_ = true;
  deadlock_candidate_.clear();
  deadlock_candidate_active_.store(false, std::memory_order_relaxed);
  std::vector<DeadlockInfo> infos;
  infos.reserve(threads_.size());
  for (const auto& [id, th] : threads_) {
    if (th->state != ThreadState::kBlockedForever) continue;
    infos.push_back(DeadlockInfo{th->id(), th->name(), th->block_file,
                                 th->block_line, th->block_note});
  }
  DeadlockHook hook = deadlock_hook_;
  if (hook) {
    // CP.22: never call unknown code while holding a lock.
    sched_lock.unlock();
    bool handled = hook(*this, infos);
    sched_lock.lock();
    if (handled) return;  // debugger owns it; threads stay suspended
  }
  DLOG_INFO("vm") << "deadlock detected across " << infos.size()
                  << " thread(s)";
  for (auto& [id, th] : threads_) {
    if (th->state == ThreadState::kDead) continue;
    th->interrupt.store(InterruptReason::kDeadlock,
                        std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- frames

CodeCache* Vm::ensure_code_cache(std::shared_ptr<const FunctionProto> proto,
                                 std::string* error) {
  auto it = code_caches_.find(proto.get());
  if (it != code_caches_.end()) return it->second.get();
  Status verified = verify_chunk(*proto);
  if (!verified.is_ok()) {
    *error = verified.error().message();
    return nullptr;
  }
  auto cache = std::make_unique<CodeCache>();
  build_code_cache(*proto, quicken_enabled_, *cache);
  // Snapshot with the enabled bit masked off: if tracing is armed
  // right now, the first quickened trace-line site mismatches and
  // takes the slow (firing) path immediately.
  cache->gate_snapshot =
      line_gate_.load(std::memory_order_relaxed) & ~kGateEnabledBit;
  const FunctionProto* key = proto.get();
  cache->proto = std::move(proto);
  CodeCache* raw = cache.get();
  code_caches_.emplace(key, std::move(cache));
  return raw;
}

std::optional<VmError> Vm::push_frame(InterpThread& th,
                                      std::shared_ptr<Closure> closure,
                                      int argc) {
  const FunctionProto& proto = *closure->proto;
  if (argc != proto.arity) {
    return runtime_error(
        th, strings::format("wrong number of arguments for %s (given %d, "
                            "expected %d)",
                            proto.name.empty() ? "<lambda>" : proto.name.c_str(),
                            argc, proto.arity));
  }
  if (th.frames.size() >= kMaxFrames) {
    return runtime_error(th, "stack level too deep");
  }
  std::string cache_error;
  CodeCache* cache = ensure_code_cache(closure->proto, &cache_error);
  if (cache == nullptr) {
    return runtime_error(th, std::move(cache_error));
  }
  InterpThread::Frame frame;
  frame.closure = std::move(closure);
  frame.cache = cache;
  frame.ip = 0;
  frame.base = th.stack.size() - static_cast<size_t>(argc);
  frame.line = proto.line;
  th.stack.resize(frame.base + proto.local_names.size());
  th.frames.push_back(std::move(frame));
  ++cache->in_use;
  if (trace_armed(th)) fire_trace(th, TraceKind::kCall, proto.line);
  return std::nullopt;
}

void Vm::pop_frame(InterpThread& th) noexcept {
  InterpThread::Frame& frame = th.frames.back();
  if (frame.cache != nullptr && frame.cache->in_use > 0) {
    --frame.cache->in_use;
  }
  const size_t base = frame.base;
  th.frames.pop_back();
  th.stack.resize(base > 0 ? base - 1 : 0);
}

void Vm::fire_trace(InterpThread& th, TraceKind kind, int line) {
  // The shared_ptr load (not a raw member read) is what makes a
  // concurrent clear_trace_fn safe: either we see null and bail, or we
  // hold the callback alive for the duration of the call.
  std::shared_ptr<const TraceFn> fn =
      trace_fn_.load(std::memory_order_acquire);
  if (fn == nullptr || !*fn) return;
  switch (kind) {
    case TraceKind::kLine:
      metrics::add(metrics::Counter::kTraceLineEvents);
      break;
    case TraceKind::kCall:
      metrics::add(metrics::Counter::kTraceCallEvents);
      break;
    case TraceKind::kReturn:
      metrics::add(metrics::Counter::kTraceReturnEvents);
      break;
    case TraceKind::kThreadStart:
    case TraceKind::kThreadEnd:
      metrics::add(metrics::Counter::kTraceThreadEvents);
      break;
  }
  // Dispatch latency is sampled 1-in-64: two clock reads per line
  // event would dwarf the dispatch being measured; at this rate the
  // histogram stays honest and the probe stays off the §7 overhead.
  thread_local unsigned sample_tick = 0;
  const bool sampled = metrics::Registry::instance().enabled() &&
                       (++sample_tick & 63u) == 0;
  const std::int64_t start = sampled ? mono_nanos() : 0;

  TraceEvent event;
  event.kind = kind;
  event.thread_id = th.id();
  event.line = line;
  event.frame_depth = static_cast<int>(th.frames.size());
  if (!th.frames.empty()) {
    const FunctionProto& proto = *th.frames.back().closure->proto;
    event.file = proto.file;
    event.function = proto.name.empty() ? std::string_view("<lambda>")
                                        : std::string_view(proto.name);
    // The proto outlives the run (pinned by the program/closures), so
    // its file string is a stable pointer for the crash report.
    crash::note_trace(proto.file.c_str(), line, th.id());
  }
  (*fn)(*this, th, event);

  if (sampled) {
    metrics::observe(metrics::Histogram::kTraceHookNanos,
                     static_cast<std::uint64_t>(mono_nanos() - start));
  }
}

// --------------------------------------------------------------- interpret
//
// The loop itself lives in dispatch.inc, compiled twice in
// dispatch.cpp (switch and computed-goto backends). This file keeps
// only the backend selector and the cold helpers the loop calls out
// to.

bool Vm::computed_goto_available() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return true;
#else
  return false;
#endif
}

void Vm::set_dispatch_mode(DispatchMode mode) noexcept {
  if (mode == DispatchMode::kGoto && !computed_goto_available()) {
    mode = DispatchMode::kSwitch;
  }
  dispatch_mode_ = mode;
}

std::variant<Value, VmError> Vm::interpret(InterpThread& th,
                                           size_t stop_depth) {
  if (dispatch_mode_ == DispatchMode::kGoto) {
    return interpret_goto(th, stop_depth);
  }
  return interpret_switch(th, stop_depth);
}

bool Vm::line_gate_sync(CodeCache& cache) noexcept {
  const std::uint64_t gate = line_gate_.load(std::memory_order_relaxed);
  cache.gate_snapshot = gate & ~kGateEnabledBit;
  return (gate & kGateArmedMask) == kGateArmedMask;
}

__attribute__((noinline)) VmError Vm::undefined_name_error(
    InterpThread& th, std::string_view name) {
  return runtime_error(th, "undefined name '" + std::string(name) + "'");
}

// ----------------------------------------------------------- code caches

std::size_t Vm::purge_code_caches() {
  std::size_t purged = 0;
  for (auto it = code_caches_.begin(); it != code_caches_.end();) {
    if (it->second->in_use == 0) {
      it = code_caches_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

CodeCacheStats Vm::code_cache_stats() const {
  CodeCacheStats stats;
  for (const auto& [proto, cache] : code_caches_) {
    ++stats.caches;
    if (cache->quickened) ++stats.quickened;
    stats.ic_sites += cache->ics.size();
    for (const GlobalIc& ic : cache->ics) {
      if (ic.slot != nullptr) ++stats.trained_ics;
    }
    stats.total_in_use += cache->in_use;
  }
  return stats;
}

const CodeCache* Vm::find_code_cache(const FunctionProto* proto) const {
  auto it = code_caches_.find(proto);
  return it == code_caches_.end() ? nullptr : it->second.get();
}

std::size_t Vm::repair_cache_pins() {
  std::vector<std::pair<CodeCache*, std::uint32_t>> before;
  before.reserve(code_caches_.size());
  for (auto& [proto, cache] : code_caches_) {
    before.emplace_back(cache.get(), cache->in_use);
    cache->in_use = 0;
  }
  for (auto& [id, th] : threads_) {
    for (const InterpThread::Frame& frame : th->frames) {
      if (frame.cache != nullptr) ++frame.cache->in_use;
    }
  }
  std::size_t wrong = 0;
  for (const auto& [cache, old_count] : before) {
    if (cache->in_use != old_count) ++wrong;
  }
  return wrong;
}

// ---------------------------------------------------------------- calling

std::variant<Value, VmError> Vm::call_value(InterpThread& th, Value callee,
                                            std::vector<Value> args) {
  if (callee.is_native()) {
    const NativeFn& native = *callee.as_native();
    int argc = static_cast<int>(args.size());
    if (argc < native.min_arity ||
        (native.max_arity >= 0 && argc > native.max_arity)) {
      return runtime_error(
          th, strings::format("wrong number of arguments for %s",
                              native.name.c_str()));
    }
    NativeResult result = native.fn(*this, th, args);
    if (std::holds_alternative<VmError>(result)) {
      return std::get<VmError>(std::move(result));
    }
    return std::get<Value>(std::move(result));
  }
  if (!callee.is_closure()) {
    return runtime_error(
        th, strings::format("%s is not callable", callee.type_name()));
  }
  size_t stop_depth = th.frames.size() + 1;
  th.stack.push_back(callee);
  for (Value& arg : args) th.stack.push_back(std::move(arg));
  auto err = push_frame(th, callee.as_closure(),
                        static_cast<int>(args.size()));
  if (err) {
    th.stack.resize(th.stack.size() - args.size() - 1);
    return std::move(*err);
  }
  return interpret(th, stop_depth);
}

// ---------------------------------------------------------------- threads

std::variant<Value, VmError> Vm::spawn_thread(InterpThread& parent,
                                              Value callee,
                                              std::vector<Value> args) {
  if (!callee.is_closure()) {
    return runtime_error(parent, "spawn expects a fn");
  }
  if (static_cast<int>(args.size()) != callee.as_closure()->proto->arity) {
    return runtime_error(parent, "spawn: argument count mismatch");
  }
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    std::int64_t id = ++next_thread_id_;
    th = std::make_shared<InterpThread>(
        id, strings::format("thread-%lld", static_cast<long long>(id)));
    threads_[id] = th;
  }
  auto handle = std::make_shared<ThreadHandle>();
  handle->thread_id = th->id();
  handle->thread = th;
  if (analysis::engine_enabled()) {
    // start edge: the child thread inherits the parent's history.
    analysis::Engine::instance().on_thread_start(parent.id(), th->id());
  }

  std::shared_ptr<Closure> closure = callee.as_closure();
  std::thread os_thread(
      [this, th, closure, args = std::move(args)]() mutable {
        thread_entry(th, closure, std::move(args));
      });
  os_thread.detach();
  return Value(std::move(handle));
}

void Vm::thread_entry(std::shared_ptr<InterpThread> th,
                      std::shared_ptr<Closure> closure,
                      std::vector<Value> args) {
  gil_.acquire(th->id());
  if (trace_armed(*th)) {
    fire_trace(*th, TraceKind::kThreadStart, closure->proto->line);
  }
  th->stack.push_back(Value(closure));
  for (Value& arg : args) th->stack.push_back(std::move(arg));
  auto push_err = push_frame(*th, closure, static_cast<int>(args.size()));

  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*th, 1);
  }
  if (trace_armed(*th)) {
    fire_trace(*th, TraceKind::kThreadEnd, 0);
  }
  gil_.release();

  // From here on the thread touches only `th` (shared): once mark_done
  // publishes, the joiner may finish the program and destroy this Vm
  // while this (detached) thread is still unwinding.
  unregister_thread(*th);
  if (std::holds_alternative<Value>(outcome)) {
    th->mark_done(std::get<Value>(std::move(outcome)));
  } else {
    VmError err = std::get<VmError>(std::move(outcome));
    if (err.kind == VmErrorKind::kRuntime) {
      DLOG_DEBUG("vm") << "thread " << th->id()
                       << " died with: " << err.message;
    }
    th->mark_failed(std::move(err));
  }
}

void Vm::unregister_thread(InterpThread& th) {
  std::unique_lock lock(sched_mutex_);
  retired_statements_ += th.stmt_count;
  th.state = ThreadState::kDead;
  threads_.erase(th.id());
  // A thread's death can complete a deadlock (its peers may all be
  // blocked waiting on something only it could have provided).
  check_deadlock_locked(lock);
}

std::shared_ptr<InterpThread> Vm::find_thread(std::int64_t tid) {
  std::scoped_lock lock(sched_mutex_);
  auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : it->second;
}

int Vm::live_thread_count() {
  std::scoped_lock lock(sched_mutex_);
  int count = 0;
  for (const auto& [id, th] : threads_) {
    if (th->state != ThreadState::kDead) ++count;
  }
  return count;
}

// ------------------------------------------------------------- inspection

std::vector<ThreadInfo> Vm::list_threads() {
  GilHold gil(gil_);
  std::scoped_lock lock(sched_mutex_);
  std::vector<ThreadInfo> out;
  out.reserve(threads_.size());
  for (const auto& [id, th] : threads_) {
    ThreadInfo info;
    info.id = th->id();
    info.name = th->name();
    info.state = th->state;
    info.block_note = th->block_note;
    info.frame_depth = static_cast<int>(th->frames.size());
    if (!th->frames.empty()) {
      const InterpThread::Frame& fr = th->frames.back();
      info.file = fr.closure->proto->file;
      info.line = fr.line;
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadInfo& a, const ThreadInfo& b) { return a.id < b.id; });
  return out;
}

std::vector<FrameInfo> Vm::thread_frames(std::int64_t tid) {
  GilHold gil(gil_);
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) return {};
    th = it->second;
  }
  std::vector<FrameInfo> out;
  for (size_t i = th->frames.size(); i-- > 0;) {
    const InterpThread::Frame& fr = th->frames[i];
    const FunctionProto& proto = *fr.closure->proto;
    out.push_back(FrameInfo{
        proto.name.empty() ? "<lambda>" : proto.name, proto.file, fr.line});
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Vm::frame_locals(
    std::int64_t tid, int depth) {
  GilHold gil(gil_);
  std::shared_ptr<InterpThread> th;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) return {};
    th = it->second;
  }
  if (depth < 0 || static_cast<size_t>(depth) >= th->frames.size()) return {};
  const InterpThread::Frame& fr =
      th->frames[th->frames.size() - 1 - static_cast<size_t>(depth)];
  const FunctionProto& proto = *fr.closure->proto;
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i < proto.local_names.size(); ++i) {
    const std::string& name = proto.local_names[i];
    if (!name.empty() && name[0] == '$') continue;  // hidden iterator slots
    if (fr.base + i >= th->stack.size()) break;
    out.emplace_back(name, th->stack[fr.base + i].repr());
  }
  // Captured variables are part of the visible scope too.
  for (size_t i = 0; i < proto.capture_names.size(); ++i) {
    out.emplace_back(proto.capture_names[i], fr.closure->captures[i].repr());
  }
  return out;
}

Result<std::string> Vm::eval_in_frame(std::int64_t tid, int depth,
                                      const std::string& expression) {
  if (expression.find('\n') != std::string::npos) {
    return Error(ErrorCode::kInvalidArgument,
                 "eval takes a single expression");
  }
  GilHold gil(gil_);  // target thread cannot be mid-statement under us

  std::shared_ptr<InterpThread> target;
  {
    std::scoped_lock lock(sched_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) {
      return Error(ErrorCode::kNotFound,
                   "no such thread: " + std::to_string(tid));
    }
    target = it->second;
  }
  if (depth < 0 || static_cast<size_t>(depth) >= target->frames.size()) {
    return Error(ErrorCode::kInvalidArgument, "no such frame");
  }
  const InterpThread::Frame& fr =
      target->frames[target->frames.size() - 1 - static_cast<size_t>(depth)];
  const FunctionProto& proto = *fr.closure->proto;

  // Compile `fn __eval(<frame names>) return (<expr>) end`; the frame's
  // locals and captures become parameters (by value — heap objects
  // still alias), anything else resolves as a global at run time.
  std::vector<std::string> names;
  std::vector<Value> values;
  for (size_t i = 0; i < proto.local_names.size(); ++i) {
    const std::string& name = proto.local_names[i];
    if (name.empty() || name[0] == '$') continue;  // hidden iterator slots
    if (fr.base + i >= target->stack.size()) break;
    names.push_back(name);
    values.push_back(target->stack[fr.base + i]);
  }
  for (size_t i = 0; i < proto.capture_names.size(); ++i) {
    names.push_back(proto.capture_names[i]);
    values.push_back(fr.closure->captures[i]);
  }
  std::string source = "fn __eval(" + strings::join(names, ", ") +
                       ")\n  return (" + expression + ")\nend";
  auto compiled = compile_source(source, "<eval>");
  if (!compiled.is_ok()) return compiled.error();

  // Debugger evals run from inside the trace callback, where fork()
  // would re-enter the handler stack mid-trace. ForkLint flags (but
  // does not block) expressions that can reach fork — §5.4's "no fork
  // in a hook" rule, checked statically before the expression runs.
  {
    std::shared_ptr<const FunctionProto> program = current_program();
    analysis::Report eval_report =
        analysis::forklint_eval(*compiled.value(), program.get());
    for (analysis::Finding& finding : eval_report.findings) {
      analysis::Engine::instance().add_forklint_finding(std::move(finding));
    }
  }

  std::shared_ptr<Closure> eval_closure;
  for (const Value& constant : compiled.value()->chunk.constants()) {
    if (constant.is_closure()) {
      eval_closure = std::make_shared<Closure>(*constant.as_closure());
    }
  }
  DIONEA_CHECK(eval_closure != nullptr, "eval closure missing");

  // Run it on an ephemeral interpreter thread. It executes under the
  // GIL we already hold; any blocking it performs releases/reacquires
  // that hold in a balanced way.
  std::shared_ptr<InterpThread> eval_th;
  {
    std::scoped_lock lock(sched_mutex_);
    std::int64_t id = ++next_thread_id_;
    eval_th = std::make_shared<InterpThread>(
        id, strings::format("eval-%lld", static_cast<long long>(id)));
    eval_th->suppress_trace = true;
    threads_[id] = eval_th;
  }
  eval_th->stack.push_back(Value(eval_closure));
  for (Value& value : values) eval_th->stack.push_back(value);
  auto push_err =
      push_frame(*eval_th, eval_closure, static_cast<int>(values.size()));
  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*eval_th, 1);
  }
  {
    std::scoped_lock lock(sched_mutex_);
    retired_statements_ += eval_th->stmt_count;
    eval_th->state = ThreadState::kDead;
    threads_.erase(eval_th->id());
  }
  // The eval proto is ephemeral; drop its cache entry (under the GIL we
  // still hold) so repeated evals don't accumulate dead caches.
  code_caches_.erase(eval_closure->proto.get());
  if (std::holds_alternative<VmError>(outcome)) {
    const VmError& err = std::get<VmError>(outcome);
    return Error(ErrorCode::kInvalidArgument, err.message);
  }
  return std::get<Value>(outcome).repr();
}

std::vector<std::pair<std::string, std::string>> Vm::globals_snapshot() {
  GilHold gil(gil_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const GlobalSlot& slot : global_slots_) {
    if (slot.value.is_native()) continue;  // builtins would drown the view
    out.emplace_back(slot.name, slot.value.repr());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------ fork

int Vm::add_fork_handlers(ForkHooks hooks) {
  fork_hooks_.push_back(std::move(hooks));
  return static_cast<int>(fork_hooks_.size() - 1);
}

void Vm::internal_fork_prepare(InterpThread& th) {
  auto& audit = analysis::forkaudit::Registry::instance();
  fork_sched_lock_ = std::unique_lock(sched_mutex_);
  fork_done_lock_ = std::unique_lock(th.done_mutex);
  fork_park_lock_ = std::unique_lock(th.park_mutex);
  audit.note_prepare("vm.scheduler");
  // Pin every live sync object, in registration order (a total order,
  // so this cannot deadlock against another fork — forks are serialized
  // by the GIL anyway).
  fork_pinned_.clear();
  std::vector<std::weak_ptr<SyncObject>> still_alive;
  for (auto& weak : sync_objects_) {
    if (auto obj = weak.lock()) {
      fork_pinned_.push_back(obj);
      still_alive.push_back(weak);
    }
  }
  sync_objects_ = std::move(still_alive);  // drop expired entries
  for (auto& obj : fork_pinned_) obj->lock_for_fork();
  audit.note_prepare("vm.sync_objects");
  gil_.prepare_fork();
  audit.note_prepare("vm.gil");
  // Pinned last / released first: both engine mutexes are leaves.
  analysis::Engine::instance().prepare_fork();
  replay::Engine::instance().prepare_fork();
  audit.note_prepare("replay.engine");
}

void Vm::internal_fork_parent() {
  auto& audit = analysis::forkaudit::Registry::instance();
  replay::Engine::instance().parent_atfork();
  audit.note_parent("replay.engine");
  analysis::Engine::instance().parent_atfork();
  gil_.parent_atfork();
  audit.note_parent("vm.gil");
  for (size_t i = fork_pinned_.size(); i-- > 0;) {
    fork_pinned_[i]->unlock_after_fork();
  }
  fork_pinned_.clear();
  audit.note_parent("vm.sync_objects");
  fork_park_lock_.unlock();
  fork_park_lock_ = {};
  fork_done_lock_.unlock();
  fork_done_lock_ = {};
  fork_sched_lock_.unlock();
  fork_sched_lock_ = {};
  audit.note_parent("vm.scheduler");
}

void Vm::internal_fork_child(InterpThread& th) {
  forked_child_ = true;
  ++fork_depth_;
  auto& audit = analysis::forkaudit::Registry::instance();
  // The replay engine's child handler ran in fork_now/fork_checkpoint,
  // immediately before this one.
  audit.note_child("replay.engine");
  analysis::Engine::instance().child_atfork();
  gil_.child_atfork(th.id());
  audit.note_child("vm.gil");
  for (auto& obj : fork_pinned_) obj->reinit_in_child(th.id());
  fork_pinned_.clear();
  audit.note_child("vm.sync_objects");

  // Listing 1/2 analog: only the forking thread survives. The other
  // InterpThread objects are parked in a graveyard instead of being
  // destroyed — their mutexes/cvs may hold state from threads that
  // existed only in the parent, and destroying such primitives is UB.
  auto self = threads_.at(th.id());
  for (auto& [id, dead] : threads_) {
    if (dead.get() == &th) continue;
    dead->state = ThreadState::kDead;
    fork_graveyard_.push_back(dead);
  }
  threads_.clear();
  threads_[th.id()] = self;
  main_thread_id_.store(th.id(), std::memory_order_relaxed);
  th.state = ThreadState::kRunnable;
  th.interrupt.store(InterruptReason::kNone, std::memory_order_relaxed);
  deadlock_reported_ = false;

  // Code-cache repair (the box64 001/004 failure modes): sibling
  // threads may have been mid-execution at the fork instant, so the
  // inherited cache state cannot be trusted.
  //
  //   004 — drop every trained IC target and bump the quicken
  //   generation; each quickened trace-line site resyncs its gate
  //   snapshot on its next statement instead of running on state
  //   half-written by a thread that no longer exists here.
  //
  //   001 — recompute every in_use counter from the surviving
  //   thread's real frames instead of trusting counts contributed by
  //   parent-only threads, which would pin dead caches forever.
  bump_quicken_generation();
  for (auto& [proto, cache] : code_caches_) cache->reset_ics();
  (void)repair_cache_pins();
  audit.note_child("vm.code_cache");

  // We locked these ourselves in prepare; same thread, so plain
  // unlocks are well-defined in the child.
  fork_park_lock_.unlock();
  fork_park_lock_ = {};
  fork_done_lock_.unlock();
  fork_done_lock_ = {};
  fork_sched_lock_.unlock();
  fork_sched_lock_ = {};
  audit.note_child("vm.scheduler");
}

Result<int> Vm::fork_now(InterpThread& th) {
  DIONEA_CHECK(gil_.held_by(th.id()), "fork_now requires the GIL");
  // Logged (or matched against the log) while the GIL still serializes
  // us — the child id is what names the child's own replay log.
  replay::Engine& rep = replay::Engine::instance();
  const std::uint64_t logical = rep.on_fork(th.id());
  // Flush stdio so the child doesn't inherit (and later re-emit)
  // buffered output written before the fork.
  std::fflush(nullptr);
  // pthread_atfork ordering: prepare handlers run newest-first, the
  // VM's own (implicitly oldest) last; parent/child run oldest-first.
  for (size_t i = fork_hooks_.size(); i-- > 0;) {
    if (fork_hooks_[i].prepare) fork_hooks_[i].prepare(*this);
  }
  internal_fork_prepare(th);

  pid_t pid = ::fork();
  if (pid < 0) {
    int saved = errno;
    internal_fork_parent();
    for (auto& hooks : fork_hooks_) {
      if (hooks.parent) hooks.parent(*this, -1);
    }
    return errno_error("fork", saved);
  }
  if (pid == 0) {
    rep.child_atfork(logical);
    internal_fork_child(th);
    for (auto& hooks : fork_hooks_) {
      if (hooks.child) hooks.child(*this, 0);
    }
    return 0;
  }
  internal_fork_parent();
  rep.record_fork_pid(th.id(), static_cast<int>(pid));
  for (auto& hooks : fork_hooks_) {
    if (hooks.parent) hooks.parent(*this, static_cast<int>(pid));
  }
  return static_cast<int>(pid);
}

Result<int> Vm::fork_checkpoint(InterpThread& th) {
  DIONEA_CHECK(gil_.held_by(th.id()), "fork_checkpoint requires the GIL");
  replay::Engine& rep = replay::Engine::instance();
  std::fflush(nullptr);
  for (size_t i = fork_hooks_.size(); i-- > 0;) {
    if (fork_hooks_[i].prepare) fork_hooks_[i].prepare(*this);
  }
  internal_fork_prepare(th);

  pid_t pid = ::fork();
  if (pid < 0) {
    int saved = errno;
    internal_fork_parent();
    for (auto& hooks : fork_hooks_) {
      if (hooks.parent) hooks.parent(*this, -1);
    }
    return errno_error("fork", saved);
  }
  if (pid == 0) {
    // Snapshot child: same replay log, same cursor — NOT a member of
    // the recorded fork tree (no kFork event was consumed or logged).
    rep.checkpoint_child_atfork();
    internal_fork_child(th);
    for (auto& hooks : fork_hooks_) {
      if (hooks.child) hooks.child(*this, 0);
    }
    return 0;
  }
  internal_fork_parent();
  for (auto& hooks : fork_hooks_) {
    if (hooks.parent) hooks.parent(*this, static_cast<int>(pid));
  }
  return static_cast<int>(pid);
}

// --------------------------------------------------- boundary hook (tt)

void Vm::set_boundary_hook(std::function<void(Vm&, InterpThread&)> hook) {
  std::scoped_lock lock(boundary_mutex_);
  boundary_hook_ = std::move(hook);
  boundary_armed_.store(static_cast<bool>(boundary_hook_),
                        std::memory_order_release);
}

void Vm::run_boundary_hook(InterpThread& th) {
  std::function<void(Vm&, InterpThread&)> hook;
  {
    std::scoped_lock lock(boundary_mutex_);
    hook = boundary_hook_;
  }
  // Invoked without boundary_mutex_: the hook may fork (taking every
  // fork-pinned lock) or park this thread indefinitely.
  if (hook) hook(*this, th);
}

// ------------------------------------------------------------------- run

RunResult Vm::run_source(std::string_view source, const std::string& file) {
  auto proto = compile_source(source, file);
  if (!proto.is_ok()) {
    RunResult result;
    result.ok = false;
    result.error.kind = VmErrorKind::kRuntime;
    result.error.message = proto.error().message();
    return result;
  }
  return run_main(std::move(proto).value());
}

RunResult Vm::run_main(std::shared_ptr<const FunctionProto> proto) {
  {
    // Published for the debug server's `analysis-report` command (the
    // console `lint` verb re-lints the running program on demand).
    std::scoped_lock lock(program_mutex_);
    current_program_ = proto;
  }
  // Post-compile, pre-exec static lint (DIONEA_LINT=1): report and
  // continue — the lint predicts hazards, it does not block the run.
  const char* lint_env = std::getenv("DIONEA_LINT");
  if (lint_env != nullptr && lint_env[0] != '\0' &&
      std::string_view(lint_env) != "0") {
    analysis::Report lint = analysis::lint_program(*proto);
    for (const analysis::Finding& finding : lint.findings) {
      std::string text = "dionea-lint: " + finding.to_string() + "\n";
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    analysis::Engine::instance().set_lint_report(std::move(lint));
  }
  // ForkLint (DIONEA_FORKLINT=1): the fork-safety dataflow over the
  // compiled program plus the native atfork coverage audit. Like the
  // lint, report-and-continue.
  const char* forklint_env = std::getenv("DIONEA_FORKLINT");
  if (forklint_env != nullptr && forklint_env[0] != '\0' &&
      std::string_view(forklint_env) != "0") {
    analysis::Report forklint = analysis::forklint_program(*proto);
    analysis::Report audit_report = analysis::forkaudit::audit(false);
    for (analysis::Finding& finding : audit_report.findings) {
      forklint.findings.push_back(std::move(finding));
    }
    forklint.dedupe();
    for (const analysis::Finding& finding : forklint.findings) {
      std::string text = "dionea-forklint: " + finding.to_string() + "\n";
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    analysis::Engine::instance().set_forklint_report(std::move(forklint));
  }
  auto main_th = std::make_shared<InterpThread>(1, "main");
  {
    std::scoped_lock lock(sched_mutex_);
    DIONEA_CHECK(threads_.empty(), "run_main on a VM that is already running");
    threads_[1] = main_th;
    if (next_thread_id_ < 1) next_thread_id_ = 1;
  }
  auto closure = std::make_shared<Closure>(Closure{proto, {}});

  gil_.acquire(1);
  if (trace_armed(*main_th)) {
    fire_trace(*main_th, TraceKind::kThreadStart, 0);
  }
  main_th->stack.push_back(Value(closure));
  auto push_err = push_frame(*main_th, closure, 0);
  std::variant<Value, VmError> outcome;
  if (push_err) {
    outcome = std::move(*push_err);
  } else {
    outcome = interpret(*main_th, 1);
  }
  if (trace_armed(*main_th)) {
    fire_trace(*main_th, TraceKind::kThreadEnd, 0);
  }
  gil_.release();

  unregister_thread(*main_th);
  shutdown_threads();

  RunResult result;
  if (std::holds_alternative<Value>(outcome)) {
    result.ok = true;
    result.value = std::get<Value>(std::move(outcome));
    main_th->mark_done(result.value);
    if (exit_pending_.load(std::memory_order_relaxed)) {
      result.exited = true;
      result.exit_code = exit_code_.load(std::memory_order_relaxed);
    }
    return result;
  }
  VmError err = std::get<VmError>(std::move(outcome));
  main_th->mark_failed(err);
  if (err.kind == VmErrorKind::kExit ||
      (err.kind == VmErrorKind::kThreadKill &&
       exit_pending_.load(std::memory_order_relaxed))) {
    result.ok = true;
    result.exited = true;
    result.exit_code = err.kind == VmErrorKind::kExit
                           ? err.exit_code
                           : exit_code_.load(std::memory_order_relaxed);
    return result;
  }
  result.ok = false;
  result.error = std::move(err);
  return result;
}

void Vm::shutdown_threads() {
  // Ruby semantics: when the main thread exits, remaining threads are
  // killed at their next safepoint / interruptible wait.
  Stopwatch watch;
  bool warned = false;
  while (true) {
    {
      std::scoped_lock lock(sched_mutex_);
      bool any = false;
      for (auto& [id, th] : threads_) {
        if (th->state == ThreadState::kDead) continue;
        any = true;
        th->interrupt.store(InterruptReason::kKill,
                            std::memory_order_relaxed);
        th->park_cv.notify_all();
      }
      if (!any) return;
    }
    if (watch.elapsed_seconds() > 30.0 && !warned) {
      warned = true;
      DLOG_ERROR("vm") << "threads did not exit within 30s of shutdown";
    }
    sleep_for_millis(5);
  }
}

}  // namespace dionea::vm
