#include "vm/sync.hpp"

#include "analysis/analysis.hpp"
#include "replay/replay.hpp"
#include "support/result.hpp"
#include "support/timing.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

// Current thread id for ownership checks when we only have the thread.
std::int64_t tid_of(const InterpThread& th) { return th.id(); }

}  // namespace

// The winner among several GIL-released waiters on one of these
// objects is the one scheduling decision the GIL does not serialize —
// exactly what the record/replay engine must capture (record) and
// force (replay, via the try_consume gates inside the predicates).
SyncObject::SyncObject()
    : replay_id_(replay::Engine::instance().register_object()) {}

// ---------------------------------------------------------------- VmMutex

VmMutex::VmMutex() : impl_(std::make_unique<Impl>()) {}

WaitOutcome VmMutex::lock(Vm& vm, InterpThread& th) {
  const std::int64_t tid = tid_of(th);
  replay::Engine& rep = replay::Engine::instance();
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->owner == tid) return WaitOutcome::kRecursive;
    // On replay the fast path is additionally gated: free is not
    // enough, it must also be this thread's recorded turn (probe — a
    // miss just means we park below until our turn comes).
    if (impl_->owner == 0 &&
        rep.try_consume(replay::EventKind::kMutexLock, tid, replay_id(),
                        nullptr, /*probe=*/true)) {
      impl_->owner = tid;
      rep.record(replay::EventKind::kMutexLock, tid, replay_id());
      if (analysis::engine_enabled()) {
        analysis::Engine::instance().on_mutex_lock(tid, replay_id());
      }
      return WaitOutcome::kOk;
    }
  }
  // Contended: park like Ruby's Mutex#lock (counts toward deadlock).
  Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Mutex#lock");
  bool ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
    if (impl_->owner != 0) return false;
    if (!rep.try_consume(replay::EventKind::kMutexLock, tid, replay_id())) {
      return false;
    }
    impl_->owner = tid;
    rep.record(replay::EventKind::kMutexLock, tid, replay_id());
    return true;
  });
  if (ok && analysis::engine_enabled()) {
    analysis::Engine::instance().on_mutex_lock(tid, replay_id());
  }
  return ok ? WaitOutcome::kOk : WaitOutcome::kInterrupted;
}

bool VmMutex::try_lock(std::int64_t tid) {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->owner != 0) return false;
    impl_->owner = tid;
  }
  if (analysis::engine_enabled()) {
    analysis::Engine::instance().on_mutex_lock(tid, replay_id());
  }
  return true;
}

WaitOutcome VmMutex::unlock(std::int64_t tid) {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->owner != tid) return WaitOutcome::kNotOwner;
    if (analysis::engine_enabled()) {
      // release edge: everything this thread did while holding the
      // mutex happens-before the next acquirer's continuation. Publish
      // while still owning impl_->mutex — the moment owner drops to 0
      // a fast-path locker may acquire, and it must see this clock.
      analysis::Engine::instance().on_mutex_unlock(tid, replay_id());
    }
    impl_->owner = 0;
  }
  impl_->cv.notify_one();
  return WaitOutcome::kOk;
}

bool VmMutex::locked() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->owner != 0;
}

std::int64_t VmMutex::owner_tid() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->owner;
}

void VmMutex::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmMutex::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmMutex::reinit_in_child(std::int64_t surviving_tid) {
  // Abandon the old Impl (its cv wait-queue referenced vanished
  // threads); carry the logical state over, clearing ownership held by
  // threads that no longer exist — the "ensure the surviving thread
  // can release the synchronization objects" half of §5.3 problem 1.
  fork_lock_.release();
  Impl* old = impl_.release();  // intentional leak, see gil.hpp
  impl_ = std::make_unique<Impl>();
  impl_->owner = (old->owner == surviving_tid) ? surviving_tid : 0;
  bump_generation();
}

void VmMutex::crash_describe(crash::Writer& w) const noexcept {
  const Impl* impl = impl_.get();
  if (impl == nullptr) return;
  w.str("mutex id=");
  w.udec(replay_id());
  w.str(" owner=");
  w.dec(impl->owner);
  w.nl();
}

// ---------------------------------------------------------------- VmQueue

VmQueue::VmQueue() : impl_(std::make_unique<Impl>()) {}

void VmQueue::push(Value value) {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->items.push_back(std::move(value));
  }
  impl_->cv.notify_one();
}

WaitOutcome VmQueue::pop(Vm& vm, InterpThread& th, Value* out) {
  const std::int64_t tid = tid_of(th);
  replay::Engine& rep = replay::Engine::instance();
  bool popped = false;  // false = closed-and-drained, *out stays nil
  {
    std::scoped_lock lock(impl_->mutex);
    // Closed and drained: nil immediately, like Ruby's Queue#pop on a
    // closed queue. Replay gates are bypassed — close() is a
    // deterministic program action, not an OS-arbitrated pairing.
    if (impl_->items.empty() && impl_->closed) {
      *out = Value();
      return WaitOutcome::kOk;
    }
    if (!impl_->items.empty() &&
        rep.try_consume(replay::EventKind::kQueuePop, tid, replay_id(),
                        nullptr, /*probe=*/true)) {
      *out = std::move(impl_->items.front());
      impl_->items.pop_front();
      rep.record(replay::EventKind::kQueuePop, tid, replay_id());
      if (analysis::engine_enabled()) {
        analysis::Engine::instance().on_queue_pop(tid, replay_id());
      }
      return WaitOutcome::kOk;
    }
    ++impl_->waiting;
  }
  Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Queue#pop");
  bool ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
    if (impl_->items.empty()) {
      // close() while parked: wake with nil instead of blocking on a
      // queue that can never be refilled.
      if (!impl_->closed) return false;
      *out = Value();
      return true;
    }
    // Which of several parked consumers gets this element is the
    // pairing the log pins down.
    if (!rep.try_consume(replay::EventKind::kQueuePop, tid, replay_id())) {
      return false;
    }
    *out = std::move(impl_->items.front());
    impl_->items.pop_front();
    rep.record(replay::EventKind::kQueuePop, tid, replay_id());
    popped = true;
    return true;
  });
  {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
  }
  if (ok && popped && analysis::engine_enabled()) {
    analysis::Engine::instance().on_queue_pop(tid, replay_id());
  }
  return ok ? WaitOutcome::kOk : WaitOutcome::kInterrupted;
}

bool VmQueue::try_pop(Value* out) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->items.empty()) return false;
  *out = std::move(impl_->items.front());
  impl_->items.pop_front();
  return true;
}

void VmQueue::close() {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->closed = true;
  }
  impl_->cv.notify_all();  // parked consumers drain, then see nil
}

bool VmQueue::closed() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->closed;
}

size_t VmQueue::size() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->items.size();
}

int VmQueue::num_waiting() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->waiting;
}

void VmQueue::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmQueue::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmQueue::reinit_in_child(std::int64_t /*surviving_tid*/) {
  fork_lock_.release();
  Impl* old = impl_.release();  // intentional leak
  impl_ = std::make_unique<Impl>();
  // The child inherits a snapshot of the queued items (fork copies the
  // heap) but none of the waiters — Listing 5's behaviour. Closed-ness
  // is logical state and survives the fork.
  impl_->items = std::move(old->items);
  impl_->waiting = 0;
  impl_->closed = old->closed;
  bump_generation();
}

void VmQueue::crash_describe(crash::Writer& w) const noexcept {
  const Impl* impl = impl_.get();
  if (impl == nullptr) return;
  w.str("queue id=");
  w.udec(replay_id());
  w.str(" size=");
  w.udec(impl->items.size());
  w.str(" waiting=");
  w.dec(impl->waiting);
  w.str(impl->closed ? " closed" : "");
  w.nl();
}

// ----------------------------------------------------------------- VmCond

VmCond::VmCond() : impl_(std::make_unique<Impl>()) {}

WaitOutcome VmCond::wait(Vm& vm, InterpThread& th, VmMutex& mutex) {
  const std::int64_t tid = tid_of(th);
  std::uint64_t entry_gen;
  {
    std::scoped_lock lock(impl_->mutex);
    entry_gen = impl_->broadcast_gen;
    ++impl_->waiting;
  }
  // Release the user mutex, then wait. A signal between the unlock and
  // the wait is not lost: it increments impl_->signals which the
  // predicate observes.
  WaitOutcome unlocked = mutex.unlock(tid);
  if (unlocked != WaitOutcome::kOk) {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
    return unlocked;
  }
  bool ok;
  {
    replay::Engine& rep = replay::Engine::instance();
    Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Cond#wait");
    ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
      if (impl_->broadcast_gen != entry_gen) {
        // Broadcast wakes everyone; the order they re-acquire the user
        // mutex is already pinned by kMutexLock events, so only the
        // wake itself is logged.
        if (!rep.try_consume(replay::EventKind::kCondWake, tid,
                             replay_id())) {
          return false;
        }
        rep.record(replay::EventKind::kCondWake, tid, replay_id());
        return true;
      }
      if (impl_->signals > 0) {
        // signal() wakes one thread of several waiters — the second
        // OS-arbitrated choice (after queue pairing) the log must pin.
        if (!rep.try_consume(replay::EventKind::kCondWake, tid,
                             replay_id())) {
          return false;
        }
        --impl_->signals;
        rep.record(replay::EventKind::kCondWake, tid, replay_id());
        return true;
      }
      return false;
    });
  }
  {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
  }
  if (!ok) return WaitOutcome::kInterrupted;
  if (analysis::engine_enabled()) {
    // The signal/broadcast that woke us is a happens-before edge.
    analysis::Engine::instance().on_cond_wake(tid, replay_id());
  }
  // Re-acquire the user mutex before returning (may block again).
  return mutex.lock(vm, th);
}

WaitOutcome VmCond::wait_for(Vm& vm, InterpThread& th, VmMutex& mutex,
                             double timeout_secs, bool* timed_out) {
  const std::int64_t tid = tid_of(th);
  *timed_out = false;
  std::uint64_t entry_gen;
  {
    std::scoped_lock lock(impl_->mutex);
    entry_gen = impl_->broadcast_gen;
    ++impl_->waiting;
  }
  WaitOutcome unlocked = mutex.unlock(tid);
  if (unlocked != WaitOutcome::kOk) {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
    return unlocked;
  }
  bool ok;
  bool woken = false;
  {
    replay::Engine& rep = replay::Engine::instance();
    Stopwatch watch;
    // kBlockedTimed: a timed wait is never "stuck" — the deadlock
    // detector must ignore it (it will make progress on its own).
    Vm::BlockScope scope(vm, th, ThreadState::kBlockedTimed,
                         "Cond#wait(timeout)");
    ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
      if (impl_->broadcast_gen != entry_gen) {
        if (!rep.try_consume(replay::EventKind::kCondWake, tid,
                             replay_id())) {
          return false;
        }
        rep.record(replay::EventKind::kCondWake, tid, replay_id());
        woken = true;
        return true;
      }
      if (impl_->signals > 0) {
        if (!rep.try_consume(replay::EventKind::kCondWake, tid,
                             replay_id())) {
          return false;
        }
        --impl_->signals;
        rep.record(replay::EventKind::kCondWake, tid, replay_id());
        woken = true;
        return true;
      }
      // Deadline checked every wait slice (kWaitSliceMillis), so a
      // timeout is detected within one slice of when it fired.
      if (watch.elapsed_seconds() >= timeout_secs) {
        *timed_out = true;
        return true;
      }
      return false;
    });
  }
  {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
  }
  if (!ok) return WaitOutcome::kInterrupted;
  if (woken && analysis::engine_enabled()) {
    analysis::Engine::instance().on_cond_wake(tid, replay_id());
  }
  // Re-acquire the user mutex before returning, timeout or not —
  // the caller's critical section resumes either way.
  return mutex.lock(vm, th);
}

void VmCond::signal() {
  {
    std::scoped_lock lock(impl_->mutex);
    if (static_cast<std::uint64_t>(impl_->waiting) > impl_->signals) {
      ++impl_->signals;
    }
  }
  impl_->cv.notify_all();  // predicate picks exactly one consumer
}

void VmCond::broadcast() {
  {
    std::scoped_lock lock(impl_->mutex);
    ++impl_->broadcast_gen;
    impl_->signals = 0;
  }
  impl_->cv.notify_all();
}

void VmCond::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmCond::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmCond::reinit_in_child(std::int64_t /*surviving_tid*/) {
  fork_lock_.release();
  (void)impl_.release();  // intentional leak
  impl_ = std::make_unique<Impl>();
  bump_generation();
}

void VmCond::crash_describe(crash::Writer& w) const noexcept {
  const Impl* impl = impl_.get();
  if (impl == nullptr) return;
  w.str("cond id=");
  w.udec(replay_id());
  w.str(" waiting=");
  w.dec(impl->waiting);
  w.nl();
}

const char* thread_state_name(ThreadState state) noexcept {
  switch (state) {
    case ThreadState::kRunnable: return "runnable";
    case ThreadState::kBlockedForever: return "blocked";
    case ThreadState::kBlockedTimed: return "sleeping";
    case ThreadState::kIoBlocked: return "io";
    case ThreadState::kDebugParked: return "suspended";
    case ThreadState::kDead: return "dead";
  }
  return "?";
}

}  // namespace dionea::vm
