#include "vm/sync.hpp"

#include "support/result.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

// Current thread id for ownership checks when we only have the thread.
std::int64_t tid_of(const InterpThread& th) { return th.id(); }

}  // namespace

// ---------------------------------------------------------------- VmMutex

VmMutex::VmMutex() : impl_(std::make_unique<Impl>()) {}

WaitOutcome VmMutex::lock(Vm& vm, InterpThread& th) {
  const std::int64_t tid = tid_of(th);
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->owner == tid) return WaitOutcome::kRecursive;
    if (impl_->owner == 0) {
      impl_->owner = tid;
      return WaitOutcome::kOk;
    }
  }
  // Contended: park like Ruby's Mutex#lock (counts toward deadlock).
  Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Mutex#lock");
  bool ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
    if (impl_->owner != 0) return false;
    impl_->owner = tid;
    return true;
  });
  return ok ? WaitOutcome::kOk : WaitOutcome::kInterrupted;
}

bool VmMutex::try_lock(std::int64_t tid) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->owner != 0) return false;
  impl_->owner = tid;
  return true;
}

WaitOutcome VmMutex::unlock(std::int64_t tid) {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->owner != tid) return WaitOutcome::kNotOwner;
    impl_->owner = 0;
  }
  impl_->cv.notify_one();
  return WaitOutcome::kOk;
}

bool VmMutex::locked() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->owner != 0;
}

std::int64_t VmMutex::owner_tid() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->owner;
}

void VmMutex::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmMutex::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmMutex::reinit_in_child(std::int64_t surviving_tid) {
  // Abandon the old Impl (its cv wait-queue referenced vanished
  // threads); carry the logical state over, clearing ownership held by
  // threads that no longer exist — the "ensure the surviving thread
  // can release the synchronization objects" half of §5.3 problem 1.
  fork_lock_.release();
  Impl* old = impl_.release();  // intentional leak, see gil.hpp
  impl_ = std::make_unique<Impl>();
  impl_->owner = (old->owner == surviving_tid) ? surviving_tid : 0;
}

// ---------------------------------------------------------------- VmQueue

VmQueue::VmQueue() : impl_(std::make_unique<Impl>()) {}

void VmQueue::push(Value value) {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->items.push_back(std::move(value));
  }
  impl_->cv.notify_one();
}

WaitOutcome VmQueue::pop(Vm& vm, InterpThread& th, Value* out) {
  {
    std::scoped_lock lock(impl_->mutex);
    if (!impl_->items.empty()) {
      *out = std::move(impl_->items.front());
      impl_->items.pop_front();
      return WaitOutcome::kOk;
    }
    ++impl_->waiting;
  }
  Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Queue#pop");
  bool ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
    if (impl_->items.empty()) return false;
    *out = std::move(impl_->items.front());
    impl_->items.pop_front();
    return true;
  });
  {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
  }
  return ok ? WaitOutcome::kOk : WaitOutcome::kInterrupted;
}

bool VmQueue::try_pop(Value* out) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->items.empty()) return false;
  *out = std::move(impl_->items.front());
  impl_->items.pop_front();
  return true;
}

size_t VmQueue::size() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->items.size();
}

int VmQueue::num_waiting() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->waiting;
}

void VmQueue::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmQueue::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmQueue::reinit_in_child(std::int64_t /*surviving_tid*/) {
  fork_lock_.release();
  Impl* old = impl_.release();  // intentional leak
  impl_ = std::make_unique<Impl>();
  // The child inherits a snapshot of the queued items (fork copies the
  // heap) but none of the waiters — Listing 5's behaviour.
  impl_->items = std::move(old->items);
  impl_->waiting = 0;
}

// ----------------------------------------------------------------- VmCond

VmCond::VmCond() : impl_(std::make_unique<Impl>()) {}

WaitOutcome VmCond::wait(Vm& vm, InterpThread& th, VmMutex& mutex) {
  const std::int64_t tid = tid_of(th);
  std::uint64_t entry_gen;
  {
    std::scoped_lock lock(impl_->mutex);
    entry_gen = impl_->broadcast_gen;
    ++impl_->waiting;
  }
  // Release the user mutex, then wait. A signal between the unlock and
  // the wait is not lost: it increments impl_->signals which the
  // predicate observes.
  WaitOutcome unlocked = mutex.unlock(tid);
  if (unlocked != WaitOutcome::kOk) {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
    return unlocked;
  }
  bool ok;
  {
    Vm::BlockScope scope(vm, th, ThreadState::kBlockedForever, "Cond#wait");
    ok = vm.wait_interruptible(th, impl_->mutex, impl_->cv, [&] {
      if (impl_->broadcast_gen != entry_gen) return true;
      if (impl_->signals > 0) {
        --impl_->signals;
        return true;
      }
      return false;
    });
  }
  {
    std::scoped_lock lock(impl_->mutex);
    --impl_->waiting;
  }
  if (!ok) return WaitOutcome::kInterrupted;
  // Re-acquire the user mutex before returning (may block again).
  return mutex.lock(vm, th);
}

void VmCond::signal() {
  {
    std::scoped_lock lock(impl_->mutex);
    if (static_cast<std::uint64_t>(impl_->waiting) > impl_->signals) {
      ++impl_->signals;
    }
  }
  impl_->cv.notify_all();  // predicate picks exactly one consumer
}

void VmCond::broadcast() {
  {
    std::scoped_lock lock(impl_->mutex);
    ++impl_->broadcast_gen;
    impl_->signals = 0;
  }
  impl_->cv.notify_all();
}

void VmCond::lock_for_fork() { fork_lock_ = std::unique_lock(impl_->mutex); }

void VmCond::unlock_after_fork() {
  fork_lock_.unlock();
  fork_lock_ = {};
}

void VmCond::reinit_in_child(std::int64_t /*surviving_tid*/) {
  fork_lock_.release();
  (void)impl_.release();  // intentional leak
  impl_ = std::make_unique<Impl>();
}

const char* thread_state_name(ThreadState state) noexcept {
  switch (state) {
    case ThreadState::kRunnable: return "runnable";
    case ThreadState::kBlockedForever: return "blocked";
    case ThreadState::kBlockedTimed: return "sleeping";
    case ThreadState::kIoBlocked: return "io";
    case ThreadState::kDebugParked: return "suspended";
    case ThreadState::kDead: return "dead";
  }
  return "?";
}

}  // namespace dionea::vm
