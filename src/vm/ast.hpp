// MiniLang abstract syntax tree.
//
// Nodes are plain tagged structs owned through unique_ptr; the
// compiler walks them once and throws them away, so there is no need
// for a visitor hierarchy. Every node carries its 1-based source line —
// that line number is what flows through kTraceLine instructions into
// trace events, breakpoints and deadlock reports.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/token.hpp"

namespace dionea::vm {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// A function literal or declaration: shared between the Lambda
// expression node and the FnDef statement node.
struct FnDecl {
  std::string name;  // empty for anonymous lambdas
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

enum class ExprKind : int {
  kIntLit,
  kFloatLit,
  kStrLit,
  kBoolLit,
  kNilLit,
  kName,
  kUnary,    // op rhs           (kMinus, kNot)
  kBinary,   // lhs op rhs       (arith / comparison)
  kLogical,  // lhs and/or rhs   (short-circuit)
  kCall,     // callee(args...)
  kMethod,   // receiver.name(args...) — sugar: name(receiver, args...)
  kIndex,    // target[index]
  kListLit,  // [e0, e1, ...]     in args
  kMapLit,   // {k0: v0, ...}     keys/values interleaved in args
  kLambda,   // fn(params) body end
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // Literal payloads.
  std::int64_t int_val = 0;
  double float_val = 0.0;
  std::string str_val;  // string literal, kName identifier, kMethod name
  bool bool_val = false;

  TokenKind op = TokenKind::kEof;  // kUnary / kBinary / kLogical operator

  ExprPtr lhs;                 // binary lhs, unary operand, index target
  ExprPtr rhs;                 // binary rhs, index subscript
  ExprPtr callee;              // kCall callee, kMethod receiver
  std::vector<ExprPtr> args;   // call args / list elements / map pairs
  std::shared_ptr<FnDecl> fn;  // kLambda
};

enum class StmtKind : int {
  kExpr,     // expression statement (value discarded)
  kAssign,   // target = value; target is kName or kIndex
  kFnDef,    // fn name(...) ... end  (defines a global)
  kIf,
  kWhile,
  kForIn,
  kReturn,
  kBreak,
  kContinue,
};

struct IfArm {
  ExprPtr condition;            // null for the trailing else
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;                 // kExpr value, kAssign target, kReturn value,
                                // kWhile condition, kForIn iterable
  ExprPtr value;                // kAssign right-hand side
  std::shared_ptr<FnDecl> fn;   // kFnDef
  std::vector<IfArm> arms;      // kIf
  std::vector<StmtPtr> body;    // kWhile / kForIn
  std::string name;             // kForIn loop variable
};

struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace dionea::vm
