// The MiniVM dispatch backends.
//
// The interpreter loop body lives in dispatch.inc and is compiled
// twice here: once under a plain switch (portable, and the baseline
// arm for bench_vm) and once under GCC/Clang computed goto, where each
// handler ends in its own indirect branch so the branch predictor can
// learn per-opcode successor patterns instead of funnelling every
// instruction through one mega-branch. Backend selection is runtime
// state (Vm::dispatch_mode_, env DIONEA_DISPATCH) — both backends are
// always built, which is what lets the test suite run the full corpus
// under each.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/analysis.hpp"
#include "support/strings.hpp"
#include "vm/code_cache.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {

namespace {

inline std::uint16_t vm_rd_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(p[0]) |
      (static_cast<std::uint16_t>(p[1]) << 8));
}

VmError interrupt_error(Vm& vm, InterpThread& th) {
  InterruptReason reason = th.interrupt.load(std::memory_order_relaxed);
  if (reason == InterruptReason::kDeadlock) {
    return vm.runtime_error(th, "deadlock detected (fatal)",
                            VmErrorKind::kFatalDeadlock);
  }
  return vm.runtime_error(th, "killed", VmErrorKind::kThreadKill);
}

}  // namespace

// Shared semantics for the eleven binary operators, used by both the
// plain binop handlers and the fused superinstructions so the fused
// forms cannot drift from the originals. `lhs` is updated in place
// (it is the stack top).
std::optional<VmError> Vm::apply_binop(InterpThread& th, Op op, Value& lhs,
                                       Value rhs) {
  if (lhs.is_int() && rhs.is_int()) [[likely]] {
    const std::int64_t a = lhs.as_int();
    const std::int64_t b = rhs.as_int();
    std::int64_t out = 0;
    switch (op) {
      case Op::kAdd:
        if (__builtin_add_overflow(a, b, &out)) {
          return runtime_error(th, "integer overflow in +");
        }
        lhs = Value(out);
        return std::nullopt;
      case Op::kSub:
        if (__builtin_sub_overflow(a, b, &out)) {
          return runtime_error(th, "integer overflow");
        }
        lhs = Value(out);
        return std::nullopt;
      case Op::kMul:
        if (__builtin_mul_overflow(a, b, &out)) {
          return runtime_error(th, "integer overflow");
        }
        lhs = Value(out);
        return std::nullopt;
      case Op::kDiv:
        if (b == 0) return runtime_error(th, "divided by 0");
        if (a == INT64_MIN && b == -1) {
          return runtime_error(th, "integer overflow");
        }
        lhs = Value(a / b);
        return std::nullopt;
      case Op::kMod:
        if (b == 0) return runtime_error(th, "divided by 0");
        lhs = Value(a % b);
        return std::nullopt;
      case Op::kEq: lhs = Value(a == b); return std::nullopt;
      case Op::kNe: lhs = Value(a != b); return std::nullopt;
      case Op::kLt: lhs = Value(a < b); return std::nullopt;
      case Op::kLe: lhs = Value(a <= b); return std::nullopt;
      case Op::kGt: lhs = Value(a > b); return std::nullopt;
      case Op::kGe: lhs = Value(a >= b); return std::nullopt;
      default:
        break;
    }
  }
  switch (op) {
    case Op::kAdd: {
      if (lhs.is_number() && rhs.is_number()) {
        lhs = Value(lhs.number() + rhs.number());
      } else if (lhs.is_str() && rhs.is_str()) {
        lhs = Value::str(lhs.as_str() + rhs.as_str());
      } else if (lhs.is_list() && rhs.is_list()) {
        auto combined = std::make_shared<List>();
        combined->items = lhs.as_list()->items;
        combined->items.insert(combined->items.end(),
                               rhs.as_list()->items.begin(),
                               rhs.as_list()->items.end());
        lhs = Value(std::move(combined));
      } else {
        return runtime_error(
            th, strings::format("cannot add %s and %s", lhs.type_name(),
                                rhs.type_name()));
      }
      return std::nullopt;
    }
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv: {
      if (!lhs.is_number() || !rhs.is_number()) {
        return runtime_error(
            th, strings::format("numeric operator on %s and %s",
                                lhs.type_name(), rhs.type_name()));
      }
      const double a = lhs.number();
      const double b = rhs.number();
      lhs = Value(op == Op::kSub ? a - b : op == Op::kMul ? a * b : a / b);
      return std::nullopt;
    }
    case Op::kMod:
      // Both-int was handled above; anything else is a type error.
      return runtime_error(th, "'%' requires integers");
    case Op::kEq:
    case Op::kNe: {
      const bool eq = lhs.equals(rhs);
      lhs = Value(op == Op::kEq ? eq : !eq);
      return std::nullopt;
    }
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      int cmp;
      if (lhs.is_number() && rhs.is_number()) {
        const double a = lhs.number();
        const double b = rhs.number();
        cmp = a < b ? -1 : a > b ? 1 : 0;
      } else if (lhs.is_str() && rhs.is_str()) {
        const int c = lhs.as_str().compare(rhs.as_str());
        cmp = c < 0 ? -1 : c > 0 ? 1 : 0;
      } else {
        return runtime_error(
            th, strings::format("cannot compare %s with %s",
                                lhs.type_name(), rhs.type_name()));
      }
      const bool result = op == Op::kLt   ? cmp < 0
                          : op == Op::kLe ? cmp <= 0
                          : op == Op::kGt ? cmp > 0
                                          : cmp >= 0;
      lhs = Value(result);
      return std::nullopt;
    }
    default:
      // Unreachable: the verifier admits only fusable binops into the
      // fused forms and the compiler only emits defined operators.
      return runtime_error(th, "corrupted bytecode");
  }
}

std::variant<Value, VmError> Vm::interpret_switch(InterpThread& th,
                                                  size_t stop_depth) {
#define VM_USE_GOTO 0
#include "vm/dispatch.inc"
#undef VM_USE_GOTO
}

std::variant<Value, VmError> Vm::interpret_goto(InterpThread& th,
                                                size_t stop_depth) {
#if defined(__GNUC__) || defined(__clang__)
#define VM_USE_GOTO 1
#include "vm/dispatch.inc"
#undef VM_USE_GOTO
#else
  return interpret_switch(th, stop_depth);
#endif
}

}  // namespace dionea::vm
