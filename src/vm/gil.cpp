#include "vm/gil.hpp"

#include <chrono>
#include <thread>

#include "replay/replay.hpp"
#include "support/metrics.hpp"
#include "support/result.hpp"
#include "support/timing.hpp"

namespace dionea::vm {

// FIFO ticketing: without it, a thread that releases the GIL at a
// switch point re-acquires it before any waiter can wake (the lock
// convoy CPython's old GIL was notorious for), and cooperative
// yielding never actually yields. Each acquire takes a ticket; the
// lock is granted in ticket order.

Gil::Gil() : state_(std::make_unique<State>()) {}

Gil::~Gil() = default;

void Gil::acquire(std::int64_t tid) {
  replay::Engine& rep = replay::Engine::instance();
  if (tid > 0 && rep.replaying()) {
    // The log, not the ticket line, decides the grant order: a thread
    // that would acquire out of turn parks until it is the designated
    // next holder. Short slices re-check because the engine's cursor
    // advances under its own (leaf) lock and cannot signal this cv.
    std::unique_lock lock(state_->mutex);
    DIONEA_CHECK(!(state_->held && state_->owner == tid),
                 "recursive GIL acquire");
    ++state_->waiters;
    while (state_->held ||
           !rep.try_consume(replay::EventKind::kGilAcquire, tid)) {
      state_->cv.wait_for(lock, std::chrono::milliseconds(2));
    }
    --state_->waiters;
    state_->held = true;
    state_->owner = tid;
    state_->acquired_nanos = 0;
    note_granted(tid);
    return;
  }
  const bool record = metrics::Registry::instance().enabled();
  std::unique_lock lock(state_->mutex);
  DIONEA_CHECK(!(state_->held && state_->owner == tid),
               "recursive GIL acquire");
  std::uint64_t ticket = state_->next_ticket++;
  // Contended = someone holds the lock or earlier tickets are queued.
  // The clock is read only on that path (and once on grant when
  // metrics are on): the uncontended acquire stays probe-free.
  const bool contended = state_->held || ticket != state_->serving;
  const std::int64_t wait_start = (record && contended) ? mono_nanos() : 0;
  ++state_->waiters;
  state_->cv.wait(lock, [this, ticket] {
    return !state_->held && ticket == state_->serving;
  });
  --state_->waiters;
  ++state_->serving;
  state_->held = true;
  state_->owner = tid;
  if (record) {
    metrics::add(metrics::Counter::kGilAcquires);
    const std::int64_t now = mono_nanos();
    if (contended) {
      metrics::add(metrics::Counter::kGilContended);
      metrics::observe(metrics::Histogram::kGilWaitNanos,
                       static_cast<std::uint64_t>(now - wait_start));
    }
    state_->acquired_nanos = now;
  } else {
    state_->acquired_nanos = 0;
  }
  note_granted(tid);
  // Log the grant (not the request): the sequence of grants IS the
  // interleaving a replay must force. External (tid < 0) users are
  // debugger machinery, never bytecode — the engine skips them.
  rep.record(replay::EventKind::kGilAcquire, tid);
}

void Gil::release() {
  {
    std::scoped_lock lock(state_->mutex);
    DIONEA_CHECK(state_->held, "releasing unheld GIL");
    state_->held = false;
    note_released();
    // The releasing thread is the owner, so the shard write below is
    // still single-writer.
    if (state_->acquired_nanos != 0) {
      metrics::observe(
          metrics::Histogram::kGilHoldNanos,
          static_cast<std::uint64_t>(mono_nanos() - state_->acquired_nanos));
      state_->acquired_nanos = 0;
    }
  }
  state_->cv.notify_all();
}

void Gil::yield(std::int64_t tid) {
  replay::Engine& rep = replay::Engine::instance();
  if (tid > 0 && rep.replaying()) {
    if (rep.stop_gated()) {
      // A run-to-step pause is in force: hand the GIL back and park
      // here, so the VM freezes with the GIL free for inspection.
      // This pause is not a recorded event — on un-gating we must take
      // the lock back directly (we were the recorded holder), not
      // consume a kGilAcquire the log never contained.
      release();
      for (;;) {
        if (!rep.stop_gated()) {
          reacquire_out_of_band(tid);
          if (!rep.stop_gated()) return;
          release();  // re-armed while we took it: park again
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    // Hand off exactly where the recording did. The probe asks "is a
    // yield by this thread the next recorded event?" — a mismatch just
    // means the recording kept running here.
    if (!rep.try_consume(replay::EventKind::kGilYield, tid, 0, nullptr,
                         /*probe=*/true)) {
      return;
    }
    release();
    acquire(tid);
    return;
  }
  {
    std::scoped_lock lock(state_->mutex);
    // Nobody queued behind us: keep running.
    if (state_->serving == state_->next_ticket) return;
  }
  rep.record(replay::EventKind::kGilYield, tid);
  release();
  // Our new ticket queues behind every thread that was already
  // waiting: a real handoff.
  acquire(tid);
}

void Gil::reacquire_out_of_band(std::int64_t tid) {
  std::unique_lock lock(state_->mutex);
  ++state_->waiters;
  while (state_->held) {
    // Short slices: an inspector's release notifies this cv, but an
    // engine-side un-gate cannot.
    state_->cv.wait_for(lock, std::chrono::milliseconds(2));
  }
  --state_->waiters;
  state_->held = true;
  state_->owner = tid;
  state_->acquired_nanos = 0;
  note_granted(tid);
}

std::int64_t Gil::owner() const {
  std::scoped_lock lock(state_->mutex);
  return state_->held ? state_->owner : 0;
}

bool Gil::held_by(std::int64_t tid) const {
  std::scoped_lock lock(state_->mutex);
  return state_->held && state_->owner == tid;
}

void Gil::prepare_fork() {
  fork_lock_ = std::unique_lock(state_->mutex);
}

void Gil::parent_atfork() {
  DIONEA_CHECK(fork_lock_.owns_lock(), "parent_atfork without prepare_fork");
  fork_lock_.unlock();
  fork_lock_ = {};
}

void Gil::child_atfork(std::int64_t surviving_tid) {
  // Drop (leak) the old state: its mutex is still flagged as locked by
  // prepare_fork's lock, its cv wait-queue and ticket line referenced
  // threads that do not exist in this process. See header comment.
  fork_lock_.release();
  (void)state_.release();
  state_ = std::make_unique<State>();
  state_->held = true;
  state_->owner = surviving_tid;
  note_granted(surviving_tid);
}

void Gil::note_granted(std::int64_t tid) noexcept {
  owner_mirror_.store(tid, std::memory_order_relaxed);
  held_since_.store(
      hold_watch_.load(std::memory_order_relaxed) ? mono_nanos() : 0,
      std::memory_order_relaxed);
}

void Gil::note_released() noexcept {
  owner_mirror_.store(0, std::memory_order_relaxed);
  held_since_.store(0, std::memory_order_relaxed);
}

}  // namespace dionea::vm
