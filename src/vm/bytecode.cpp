#include "vm/bytecode.hpp"

#include <set>

#include "support/result.hpp"
#include "support/strings.hpp"

namespace dionea::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
#define DIONEA_OP_NAME(name, str, operand_bytes) \
  case Op::name:                                 \
    return str;
    DIONEA_OPCODE_LIST(DIONEA_OP_NAME)
#undef DIONEA_OP_NAME
  }
  return "?";
}

int op_operand_bytes(Op op) noexcept {
  switch (op) {
#define DIONEA_OP_WIDTH(name, str, operand_bytes) \
  case Op::name:                                  \
    return operand_bytes;
    DIONEA_OPCODE_LIST(DIONEA_OP_WIDTH)
#undef DIONEA_OP_WIDTH
  }
  return 0;
}

bool op_is_fusable_binop(Op op) noexcept {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return true;
    default:
      return false;
  }
}

void Chunk::write(Op op, int line) {
  code_.push_back(static_cast<std::uint8_t>(op));
  lines_.push_back(line);
}

void Chunk::write_u8(std::uint8_t byte, int line) {
  code_.push_back(byte);
  lines_.push_back(line);
}

void Chunk::write_u16(std::uint16_t value, int line) {
  code_.push_back(static_cast<std::uint8_t>(value & 0xff));
  code_.push_back(static_cast<std::uint8_t>(value >> 8));
  lines_.push_back(line);
  lines_.push_back(line);
}

size_t Chunk::emit_jump(Op op, int line) {
  write(op, line);
  size_t operand = code_.size();
  write_u16(0xffff, line);
  return operand;
}

void Chunk::patch_jump(size_t operand_offset) {
  // Offset is measured from the byte after the operand.
  size_t distance = code_.size() - (operand_offset + 2);
  DIONEA_CHECK(distance <= 0xffff, "jump too far");
  code_[operand_offset] = static_cast<std::uint8_t>(distance & 0xff);
  code_[operand_offset + 1] = static_cast<std::uint8_t>(distance >> 8);
}

void Chunk::emit_loop(size_t loop_start, int line) {
  write(Op::kLoop, line);
  // Distance back from the byte after the operand to loop_start.
  size_t distance = code_.size() + 2 - loop_start;
  DIONEA_CHECK(distance <= 0xffff, "loop body too large");
  write_u16(static_cast<std::uint16_t>(distance), line);
}

std::uint16_t Chunk::add_constant(Value value) {
  // Deduplicate scalar constants (names repeat constantly).
  for (size_t i = 0; i < constants_.size(); ++i) {
    const Value& existing = constants_[i];
    if (existing.kind() != value.kind()) continue;
    bool same = false;
    switch (existing.kind()) {
      case ValueKind::kInt: same = existing.as_int() == value.as_int(); break;
      case ValueKind::kFloat:
        same = existing.as_float() == value.as_float();
        break;
      case ValueKind::kStr: same = existing.as_str() == value.as_str(); break;
      default: break;
    }
    if (same) return static_cast<std::uint16_t>(i);
  }
  DIONEA_CHECK(constants_.size() < 0xffff, "too many constants");
  constants_.push_back(std::move(value));
  return static_cast<std::uint16_t>(constants_.size() - 1);
}

int Chunk::line_at(size_t offset) const noexcept {
  return offset < lines_.size() ? lines_[offset] : 0;
}

size_t Chunk::disassemble_instruction(size_t offset, std::string* out) const {
  if (!op_is_valid(code_[offset])) {
    *out += strings::format("%04zu %4d  BAD_OP %u\n", offset, line_at(offset),
                            static_cast<unsigned>(code_[offset]));
    return offset + 1;
  }
  Op op = static_cast<Op>(code_[offset]);
  *out += strings::format("%04zu %4d  %-18s", offset, line_at(offset),
                          op_name(op));
  int operand_bytes = op_operand_bytes(op);
  size_t next = offset + 1 + static_cast<size_t>(operand_bytes);
  if (operand_bytes == 1) {
    *out += strings::format(" %u", static_cast<unsigned>(read_u8(offset + 1)));
  } else if (operand_bytes == 5) {
    std::uint16_t a = read_u16(offset + 1);
    std::uint16_t b = read_u16(offset + 3);
    Op sub = static_cast<Op>(read_u8(offset + 5));
    if (op == Op::kLocLocBin) {
      *out += strings::format(" slotA=%u slotB=%u  ; %s",
                              static_cast<unsigned>(a),
                              static_cast<unsigned>(b), op_name(sub));
    } else {
      *out += strings::format(" slot=%u const=%u  ; %s",
                              static_cast<unsigned>(a),
                              static_cast<unsigned>(b), op_name(sub));
      if (b < constants_.size()) *out += " " + constants_[b].repr();
    }
  } else if (operand_bytes == 4 && op == Op::kConstSetLocal) {
    std::uint16_t cidx = read_u16(offset + 1);
    std::uint16_t slot = read_u16(offset + 3);
    *out += strings::format(" const=%u slot=%u", static_cast<unsigned>(cidx),
                            static_cast<unsigned>(slot));
    if (cidx < constants_.size()) *out += "  ; " + constants_[cidx].repr();
  } else if (operand_bytes == 4) {
    std::uint16_t slot = read_u16(offset + 1);
    std::uint16_t exit = read_u16(offset + 3);
    *out += strings::format(" slot=%u  ; exit -> %04zu",
                            static_cast<unsigned>(slot), next + exit);
  } else if (operand_bytes == 2) {
    std::uint16_t operand = read_u16(offset + 1);
    *out += strings::format(" %u", static_cast<unsigned>(operand));
    switch (op) {
      case Op::kConst:
      case Op::kGetGlobal:
      case Op::kSetGlobal:
      case Op::kClosure:
        if (operand < constants_.size()) {
          *out += "  ; " + constants_[operand].repr();
        }
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
      case Op::kIterNext:
        *out += strings::format("  ; -> %04zu", next + operand);
        break;
      case Op::kLoop:
        *out += strings::format("  ; -> %04zu", next - operand);
        break;
      default:
        break;
    }
  }
  *out += "\n";
  return next;
}

std::string Chunk::disassemble(const std::string& name) const {
  std::string out = "== " + name + " ==\n";
  size_t offset = 0;
  while (offset < code_.size()) {
    offset = disassemble_instruction(offset, &out);
  }
  return out;
}

namespace {
void collect_protos_rec(const FunctionProto* proto,
                        std::vector<const FunctionProto*>* out,
                        std::set<const FunctionProto*>* seen) {
  if (!seen->insert(proto).second) return;
  out->push_back(proto);
  for (const Value& constant : proto->chunk.constants()) {
    if (constant.is_closure() && constant.as_closure()->proto) {
      collect_protos_rec(constant.as_closure()->proto.get(), out, seen);
    }
  }
}
}  // namespace

std::vector<const FunctionProto*> collect_protos(const FunctionProto& main) {
  std::vector<const FunctionProto*> out;
  std::set<const FunctionProto*> seen;
  collect_protos_rec(&main, &out, &seen);
  return out;
}

}  // namespace dionea::vm
