#include "vm/bytecode.hpp"

#include "support/result.hpp"
#include "support/strings.hpp"

namespace dionea::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kConst: return "CONST";
    case Op::kNil: return "NIL";
    case Op::kTrue: return "TRUE";
    case Op::kFalse: return "FALSE";
    case Op::kPop: return "POP";
    case Op::kDup: return "DUP";
    case Op::kGetLocal: return "GET_LOCAL";
    case Op::kSetLocal: return "SET_LOCAL";
    case Op::kGetGlobal: return "GET_GLOBAL";
    case Op::kSetGlobal: return "SET_GLOBAL";
    case Op::kGetCapture: return "GET_CAPTURE";
    case Op::kSetCapture: return "SET_CAPTURE";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kMul: return "MUL";
    case Op::kDiv: return "DIV";
    case Op::kMod: return "MOD";
    case Op::kNeg: return "NEG";
    case Op::kNot: return "NOT";
    case Op::kEq: return "EQ";
    case Op::kNe: return "NE";
    case Op::kLt: return "LT";
    case Op::kLe: return "LE";
    case Op::kGt: return "GT";
    case Op::kGe: return "GE";
    case Op::kJump: return "JUMP";
    case Op::kJumpIfFalse: return "JUMP_IF_FALSE";
    case Op::kJumpIfFalsePeek: return "JUMP_IF_FALSE_PEEK";
    case Op::kJumpIfTruePeek: return "JUMP_IF_TRUE_PEEK";
    case Op::kLoop: return "LOOP";
    case Op::kCall: return "CALL";
    case Op::kReturn: return "RETURN";
    case Op::kBuildList: return "BUILD_LIST";
    case Op::kBuildMap: return "BUILD_MAP";
    case Op::kIndexGet: return "INDEX_GET";
    case Op::kIndexSet: return "INDEX_SET";
    case Op::kClosure: return "CLOSURE";
    case Op::kIterNew: return "ITER_NEW";
    case Op::kIterNext: return "ITER_NEXT";
    case Op::kTraceLine: return "TRACE_LINE";
    case Op::kHalt: return "HALT";
  }
  return "?";
}

int op_operand_bytes(Op op) noexcept {
  switch (op) {
    case Op::kConst:
    case Op::kGetLocal:
    case Op::kSetLocal:
    case Op::kGetGlobal:
    case Op::kSetGlobal:
    case Op::kGetCapture:
    case Op::kSetCapture:
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kJumpIfFalsePeek:
    case Op::kJumpIfTruePeek:
    case Op::kLoop:
    case Op::kBuildList:
    case Op::kBuildMap:
    case Op::kClosure:
    case Op::kTraceLine:
      return 2;
    case Op::kIterNext:  // u16 iter slot + u16 exit offset
      return 4;
    case Op::kCall:
      return 1;
    default:
      return 0;
  }
}

void Chunk::write(Op op, int line) {
  code_.push_back(static_cast<std::uint8_t>(op));
  lines_.push_back(line);
}

void Chunk::write_u8(std::uint8_t byte, int line) {
  code_.push_back(byte);
  lines_.push_back(line);
}

void Chunk::write_u16(std::uint16_t value, int line) {
  code_.push_back(static_cast<std::uint8_t>(value & 0xff));
  code_.push_back(static_cast<std::uint8_t>(value >> 8));
  lines_.push_back(line);
  lines_.push_back(line);
}

size_t Chunk::emit_jump(Op op, int line) {
  write(op, line);
  size_t operand = code_.size();
  write_u16(0xffff, line);
  return operand;
}

void Chunk::patch_jump(size_t operand_offset) {
  // Offset is measured from the byte after the operand.
  size_t distance = code_.size() - (operand_offset + 2);
  DIONEA_CHECK(distance <= 0xffff, "jump too far");
  code_[operand_offset] = static_cast<std::uint8_t>(distance & 0xff);
  code_[operand_offset + 1] = static_cast<std::uint8_t>(distance >> 8);
}

void Chunk::emit_loop(size_t loop_start, int line) {
  write(Op::kLoop, line);
  // Distance back from the byte after the operand to loop_start.
  size_t distance = code_.size() + 2 - loop_start;
  DIONEA_CHECK(distance <= 0xffff, "loop body too large");
  write_u16(static_cast<std::uint16_t>(distance), line);
}

std::uint16_t Chunk::add_constant(Value value) {
  // Deduplicate scalar constants (names repeat constantly).
  for (size_t i = 0; i < constants_.size(); ++i) {
    const Value& existing = constants_[i];
    if (existing.kind() != value.kind()) continue;
    bool same = false;
    switch (existing.kind()) {
      case ValueKind::kInt: same = existing.as_int() == value.as_int(); break;
      case ValueKind::kFloat:
        same = existing.as_float() == value.as_float();
        break;
      case ValueKind::kStr: same = existing.as_str() == value.as_str(); break;
      default: break;
    }
    if (same) return static_cast<std::uint16_t>(i);
  }
  DIONEA_CHECK(constants_.size() < 0xffff, "too many constants");
  constants_.push_back(std::move(value));
  return static_cast<std::uint16_t>(constants_.size() - 1);
}

int Chunk::line_at(size_t offset) const noexcept {
  return offset < lines_.size() ? lines_[offset] : 0;
}

size_t Chunk::disassemble_instruction(size_t offset, std::string* out) const {
  Op op = static_cast<Op>(code_[offset]);
  *out += strings::format("%04zu %4d  %-18s", offset, line_at(offset),
                          op_name(op));
  int operand_bytes = op_operand_bytes(op);
  size_t next = offset + 1 + static_cast<size_t>(operand_bytes);
  if (operand_bytes == 1) {
    *out += strings::format(" %u", static_cast<unsigned>(read_u8(offset + 1)));
  } else if (operand_bytes == 4) {
    std::uint16_t slot = read_u16(offset + 1);
    std::uint16_t exit = read_u16(offset + 3);
    *out += strings::format(" slot=%u  ; exit -> %04zu",
                            static_cast<unsigned>(slot), next + exit);
  } else if (operand_bytes == 2) {
    std::uint16_t operand = read_u16(offset + 1);
    *out += strings::format(" %u", static_cast<unsigned>(operand));
    switch (op) {
      case Op::kConst:
      case Op::kGetGlobal:
      case Op::kSetGlobal:
      case Op::kClosure:
        if (operand < constants_.size()) {
          *out += "  ; " + constants_[operand].repr();
        }
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
      case Op::kIterNext:
        *out += strings::format("  ; -> %04zu", next + operand);
        break;
      case Op::kLoop:
        *out += strings::format("  ; -> %04zu", next - operand);
        break;
      default:
        break;
    }
  }
  *out += "\n";
  return next;
}

std::string Chunk::disassemble(const std::string& name) const {
  std::string out = "== " + name + " ==\n";
  size_t offset = 0;
  while (offset < code_.size()) {
    offset = disassemble_instruction(offset, &out);
  }
  return out;
}

}  // namespace dionea::vm
