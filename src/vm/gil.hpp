// The Global Interpreter Lock.
//
// MiniVM reproduces the CPython GIL / CRuby GVL execution model (§1):
// interpreter threads are real OS threads, but only the GIL holder
// executes bytecode. Holders yield at statement boundaries every
// `switch_interval` statements, and release the GIL entirely around
// blocking operations — which is precisely why processes, not threads,
// are the parallelism construct the paper's debuggees use.
//
// Fork protocol (mirrors YARV's native_mutex_reinitialize_atfork,
// paper Listing 2): prepare_fork() pins the internal mutex so no
// thread is mid-acquire at fork time; parent_atfork() unpins;
// child_atfork() abandons the old state block (it may reference
// threads that no longer exist) and installs a fresh one owned by the
// surviving thread. The abandoned allocation is intentionally leaked —
// destroying a mutex that other (vanished) threads might have touched
// is undefined behaviour, and the leak is bounded by one small block
// per fork.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace dionea::vm {

// Pseudo thread-ids for non-interpreter GIL users.
inline constexpr std::int64_t kExternalTid = -2;

class Gil {
 public:
  Gil();
  ~Gil();
  Gil(const Gil&) = delete;
  Gil& operator=(const Gil&) = delete;

  void acquire(std::int64_t tid);
  void release();

  // Cooperative switch point: hand the lock to a waiter, if any.
  void yield(std::int64_t tid);

  // Take the lock back after an out-of-band release during replay — a
  // park that is NOT part of the recording (run-to-step pause,
  // checkpoint pipe park). acquire() would consume a kGilAcquire
  // record that was never logged and desync the replay; this path
  // waits for the lock and takes ownership directly, bypassing both
  // the log and the ticket line.
  void reacquire_out_of_band(std::int64_t tid);

  std::int64_t owner() const;
  bool held_by(std::int64_t tid) const;

  // --- lock-free mirrors (crash reporter / watchdog) ---
  // owner() takes the state mutex, which a post-mortem signal handler
  // and a watchdog probing a wedged holder must never do. The owner
  // mirror is maintained unconditionally (one relaxed store per
  // acquire/release); the held-since timestamp only while a hold
  // watch is armed, so the clock read stays off the default path.
  std::int64_t owner_relaxed() const noexcept {
    return owner_mirror_.load(std::memory_order_relaxed);
  }
  // 0 = not held, or the watch was off when the holder acquired.
  std::int64_t held_since_nanos() const noexcept {
    return held_since_.load(std::memory_order_relaxed);
  }
  void set_hold_watch(bool on) noexcept {
    hold_watch_.store(on, std::memory_order_relaxed);
  }

  // --- fork support ---
  void prepare_fork();
  void parent_atfork();
  void child_atfork(std::int64_t surviving_tid);

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool held = false;
    std::int64_t owner = 0;
    int waiters = 0;
    // FIFO fairness (see gil.cpp): tickets are granted in order, so a
    // yielding thread really does hand the lock to the next waiter.
    std::uint64_t next_ticket = 0;
    std::uint64_t serving = 0;
    // When the current holder acquired (0 = metrics were off at
    // acquire time); release() turns it into a gil_hold_nanos sample.
    std::int64_t acquired_nanos = 0;
  };
  void note_granted(std::int64_t tid) noexcept;
  void note_released() noexcept;

  std::unique_ptr<State> state_;
  std::unique_lock<std::mutex> fork_lock_;  // held between prepare and parent
  std::atomic<std::int64_t> owner_mirror_{0};
  std::atomic<std::int64_t> held_since_{0};
  std::atomic<bool> hold_watch_{false};
};

// RAII GIL hold for external (non-interpreter) threads such as the
// debug server's listener thread inspecting VM state.
class GilHold {
 public:
  explicit GilHold(Gil& gil, std::int64_t tid = kExternalTid)
      : gil_(gil) {
    gil_.acquire(tid);
  }
  ~GilHold() { gil_.release(); }
  GilHold(const GilHold&) = delete;
  GilHold& operator=(const GilHold&) = delete;

 private:
  Gil& gil_;
};

}  // namespace dionea::vm
