// Interpreter threads (the "UE" of the paper's terminology, §2).
//
// Each MiniLang thread is backed by a detached OS thread that contends
// for the GIL. The InterpThread object outlives the OS thread (it is
// shared_ptr-held by the registry and by ThreadHandle values), which
// is what keeps `join` and the fork handlers safe: after fork, the
// child drops every InterpThread but the forking one — the exact
// semantics of rb_thread_atfork (paper Listing 1).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace dionea::vm {

struct CodeCache;

enum class ThreadState : int {
  kRunnable,        // executing bytecode or waiting for the GIL
  kBlockedForever,  // mutex lock / queue pop / cond wait / join / sleep()
  kBlockedTimed,    // sleep(n) — will wake by itself
  kIoBlocked,       // blocking syscall (pipe read, waitpid, ipc queue)
  kDebugParked,     // suspended by the debugger inside a trace callback
  kDead,
};

const char* thread_state_name(ThreadState state) noexcept;

enum class InterruptReason : int {
  kNone = 0,
  kKill,      // VM shutdown (main thread exited) — die silently
  kDeadlock,  // global deadlock detected — raise `deadlock detected (fatal)`
};

class InterpThread {
 public:
  InterpThread(std::int64_t id, std::string name)
      : id_(id), name_(std::move(name)) {}

  std::int64_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  bool is_main() const noexcept { return id_ == 1; }

  // ---- interpreter state ----
  // Owned by the executing OS thread. The debugger reads it only while
  // the thread is parked or while holding the GIL (both exclude
  // execution), mirroring how in-process Python debuggers inspect
  // frames.
  struct Frame {
    std::shared_ptr<Closure> closure;
    // Executable (possibly quickened) code for this frame. Owned by the
    // Vm, keyed by proto; pinned by CodeCache::in_use while this frame
    // exists. `ip` is an offset into cache->code, which is always the
    // same length as closure->proto->chunk.
    CodeCache* cache = nullptr;
    size_t ip = 0;     // offset into cache->code (== chunk offsets)
    size_t base = 0;   // stack index of local slot 0
    int line = 0;      // most recent kTraceLine in this frame
  };
  std::vector<Value> stack;
  std::vector<Frame> frames;

  // ---- scheduling state (guarded by Vm's scheduler mutex) ----
  ThreadState state = ThreadState::kRunnable;
  std::string block_note;  // e.g. "Queue#pop", shown by the debugger
  std::string block_file;
  int block_line = 0;

  // Set under the scheduler mutex; read lock-free at safepoints.
  std::atomic<InterruptReason> interrupt{InterruptReason::kNone};

  // Bumped on every state transition; the deadlock detector uses it to
  // tell "still stuck in the same wait" apart from "woke and re-blocked".
  std::uint64_t block_epoch = 0;

  // Statements retired by this thread (bench/ uses the VM-wide sum).
  std::uint64_t stmt_count = 0;

  // Parking spot for sleep() and for debugger suspension; waits on it
  // always go through Vm::wait_interruptible.
  std::mutex park_mutex;
  std::condition_variable park_cv;

  // Opaque per-thread slot for the attached debugger (accessed only
  // from this thread's trace callbacks, i.e. under the GIL). Keeping it
  // on the thread makes the per-line hot path map-lookup free.
  std::shared_ptr<void> debugger_slot;

  // True for ephemeral debugger-evaluation threads: their execution
  // must not re-enter the trace hook (the debugger is already inside a
  // command when it evaluates).
  bool suppress_trace = false;

  // ---- completion ----
  // done flips exactly once, when the thread leaves the interpreter.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Value result;
  bool has_error = false;
  VmError error;

  void mark_done(Value value) {
    std::scoped_lock lock(done_mutex);
    result = std::move(value);
    done = true;
    done_cv.notify_all();
  }
  void mark_failed(VmError err) {
    std::scoped_lock lock(done_mutex);
    has_error = true;
    error = std::move(err);
    done = true;
    done_cv.notify_all();
  }
  bool is_done() {
    std::scoped_lock lock(done_mutex);
    return done;
  }

 private:
  std::int64_t id_;
  std::string name_;
};

// Debugger-facing snapshot of one thread.
struct ThreadInfo {
  std::int64_t id = 0;
  std::string name;
  ThreadState state = ThreadState::kRunnable;
  std::string file;
  int line = 0;
  std::string block_note;
  int frame_depth = 0;
};

// Debugger-facing snapshot of one frame.
struct FrameInfo {
  std::string function;
  std::string file;
  int line = 0;
};

}  // namespace dionea::vm
