// Per-chunk code cache: quickened bytecode + inline-cache slots.
//
// A CodeCache is the mutable execution state derived from an immutable
// FunctionProto. It is owned by ONE Vm (keyed by proto address in
// Vm::code_caches_) and mutated only under that Vm's GIL, which is
// what makes monomorphic IC writes race-free without per-site atomics.
//
// The design deliberately mirrors the two box64 dynarec failure modes
// this repo's corpus documents (SNIPPETS.md, cases 001/004):
//
//   001 — stale `in_used` counters after fork. box64 dynablocks carry
//   an in-use count; a multi-threaded parent forks and the child
//   inherits counts contributed by threads that do not exist in the
//   child, so blocks can never be purged. Our analog is
//   CodeCache::in_use, incremented per executing frame. Fork handler C
//   (Vm::internal_fork_child) RECOMPUTES it from the surviving
//   thread's real frames instead of trusting the inherited value.
//
//   004 — atfork thread-safety of the translator. A sibling thread may
//   be mid-execution (frames pinning caches, ICs half-trained) at the
//   fork instant. The child must not trust any cached fast-path state:
//   handler C resets every IC slot and bumps the quicken generation in
//   Vm::line_gate_, which forces every quickened kTraceLineQ site
//   through its slow path once to resynchronise its gate snapshot.
//
// Quickening is a same-length in-place rewrite (each quickened op has
// the width of the op it replaces), so instruction offsets, jump
// targets, the line table and record/replay schedule points are
// byte-for-byte identical to the verified original. DIONEA_QUICKEN=0
// keeps the verified-but-unrewritten copy for differential testing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/bytecode.hpp"
#include "vm/value.hpp"

namespace dionea::vm {

// One interned global binding. Slots live in a deque owned by the Vm
// and are never erased, so a GlobalSlot* cached in an IC stays valid
// for the Vm's lifetime (and across fork — fork copies the memory).
struct GlobalSlot {
  std::string name;
  Value value;
};

// Monomorphic inline cache for one kGetGlobal/kSetGlobal site.
struct GlobalIc {
  std::uint16_t name_const = 0;   // constant index of the name string
  GlobalSlot* slot = nullptr;     // trained target; nullptr = cold
};

struct CodeCache {
  // Shared ownership, not a raw pointer: Vm::code_caches_ is keyed by
  // proto address, and ephemeral protos (debugger eval snippets) die
  // while their cache entry survives. Pinning the proto here keeps the
  // key's address from being recycled for a different function, which
  // would silently serve this cache's code to it.
  std::shared_ptr<const FunctionProto> proto;
  // Same-length (possibly quickened) copy of proto->chunk.code().
  std::vector<std::uint8_t> code;
  // IC table; kGetGlobalIC/kSetGlobalIC operands index into this.
  std::vector<GlobalIc> ics;
  // Vm::line_gate_ value (armed bit masked off) the quickened
  // kTraceLineQ sites last synchronised with. A mismatch sends the
  // next statement through the out-of-line gate path.
  std::uint64_t gate_snapshot = 0;
  // Frames currently executing from this cache (the box64-001
  // counter). Maintained by push_frame/pop_frame; recomputed from real
  // frames by fork handler C in the child.
  std::uint32_t in_use = 0;
  bool quickened = false;

  // Drop all trained IC targets (fork handler C, case 004).
  void reset_ics() noexcept {
    for (GlobalIc& ic : ics) ic.slot = nullptr;
  }
};

// Build the cache body for a verified proto: copy the code and, when
// `quicken` is set, rewrite kTraceLine -> kTraceLineQ and
// kGetGlobal/kSetGlobal -> the IC forms (allocating an IC slot per
// site and rewriting the operand to the IC index).
void build_code_cache(const FunctionProto& proto, bool quicken,
                      CodeCache& cache);

// Aggregate view for tests, the debugger self-check and `stats`.
struct CodeCacheStats {
  std::size_t caches = 0;
  std::size_t quickened = 0;
  std::size_t ic_sites = 0;
  std::size_t trained_ics = 0;
  std::uint64_t total_in_use = 0;
};

}  // namespace dionea::vm
