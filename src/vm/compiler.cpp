#include "vm/compiler.hpp"

#include <utility>
#include <vector>

#include "support/strings.hpp"
#include "vm/parser.hpp"

namespace dionea::vm {
namespace {

// Compilation context for one function (linked to its lexical parent).
class FnCtx {
 public:
  FnCtx(FnCtx* enclosing, std::shared_ptr<FunctionProto> proto,
        bool top_level)
      : enclosing_(enclosing), proto_(std::move(proto)),
        top_level_(top_level) {}

  FnCtx* enclosing() noexcept { return enclosing_; }
  FunctionProto& proto() noexcept { return *proto_; }
  Chunk& chunk() noexcept { return proto_->chunk; }
  bool top_level() const noexcept { return top_level_; }

  int resolve_local(const std::string& name) const {
    const auto& names = proto_->local_names;
    for (size_t i = names.size(); i-- > 0;) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  int declare_local(const std::string& name) {
    proto_->local_names.push_back(name);
    return static_cast<int>(proto_->local_names.size() - 1);
  }

  // Resolve `name` as a capture from the enclosing chain, adding the
  // capture to this proto if found. Returns -1 when the name is not a
  // local anywhere up the chain (=> global).
  int resolve_capture(const std::string& name) {
    for (size_t i = 0; i < proto_->capture_names.size(); ++i) {
      if (proto_->capture_names[i] == name) return static_cast<int>(i);
    }
    if (enclosing_ == nullptr) return -1;
    // Top-level "locals" are globals; never capture from top level.
    if (!enclosing_->top_level()) {
      int local = enclosing_->resolve_local(name);
      if (local >= 0) {
        proto_->captures.push_back(
            CaptureSource{false, static_cast<std::uint16_t>(local)});
        proto_->capture_names.push_back(name);
        return static_cast<int>(proto_->captures.size() - 1);
      }
    }
    int up = enclosing_->resolve_capture(name);
    if (up >= 0) {
      proto_->captures.push_back(
          CaptureSource{true, static_cast<std::uint16_t>(up)});
      proto_->capture_names.push_back(name);
      return static_cast<int>(proto_->captures.size() - 1);
    }
    return -1;
  }

  struct LoopCtx {
    size_t start = 0;                   // loop condition offset
    std::vector<size_t> break_jumps;    // operand offsets to patch to exit
  };
  std::vector<LoopCtx> loops;

 private:
  FnCtx* enclosing_;
  std::shared_ptr<FunctionProto> proto_;
  bool top_level_;
};

class Compiler {
 public:
  explicit Compiler(std::string file) : file_(std::move(file)) {}

  Result<std::shared_ptr<const FunctionProto>> compile(
      const Program& program) {
    auto proto = std::make_shared<FunctionProto>();
    proto->name = "<main>";
    proto->file = file_;
    proto->arity = 0;
    FnCtx ctx(nullptr, proto, /*top_level=*/true);
    for (const StmtPtr& stmt : program.statements) {
      DIONEA_RETURN_IF_ERROR(compile_stmt(ctx, *stmt));
    }
    emit_implicit_return(ctx, last_line_);
    return std::shared_ptr<const FunctionProto>(proto);
  }

 private:
  Error error_at(int line, const std::string& message) const {
    return Error(ErrorCode::kInvalidArgument,
                 strings::format(
                     "compile error at %s: %s",
                     strings::source_location(file_, line).c_str(),
                     message.c_str()));
  }

  void emit_implicit_return(FnCtx& ctx, int line) {
    ctx.chunk().write(Op::kNil, line);
    ctx.chunk().write(Op::kReturn, line);
  }

  Status compile_fn_body(FnCtx& ctx, const FnDecl& decl) {
    for (const StmtPtr& stmt : decl.body) {
      DIONEA_RETURN_IF_ERROR(compile_stmt(ctx, *stmt));
    }
    emit_implicit_return(ctx, last_line_);
    return Status::ok();
  }

  Result<std::shared_ptr<FunctionProto>> compile_fn(FnCtx& enclosing,
                                                    const FnDecl& decl) {
    auto proto = std::make_shared<FunctionProto>();
    proto->name = decl.name;
    proto->file = file_;
    proto->arity = static_cast<int>(decl.params.size());
    proto->line = decl.line;
    FnCtx ctx(&enclosing, proto, /*top_level=*/false);
    for (const std::string& param : decl.params) {
      for (const std::string& existing : proto->local_names) {
        if (existing == param) {
          return error_at(decl.line, "duplicate parameter '" + param + "'");
        }
      }
      ctx.declare_local(param);
    }
    DIONEA_RETURN_IF_ERROR(compile_fn_body(ctx, decl));
    return proto;
  }

  Status compile_stmt(FnCtx& ctx, const Stmt& stmt) {
    last_line_ = stmt.line;
    Chunk& chunk = ctx.chunk();
    chunk.write(Op::kTraceLine, stmt.line);
    chunk.write_u16(static_cast<std::uint16_t>(stmt.line), stmt.line);

    switch (stmt.kind) {
      case StmtKind::kExpr:
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.expr));
        chunk.write(Op::kPop, stmt.line);
        return Status::ok();

      case StmtKind::kAssign:
        return compile_assign(ctx, stmt);

      case StmtKind::kFnDef: {
        DIONEA_ASSIGN_OR_RETURN(auto proto, compile_fn(ctx, *stmt.fn));
        std::uint16_t idx = chunk.add_constant(
            Value::str(stmt.fn->name));  // name constant for kSetGlobal
        std::uint16_t proto_idx = chunk.add_constant(Value(
            std::make_shared<Closure>(Closure{proto, {}})));
        // kClosure re-captures at runtime; the constant stores the proto
        // wrapped in an empty closure value.
        chunk.write(Op::kClosure, stmt.line);
        chunk.write_u16(proto_idx, stmt.line);
        chunk.write(Op::kSetGlobal, stmt.line);
        chunk.write_u16(idx, stmt.line);
        chunk.write(Op::kPop, stmt.line);
        return Status::ok();
      }

      case StmtKind::kIf:
        return compile_if(ctx, stmt);
      case StmtKind::kWhile:
        return compile_while(ctx, stmt);
      case StmtKind::kForIn:
        return compile_for(ctx, stmt);

      case StmtKind::kReturn:
        if (stmt.expr) {
          DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.expr));
        } else {
          chunk.write(Op::kNil, stmt.line);
        }
        chunk.write(Op::kReturn, stmt.line);
        return Status::ok();

      case StmtKind::kBreak: {
        if (ctx.loops.empty()) {
          return error_at(stmt.line, "'break' outside loop");
        }
        size_t operand = chunk.emit_jump(Op::kJump, stmt.line);
        ctx.loops.back().break_jumps.push_back(operand);
        return Status::ok();
      }
      case StmtKind::kContinue: {
        if (ctx.loops.empty()) {
          return error_at(stmt.line, "'continue' outside loop");
        }
        chunk.emit_loop(ctx.loops.back().start, stmt.line);
        return Status::ok();
      }
    }
    return error_at(stmt.line, "unknown statement kind");
  }

  // ---- superinstruction fusion helpers ----
  // Fusion is a pure emission-time strategy: fused forms have the
  // stack effect of the sequence they replace, carry the same line
  // info, and are invisible to the lint (locals only, no globals).

  // Slot of `e` when it is a plain local read in the current fn.
  int local_slot_of(FnCtx& ctx, const Expr& e) {
    if (e.kind != ExprKind::kName || ctx.top_level()) return -1;
    return ctx.resolve_local(e.str_val);
  }

  static bool scalar_literal(const Expr& e) {
    return e.kind == ExprKind::kIntLit || e.kind == ExprKind::kFloatLit ||
           e.kind == ExprKind::kStrLit;
  }

  std::uint16_t literal_constant(FnCtx& ctx, const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: return ctx.chunk().add_constant(Value(e.int_val));
      case ExprKind::kFloatLit:
        return ctx.chunk().add_constant(Value(e.float_val));
      default: return ctx.chunk().add_constant(Value::str(e.str_val));
    }
  }

  Status compile_assign(FnCtx& ctx, const Stmt& stmt) {
    Chunk& chunk = ctx.chunk();
    const Expr& target = *stmt.expr;
    if (target.kind == ExprKind::kName) {
      // `x = <literal>` to a local: fuse kConst+kSetLocal+kPop into a
      // single stack-neutral kConstSetLocal. Captures keep the
      // generic form (kSetCapture writes the closure's copy).
      if (!ctx.top_level() && scalar_literal(*stmt.value)) {
        int slot = ctx.resolve_local(target.str_val);
        if (slot < 0 && ctx.resolve_capture(target.str_val) < 0) {
          slot = ctx.declare_local(target.str_val);
        }
        if (slot >= 0) {
          std::uint16_t cidx = literal_constant(ctx, *stmt.value);
          chunk.write(Op::kConstSetLocal, stmt.line);
          chunk.write_u16(cidx, stmt.line);
          chunk.write_u16(static_cast<std::uint16_t>(slot), stmt.line);
          return Status::ok();
        }
      }
      DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.value));
      const std::string& name = target.str_val;
      if (!ctx.top_level()) {
        int slot = ctx.resolve_local(name);
        if (slot < 0) {
          int capture = ctx.resolve_capture(name);
          if (capture >= 0) {
            // Write to the closure's own copy of the capture.
            chunk.write(Op::kSetCapture, stmt.line);
            chunk.write_u16(static_cast<std::uint16_t>(capture), stmt.line);
            chunk.write(Op::kPop, stmt.line);
            return Status::ok();
          }
          slot = ctx.declare_local(name);
        }
        chunk.write(Op::kSetLocal, stmt.line);
        chunk.write_u16(static_cast<std::uint16_t>(slot), stmt.line);
        chunk.write(Op::kPop, stmt.line);
        return Status::ok();
      }
      std::uint16_t idx = chunk.add_constant(Value::str(name));
      chunk.write(Op::kSetGlobal, stmt.line);
      chunk.write_u16(idx, stmt.line);
      chunk.write(Op::kPop, stmt.line);
      return Status::ok();
    }
    // target[index] = value
    DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *target.lhs));
    DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *target.rhs));
    DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.value));
    chunk.write(Op::kIndexSet, stmt.line);
    chunk.write(Op::kPop, stmt.line);
    return Status::ok();
  }

  Status compile_if(FnCtx& ctx, const Stmt& stmt) {
    Chunk& chunk = ctx.chunk();
    std::vector<size_t> exit_jumps;
    for (size_t i = 0; i < stmt.arms.size(); ++i) {
      const IfArm& arm = stmt.arms[i];
      size_t skip_operand = 0;
      bool has_condition = arm.condition != nullptr;
      if (has_condition) {
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *arm.condition));
        skip_operand = chunk.emit_jump(Op::kJumpIfFalse, stmt.line);
      }
      for (const StmtPtr& body_stmt : arm.body) {
        DIONEA_RETURN_IF_ERROR(compile_stmt(ctx, *body_stmt));
      }
      bool is_last = i + 1 == stmt.arms.size();
      if (!is_last) {
        exit_jumps.push_back(chunk.emit_jump(Op::kJump, stmt.line));
      }
      if (has_condition) chunk.patch_jump(skip_operand);
    }
    for (size_t operand : exit_jumps) chunk.patch_jump(operand);
    return Status::ok();
  }

  Status compile_while(FnCtx& ctx, const Stmt& stmt) {
    Chunk& chunk = ctx.chunk();
    FnCtx::LoopCtx loop;
    loop.start = chunk.size();
    ctx.loops.push_back(loop);

    DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.expr));
    size_t exit_operand = chunk.emit_jump(Op::kJumpIfFalse, stmt.line);
    for (const StmtPtr& body_stmt : stmt.body) {
      DIONEA_RETURN_IF_ERROR(compile_stmt(ctx, *body_stmt));
    }
    chunk.emit_loop(ctx.loops.back().start, stmt.line);
    chunk.patch_jump(exit_operand);
    for (size_t operand : ctx.loops.back().break_jumps) {
      chunk.patch_jump(operand);
    }
    ctx.loops.pop_back();
    return Status::ok();
  }

  Status compile_for(FnCtx& ctx, const Stmt& stmt) {
    Chunk& chunk = ctx.chunk();
    // Hidden iterator state: two consecutive local slots (list, index).
    // Hidden slots exist even at top level (they are unnameable).
    int iter_slot = ctx.declare_local(
        strings::format("$iter%zu", chunk.size()));
    int idx_slot = ctx.declare_local(
        strings::format("$idx%zu", chunk.size()));
    DIONEA_CHECK(idx_slot == iter_slot + 1, "iterator slots not adjacent");

    DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *stmt.expr));
    chunk.write(Op::kIterNew, stmt.line);
    chunk.write(Op::kSetLocal, stmt.line);
    chunk.write_u16(static_cast<std::uint16_t>(iter_slot), stmt.line);
    chunk.write(Op::kPop, stmt.line);
    std::uint16_t zero = chunk.add_constant(Value(std::int64_t{0}));
    chunk.write(Op::kConst, stmt.line);
    chunk.write_u16(zero, stmt.line);
    chunk.write(Op::kSetLocal, stmt.line);
    chunk.write_u16(static_cast<std::uint16_t>(idx_slot), stmt.line);
    chunk.write(Op::kPop, stmt.line);

    FnCtx::LoopCtx loop;
    loop.start = chunk.size();
    ctx.loops.push_back(loop);

    // kIterNext: u16 iter slot, u16 exit offset (patched).
    chunk.write(Op::kIterNext, stmt.line);
    chunk.write_u16(static_cast<std::uint16_t>(iter_slot), stmt.line);
    size_t exit_operand = chunk.size();
    chunk.write_u16(0xffff, stmt.line);

    // Bind the loop variable.
    if (!ctx.top_level()) {
      int slot = ctx.resolve_local(stmt.name);
      if (slot < 0) slot = ctx.declare_local(stmt.name);
      chunk.write(Op::kSetLocal, stmt.line);
      chunk.write_u16(static_cast<std::uint16_t>(slot), stmt.line);
    } else {
      std::uint16_t idx = chunk.add_constant(Value::str(stmt.name));
      chunk.write(Op::kSetGlobal, stmt.line);
      chunk.write_u16(idx, stmt.line);
    }
    chunk.write(Op::kPop, stmt.line);

    for (const StmtPtr& body_stmt : stmt.body) {
      DIONEA_RETURN_IF_ERROR(compile_stmt(ctx, *body_stmt));
    }
    chunk.emit_loop(ctx.loops.back().start, stmt.line);
    chunk.patch_jump(exit_operand);
    for (size_t operand : ctx.loops.back().break_jumps) {
      chunk.patch_jump(operand);
    }
    ctx.loops.pop_back();
    return Status::ok();
  }

  Status compile_expr(FnCtx& ctx, const Expr& expr) {
    Chunk& chunk = ctx.chunk();
    switch (expr.kind) {
      case ExprKind::kIntLit: {
        std::uint16_t idx = chunk.add_constant(Value(expr.int_val));
        chunk.write(Op::kConst, expr.line);
        chunk.write_u16(idx, expr.line);
        return Status::ok();
      }
      case ExprKind::kFloatLit: {
        std::uint16_t idx = chunk.add_constant(Value(expr.float_val));
        chunk.write(Op::kConst, expr.line);
        chunk.write_u16(idx, expr.line);
        return Status::ok();
      }
      case ExprKind::kStrLit: {
        std::uint16_t idx = chunk.add_constant(Value::str(expr.str_val));
        chunk.write(Op::kConst, expr.line);
        chunk.write_u16(idx, expr.line);
        return Status::ok();
      }
      case ExprKind::kBoolLit:
        chunk.write(expr.bool_val ? Op::kTrue : Op::kFalse, expr.line);
        return Status::ok();
      case ExprKind::kNilLit:
        chunk.write(Op::kNil, expr.line);
        return Status::ok();

      case ExprKind::kName: {
        const std::string& name = expr.str_val;
        if (!ctx.top_level()) {
          int slot = ctx.resolve_local(name);
          if (slot >= 0) {
            chunk.write(Op::kGetLocal, expr.line);
            chunk.write_u16(static_cast<std::uint16_t>(slot), expr.line);
            return Status::ok();
          }
          int capture = ctx.resolve_capture(name);
          if (capture >= 0) {
            chunk.write(Op::kGetCapture, expr.line);
            chunk.write_u16(static_cast<std::uint16_t>(capture), expr.line);
            return Status::ok();
          }
        }
        std::uint16_t idx = chunk.add_constant(Value::str(name));
        chunk.write(Op::kGetGlobal, expr.line);
        chunk.write_u16(idx, expr.line);
        return Status::ok();
      }

      case ExprKind::kUnary:
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.rhs));
        chunk.write(expr.op == TokenKind::kMinus ? Op::kNeg : Op::kNot,
                    expr.line);
        return Status::ok();

      case ExprKind::kBinary: {
        Op op;
        switch (expr.op) {
          case TokenKind::kPlus: op = Op::kAdd; break;
          case TokenKind::kMinus: op = Op::kSub; break;
          case TokenKind::kStar: op = Op::kMul; break;
          case TokenKind::kSlash: op = Op::kDiv; break;
          case TokenKind::kPercent: op = Op::kMod; break;
          case TokenKind::kEq: op = Op::kEq; break;
          case TokenKind::kNe: op = Op::kNe; break;
          case TokenKind::kLt: op = Op::kLt; break;
          case TokenKind::kLe: op = Op::kLe; break;
          case TokenKind::kGt: op = Op::kGt; break;
          case TokenKind::kGe: op = Op::kGe; break;
          default:
            return error_at(expr.line, "unknown binary operator");
        }
        // Fuse the two hottest operand shapes: local⊕local and
        // local⊕literal (loop conditions, accumulators). The fused
        // ops keep the sequence's net stack effect (+1).
        if (op_is_fusable_binop(op)) {
          const int lhs_slot = local_slot_of(ctx, *expr.lhs);
          if (lhs_slot >= 0) {
            const int rhs_slot = local_slot_of(ctx, *expr.rhs);
            if (rhs_slot >= 0) {
              chunk.write(Op::kLocLocBin, expr.line);
              chunk.write_u16(static_cast<std::uint16_t>(lhs_slot),
                              expr.line);
              chunk.write_u16(static_cast<std::uint16_t>(rhs_slot),
                              expr.line);
              chunk.write_u8(static_cast<std::uint8_t>(op), expr.line);
              return Status::ok();
            }
            if (scalar_literal(*expr.rhs)) {
              std::uint16_t cidx = literal_constant(ctx, *expr.rhs);
              chunk.write(Op::kLocConstBin, expr.line);
              chunk.write_u16(static_cast<std::uint16_t>(lhs_slot),
                              expr.line);
              chunk.write_u16(cidx, expr.line);
              chunk.write_u8(static_cast<std::uint8_t>(op), expr.line);
              return Status::ok();
            }
          }
        }
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.lhs));
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.rhs));
        chunk.write(op, expr.line);
        return Status::ok();
      }

      case ExprKind::kLogical: {
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.lhs));
        Op jump_op = expr.op == TokenKind::kAnd ? Op::kJumpIfFalsePeek
                                                : Op::kJumpIfTruePeek;
        size_t short_circuit = chunk.emit_jump(jump_op, expr.line);
        chunk.write(Op::kPop, expr.line);
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.rhs));
        chunk.patch_jump(short_circuit);
        return Status::ok();
      }

      case ExprKind::kCall: {
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.callee));
        if (expr.args.size() > 250) {
          return error_at(expr.line, "too many arguments");
        }
        for (const ExprPtr& arg : expr.args) {
          DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *arg));
        }
        chunk.write(Op::kCall, expr.line);
        chunk.write_u8(static_cast<std::uint8_t>(expr.args.size()),
                       expr.line);
        return Status::ok();
      }

      case ExprKind::kMethod: {
        // receiver.name(args) => name(receiver, args...)
        std::uint16_t idx = chunk.add_constant(Value::str(expr.str_val));
        chunk.write(Op::kGetGlobal, expr.line);
        chunk.write_u16(idx, expr.line);
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.callee));
        if (expr.args.size() > 249) {
          return error_at(expr.line, "too many arguments");
        }
        for (const ExprPtr& arg : expr.args) {
          DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *arg));
        }
        chunk.write(Op::kCall, expr.line);
        chunk.write_u8(static_cast<std::uint8_t>(expr.args.size() + 1),
                       expr.line);
        return Status::ok();
      }

      case ExprKind::kIndex:
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.lhs));
        DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *expr.rhs));
        chunk.write(Op::kIndexGet, expr.line);
        return Status::ok();

      case ExprKind::kListLit:
        for (const ExprPtr& elem : expr.args) {
          DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *elem));
        }
        chunk.write(Op::kBuildList, expr.line);
        chunk.write_u16(static_cast<std::uint16_t>(expr.args.size()),
                        expr.line);
        return Status::ok();

      case ExprKind::kMapLit:
        for (const ExprPtr& elem : expr.args) {
          DIONEA_RETURN_IF_ERROR(compile_expr(ctx, *elem));
        }
        chunk.write(Op::kBuildMap, expr.line);
        chunk.write_u16(static_cast<std::uint16_t>(expr.args.size() / 2),
                        expr.line);
        return Status::ok();

      case ExprKind::kLambda: {
        DIONEA_ASSIGN_OR_RETURN(auto proto, compile_fn(ctx, *expr.fn));
        std::uint16_t proto_idx = chunk.add_constant(
            Value(std::make_shared<Closure>(Closure{proto, {}})));
        chunk.write(Op::kClosure, expr.line);
        chunk.write_u16(proto_idx, expr.line);
        return Status::ok();
      }
    }
    return error_at(expr.line, "unknown expression kind");
  }

  std::string file_;
  int last_line_ = 0;
};

}  // namespace

Result<std::shared_ptr<const FunctionProto>> compile_program(
    const Program& program, const std::string& file) {
  Compiler compiler(file);
  return compiler.compile(program);
}

Result<std::shared_ptr<const FunctionProto>> compile_source(
    std::string_view source, const std::string& file) {
  DIONEA_ASSIGN_OR_RETURN(Program program, parse_source(source));
  return compile_program(program, file);
}

}  // namespace dionea::vm
