// Load-time bytecode verifier.
//
// The dispatch loop runs with no per-instruction bounds checks: opcode
// fetches, operand reads, jump arithmetic, constant/local/capture
// indexing and stack effects are all unguarded. That is only sound
// because every chunk is verified once, before its first frame is
// pushed (Vm::ensure_code_cache). The verifier establishes:
//
//   * every opcode byte is a defined, non-quickened opcode;
//   * every operand is fully inside the code array (a truncated chunk
//     cannot make read_u16 read past the end);
//   * every jump/loop/iter-exit target lands on an instruction
//     boundary inside the chunk, and no instruction falls off the end;
//   * constant indices are in range and kind-correct (global names are
//     strings, kClosure templates are closures);
//   * local slots, capture indices and fused sub-opcodes are in range;
//   * operand-stack depth is statically balanced: never negative,
//     consistent at every join point, bounded, and ≥1 wherever an op
//     peeks or pops.
//
// Interruptibility needs no static rule here: the only backward edge
// is kLoop, and the dispatch loop polls the thread interrupt flag on
// every kLoop, so even a verified chunk with no kTraceLine in a cycle
// (a mutated chunk from the fuzz suite, say) can always be killed.
#pragma once

#include "support/result.hpp"
#include "vm/bytecode.hpp"

namespace dionea::vm {

// Returns ok when `proto.chunk` is safe for check-free dispatch, or an
// kInvalidArgument error naming the offending offset otherwise.
Status verify_chunk(const FunctionProto& proto);

}  // namespace dionea::vm
