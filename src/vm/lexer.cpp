#include "vm/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace dionea::vm {

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kInt: return "int";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kName: return "name";
    case TokenKind::kFn: return "fn";
    case TokenKind::kIf: return "if";
    case TokenKind::kElif: return "elif";
    case TokenKind::kElse: return "else";
    case TokenKind::kWhile: return "while";
    case TokenKind::kFor: return "for";
    case TokenKind::kIn: return "in";
    case TokenKind::kEnd: return "end";
    case TokenKind::kReturn: return "return";
    case TokenKind::kBreak: return "break";
    case TokenKind::kContinue: return "continue";
    case TokenKind::kTrue: return "true";
    case TokenKind::kFalse: return "false";
    case TokenKind::kNil: return "nil";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kColon: return ":";
    case TokenKind::kAssign: return "=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kEof: return "eof";
    case TokenKind::kError: return "error";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"fn", TokenKind::kFn},         {"if", TokenKind::kIf},
      {"elif", TokenKind::kElif},     {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile},   {"for", TokenKind::kFor},
      {"in", TokenKind::kIn},         {"end", TokenKind::kEnd},
      {"return", TokenKind::kReturn}, {"break", TokenKind::kBreak},
      {"continue", TokenKind::kContinue},
      {"true", TokenKind::kTrue},     {"false", TokenKind::kFalse},
      {"nil", TokenKind::kNil},       {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},         {"not", TokenKind::kNot},
  };
  return kKeywords;
}

}  // namespace

char Lexer::peek(int ahead) const noexcept {
  size_t idx = pos_ + static_cast<size_t>(ahead);
  return idx < source_.size() ? source_[idx] : '\0';
}

char Lexer::advance() noexcept {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) noexcept {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_ws_and_comments() noexcept {
  while (pos_ < source_.size()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
    } else if (c == '#') {
      while (pos_ < source_.size() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(TokenKind kind, std::string text) const {
  return Token{kind, std::move(text), tok_line_, tok_column_};
}

Token Lexer::error(std::string message) const {
  return Token{TokenKind::kError, std::move(message), tok_line_, tok_column_};
}

Token Lexer::lex_number() {
  size_t start = pos_;
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  bool is_float = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    advance();  // '.'
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  std::string text(source_.substr(start, pos_ - start));
  return make(is_float ? TokenKind::kFloat : TokenKind::kInt, std::move(text));
}

Token Lexer::lex_string() {
  std::string out;
  while (true) {
    if (pos_ >= source_.size()) return error("unterminated string literal");
    char c = advance();
    if (c == '"') break;
    if (c == '\n') return error("newline inside string literal");
    if (c == '\\') {
      if (pos_ >= source_.size()) return error("unterminated escape");
      char esc = advance();
      switch (esc) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        case '0': out += '\0'; break;
        default:
          return error(std::string("unknown escape \\") + esc);
      }
    } else {
      out += c;
    }
  }
  return make(TokenKind::kString, std::move(out));
}

Token Lexer::lex_name() {
  size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    advance();
  }
  std::string_view text = source_.substr(start, pos_ - start);
  auto it = keywords().find(text);
  if (it != keywords().end()) return make(it->second, std::string(text));
  return make(TokenKind::kName, std::string(text));
}

Token Lexer::next() {
  skip_ws_and_comments();
  tok_line_ = line_;
  tok_column_ = column_;
  if (pos_ >= source_.size()) return make(TokenKind::kEof);

  char c = peek();
  if (c == '\n') {
    while (peek() == '\n') {
      advance();
      skip_ws_and_comments();
    }
    if (emitted_newline_) {
      // Collapse runs and suppress leading newlines: re-lex from here.
      return next();
    }
    emitted_newline_ = true;
    return make(TokenKind::kNewline);
  }
  emitted_newline_ = false;

  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_name();
  }

  advance();
  switch (c) {
    case '(': return make(TokenKind::kLParen);
    case ')': return make(TokenKind::kRParen);
    case '[': return make(TokenKind::kLBracket);
    case ']': return make(TokenKind::kRBracket);
    case '{': return make(TokenKind::kLBrace);
    case '}': return make(TokenKind::kRBrace);
    case ',': return make(TokenKind::kComma);
    case '.': return make(TokenKind::kDot);
    case ':': return make(TokenKind::kColon);
    case '+': return make(TokenKind::kPlus);
    case '-': return make(TokenKind::kMinus);
    case '*': return make(TokenKind::kStar);
    case '/': return make(TokenKind::kSlash);
    case '%': return make(TokenKind::kPercent);
    case '"': return lex_string();
    case '=':
      return match('=') ? make(TokenKind::kEq) : make(TokenKind::kAssign);
    case '!':
      if (match('=')) return make(TokenKind::kNe);
      return error("unexpected '!' (use 'not')");
    case '<':
      return match('=') ? make(TokenKind::kLe) : make(TokenKind::kLt);
    case '>':
      return match('=') ? make(TokenKind::kGe) : make(TokenKind::kGt);
    default:
      return error(std::string("unexpected character '") + c + "'");
  }
}

std::vector<Token> Lexer::tokenize(std::string_view source) {
  Lexer lexer(source);
  std::vector<Token> out;
  while (true) {
    Token tok = lexer.next();
    TokenKind kind = tok.kind;
    out.push_back(std::move(tok));
    if (kind == TokenKind::kEof || kind == TokenKind::kError) return out;
  }
}

}  // namespace dionea::vm
