// VM-level synchronization objects: Mutex, Queue, ConditionVariable.
//
// These are the objects the paper's fork handlers must "take ownership
// of" before forking (§5.3 problem 1): if any other thread held one at
// fork time, the child's single surviving thread could never acquire
// it — a guaranteed deadlock. Every instance registers itself with its
// Vm so the fork machinery can enumerate them; each implements the
// SyncObject fork protocol (pin for fork / unpin / re-init in child).
//
// Blocking follows one pattern throughout: the caller enters a
// Vm::BlockScope (releases the GIL, records the blocked state, runs
// the deadlock check), then waits on the object's own condition
// variable in short slices, re-checking its thread's interrupt flag
// each slice so VM shutdown and deadlock resolution reach it promptly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "support/crash_report.hpp"
#include "vm/value.hpp"

namespace dionea::vm {

class Vm;
class InterpThread;

enum class WaitOutcome : int {
  kOk,
  kInterrupted,   // interrupt flag set (kill or deadlock)
  kNotOwner,      // unlock/wait without holding the mutex
  kRecursive,     // Ruby: "deadlock; recursive locking (ThreadError)"
};

class SyncObject {
 public:
  SyncObject();
  virtual ~SyncObject() = default;
  virtual std::string_view kind_name() const noexcept = 0;

  // Fork protocol. lock_for_fork is called by the *forking* thread in
  // the prepare handler; objects are pinned in registration order (a
  // total order, so prepare can never self-deadlock).
  virtual void lock_for_fork() = 0;
  virtual void unlock_after_fork() = 0;
  virtual void reinit_in_child(std::int64_t surviving_tid) = 0;

  // One line of crash-report state (owner/size/waiters). Best-effort
  // racy reads, called from the post-mortem signal handler: must not
  // lock or allocate.
  virtual void crash_describe(crash::Writer& w) const noexcept = 0;

  // Stable creation-order id used by the record/replay engine to match
  // recorded sync outcomes to objects. Construction happens under the
  // GIL, so a record and a replay of the same program agree on ids.
  std::uint64_t replay_id() const noexcept { return replay_id_; }

  // Bumped by every reinit_in_child: fork handler C's self-check uses
  // it to verify the child repair actually visited each live object.
  std::uint32_t child_generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

 protected:
  void bump_generation() noexcept {
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::uint64_t replay_id_ = 0;
  std::atomic<std::uint32_t> generation_{0};
};

class VmMutex : public SyncObject, public std::enable_shared_from_this<VmMutex> {
 public:
  VmMutex();

  std::string_view kind_name() const noexcept override { return "mutex"; }

  WaitOutcome lock(Vm& vm, InterpThread& th);
  bool try_lock(std::int64_t tid);
  WaitOutcome unlock(std::int64_t tid);
  bool locked() const;
  std::int64_t owner_tid() const;

  void lock_for_fork() override;
  void unlock_after_fork() override;
  void reinit_in_child(std::int64_t surviving_tid) override;
  void crash_describe(crash::Writer& w) const noexcept override;

 private:
  friend class VmCond;
  struct Impl {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::int64_t owner = 0;  // 0 = unlocked
  };
  std::unique_ptr<Impl> impl_;
  std::unique_lock<std::mutex> fork_lock_;
};

// Unbounded inter-THREAD queue (Ruby's Queue / Python's queue.Queue).
// Not inter-process — which is exactly the bug Listing 5 demonstrates:
// a fork duplicates the queue's memory, so parent pushes never reach
// the child's copy.
class VmQueue : public SyncObject {
 public:
  VmQueue();

  std::string_view kind_name() const noexcept override { return "queue"; }

  void push(Value value);
  // Blocks until an element is available — or, once the queue is
  // closed, drains the remaining items and then yields nil
  // immediately (Ruby's Queue#close/#pop contract).
  WaitOutcome pop(Vm& vm, InterpThread& th, Value* out);
  // Non-blocking; false when empty.
  bool try_pop(Value* out);
  // Close the queue: wakes every blocked pop (they drain or get nil);
  // further pushes are rejected by the builtin with a runtime error.
  void close();
  bool closed() const;
  size_t size() const;
  // Threads currently blocked in pop (Ruby's num_waiting).
  int num_waiting() const;

  void lock_for_fork() override;
  void unlock_after_fork() override;
  void reinit_in_child(std::int64_t surviving_tid) override;
  void crash_describe(crash::Writer& w) const noexcept override;

 private:
  struct Impl {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Value> items;
    int waiting = 0;
    bool closed = false;
  };
  std::unique_ptr<Impl> impl_;
  std::unique_lock<std::mutex> fork_lock_;
};

// Condition variable over VmMutex (Ruby's ConditionVariable).
class VmCond : public SyncObject {
 public:
  VmCond();

  std::string_view kind_name() const noexcept override { return "cond"; }

  // Caller must hold `mutex`; atomically releases it, waits for a
  // signal, re-acquires. kNotOwner if the mutex isn't held by th.
  WaitOutcome wait(Vm& vm, InterpThread& th, VmMutex& mutex);
  // Timed variant: waits at most `timeout_secs` (ThreadState is
  // kBlockedTimed, so the deadlock detector never counts it as stuck).
  // *timed_out reports whether the deadline fired instead of a signal;
  // the user mutex is re-acquired either way.
  WaitOutcome wait_for(Vm& vm, InterpThread& th, VmMutex& mutex,
                       double timeout_secs, bool* timed_out);
  void signal();
  void broadcast();

  void lock_for_fork() override;
  void unlock_after_fork() override;
  void reinit_in_child(std::int64_t surviving_tid) override;
  void crash_describe(crash::Writer& w) const noexcept override;

 private:
  struct Impl {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t signals = 0;        // pending one-shot wakeups
    std::uint64_t broadcast_gen = 0;  // bumped by broadcast()
    int waiting = 0;
  };
  std::unique_ptr<Impl> impl_;
  std::unique_lock<std::mutex> fork_lock_;
};

}  // namespace dionea::vm
