// MiniVM: the interpreter the debugger attaches to.
//
// This class plays the role CPython/CRuby play in the paper: it owns
// the GIL, the living-thread table, the sync-object registry, the
// trace hook (sys.settrace / set_trace_func analog, §4) and the fork
// entry point with its handler chain (§5). The debugger never reaches
// into interpreter internals directly — everything it needs is on this
// public surface.
//
// Locking domains (never nested except as listed):
//   GIL            — bytecode execution, globals, object mutation.
//   sched_mutex_   — thread registry, thread states, sync registry,
//                    deadlock detection. May be taken while the GIL is
//                    held or released; nothing is taken under it except
//                    (at fork only) sync-object internal mutexes.
//   per-object     — VmMutex/VmQueue/VmCond internal mutexes; leaf locks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include <deque>

#include "support/result.hpp"
#include "vm/bytecode.hpp"
#include "vm/code_cache.hpp"
#include "vm/gil.hpp"
#include "vm/sync.hpp"
#include "vm/thread.hpp"
#include "vm/value.hpp"

namespace dionea::vm {

// ---- tracing (the debugger's window into execution) ----

enum class TraceKind : int {
  kCall,         // a MiniLang function frame was pushed
  kLine,         // statement boundary
  kReturn,       // frame about to pop
  kThreadStart,  // new interpreter thread, first event in that thread
  kThreadEnd,    // interpreter thread finishing
};

const char* trace_kind_name(TraceKind kind) noexcept;

struct TraceEvent {
  TraceKind kind;
  std::int64_t thread_id = 0;
  // Views into the (immutable) FunctionProto — valid for the duration
  // of the callback; copy if kept. Keeping these allocation-free is
  // what puts the no-breakpoint tracing overhead in the paper's
  // 12–20% band instead of multiples.
  std::string_view file;      // script path ("" for thread start/end)
  int line = 0;
  std::string_view function;  // enclosing function name
  int frame_depth = 0;        // frames on the stack when the event fired
};

// Invoked with the GIL held, on the thread that caused the event —
// the callback may block (that is how the debugger suspends a thread)
// but must release the GIL while doing so (Vm::BlockScope handles it).
using TraceFn = std::function<void(Vm&, InterpThread&, const TraceEvent&)>;

// ---- fork handlers (§5.2/§5.4) ----

struct ForkHooks {
  std::function<void(Vm&)> prepare;            // in parent, before fork
  std::function<void(Vm&, int)> parent;        // after fork; child pid (-1 if fork failed)
  std::function<void(Vm&, int)> child;         // in child; pid arg is 0
};

// ---- deadlock reporting (§6.2) ----

struct DeadlockInfo {
  std::int64_t thread_id = 0;
  std::string thread_name;
  std::string file;
  int line = 0;
  std::string note;  // e.g. "Queue#pop"
};

// Return true to take ownership of the deadlock (threads stay blocked,
// the debugger reports the exact lines); false to let the VM raise
// `deadlock detected (fatal)` like stock Ruby (Listing 6).
using DeadlockHook =
    std::function<bool(Vm&, const std::vector<DeadlockInfo>&)>;

// ---- run results ----

struct RunResult {
  bool ok = false;
  Value value;          // value of the last expression of <main> (nil)
  VmError error;        // when !ok && !exited
  bool exited = false;  // exit(code) was called
  int exit_code = 0;
};

class Vm {
 public:
  Vm();
  ~Vm();
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // ---- execution ----

  // Compile-and-run convenience; `file` names the script in tracebacks.
  RunResult run_source(std::string_view source, const std::string& file);
  // Run a compiled program as the main thread (blocks until the
  // program and all its threads finish; kills stragglers like Ruby).
  RunResult run_main(std::shared_ptr<const FunctionProto> proto);

  // Call a callable with arguments from native code on an existing
  // interpreter thread (GIL must be held by `th`).
  std::variant<Value, VmError> call_value(InterpThread& th, Value callee,
                                          std::vector<Value> args);

  // ---- globals / natives ----
  void define_native(const std::string& name, int min_arity, int max_arity,
                     std::function<NativeResult(Vm&, InterpThread&,
                                                std::vector<Value>&)> fn);
  // GIL-free variants for setup before run_main starts.
  void set_global(const std::string& name, Value value);
  Value get_global(const std::string& name) const;

  // ---- tracing ----
  // The whole arming protocol lives in one atomic word (line_gate_):
  //
  //   bit 0   — tracing enabled (set_trace_enabled)
  //   bit 1   — a trace fn is installed (set_trace_fn/clear_trace_fn)
  //   bits 2+ — quicken generation counter
  //
  // The dispatch loop decides "armed" from a single relaxed load of
  // this word, so there is no separate unsynchronized trace_fn_ read
  // racing a mid-run settrace toggle (that was a real TSan report; the
  // fn pointer itself is now an atomic shared_ptr read only on the
  // already-slow armed path). Quickened kTraceLineQ sites compare the
  // word against a per-cache snapshot: any gate change (arming,
  // fn install, generation bump at fork) diverts them through the
  // out-of-line resync path exactly once.
  static constexpr std::uint64_t kGateEnabledBit = 1;
  static constexpr std::uint64_t kGateFnBit = 2;
  static constexpr std::uint64_t kGateArmedMask = kGateEnabledBit | kGateFnBit;
  static constexpr std::uint64_t kGateGenStep = 4;

  void set_trace_fn(TraceFn fn);
  void clear_trace_fn();
  // Fast on/off used by fork handler A/B ("disable the tracing until
  // the listener thread is restarted"). Async-signal-safe and
  // fork-safe: a single lock-free RMW on the gate word.
  void set_trace_enabled(bool enabled) noexcept {
    if (enabled) {
      line_gate_.fetch_or(kGateEnabledBit, std::memory_order_relaxed);
    } else {
      line_gate_.fetch_and(~kGateEnabledBit, std::memory_order_relaxed);
    }
  }
  bool trace_enabled() const noexcept {
    return (line_gate_.load(std::memory_order_relaxed) & kGateEnabledBit) != 0;
  }
  // Invalidate every quickened trace-line site's gate snapshot (fork
  // handler C; also exposed so tests can model cache poisoning).
  void bump_quicken_generation() noexcept {
    line_gate_.fetch_add(kGateGenStep, std::memory_order_relaxed);
  }
  std::uint64_t quicken_generation() const noexcept {
    return line_gate_.load(std::memory_order_relaxed) >> 2;
  }

  // ---- dispatch / code-cache tuning ----
  enum class DispatchMode { kSwitch, kGoto };
  // Compiled in only when the toolchain has computed goto (GCC/Clang).
  static bool computed_goto_available() noexcept;
  DispatchMode dispatch_mode() const noexcept { return dispatch_mode_; }
  // Takes effect at the next interpret() entry (i.e. next frame batch).
  void set_dispatch_mode(DispatchMode mode) noexcept;
  bool quicken_enabled() const noexcept { return quicken_enabled_; }
  // Affects caches built afterwards; existing caches keep their form.
  void set_quicken_enabled(bool enabled) noexcept {
    quicken_enabled_ = enabled;
  }
  // Drop caches with no executing frames; returns the number purged.
  // GIL (or a quiescent VM) required.
  std::size_t purge_code_caches();
  CodeCacheStats code_cache_stats() const;
  const CodeCache* find_code_cache(const FunctionProto* proto) const;
  // Recount every cache's in_use from live threads' real frames — the
  // box64-001 repair, re-runnable so the fork self-check can verify
  // (and fix) what internal_fork_child promised. Returns the number of
  // caches whose count was wrong. Single-threaded child (handler C) or
  // a quiescent VM required.
  std::size_t repair_cache_pins();

  Gil& gil() noexcept { return gil_; }

  // ---- thread registry / inspection ----
  // Snapshot functions are safe from any thread; they take sched_mutex_
  // and, for frame/local access, require the GIL (GilHold) so the
  // target cannot be mid-statement.
  std::vector<ThreadInfo> list_threads();
  std::vector<FrameInfo> thread_frames(std::int64_t tid);
  std::vector<std::pair<std::string, std::string>> frame_locals(
      std::int64_t tid, int depth);  // name -> repr; innermost depth 0
  std::vector<std::pair<std::string, std::string>> globals_snapshot();
  std::shared_ptr<InterpThread> find_thread(std::int64_t tid);

  // Evaluate a MiniLang expression in the context of frame `depth`
  // (0 = innermost) of thread `tid`, from a NON-interpreter thread
  // (the debug server's listener). The target thread must be stable
  // (suspended or blocked — guaranteed while the caller holds the GIL,
  // which this method takes). The expression sees the frame's locals
  // and captures (by value) plus all globals; it runs with full
  // power — it can call functions and mutate shared heap objects, like
  // `p expr` in any real debugger. Returns repr() of the result.
  Result<std::string> eval_in_frame(std::int64_t tid, int depth,
                                    const std::string& expression);
  std::int64_t main_thread_id() const noexcept {
    return main_thread_id_.load(std::memory_order_relaxed);
  }
  // The program run_main is executing (nullptr before the first run).
  // Safe from any thread; the debug server lints it on demand.
  std::shared_ptr<const FunctionProto> current_program() const {
    std::scoped_lock lock(program_mutex_);
    return current_program_;
  }
  int live_thread_count();

  // Spawn an interpreter thread running `callee(args...)`. GIL held.
  std::variant<Value, VmError> spawn_thread(InterpThread& parent,
                                            Value callee,
                                            std::vector<Value> args);

  // ---- blocking protocol ----
  // RAII for any operation that parks an interpreter thread: releases
  // the GIL, publishes the blocked state (and location) for the
  // debugger/deadlock detector, restores everything on destruction.
  class BlockScope {
   public:
    BlockScope(Vm& vm, InterpThread& th, ThreadState state,
               std::string note);
    ~BlockScope();
    BlockScope(const BlockScope&) = delete;
    BlockScope& operator=(const BlockScope&) = delete;

   private:
    Vm& vm_;
    InterpThread& th_;
  };

  // Wait-slice length used by interruptible waits (ms).
  static constexpr int kWaitSliceMillis = 20;

  // ---- sync-object registry (fork support) ----
  void register_sync_object(std::shared_ptr<SyncObject> object);
  // Live (non-expired) registered objects. Fork handler C's self-check
  // walks this to verify every object was re-initialised in the child.
  std::vector<std::shared_ptr<SyncObject>> sync_objects_snapshot();

  // ---- post-mortem support ----
  // Write the VM sections of a crash report: GIL holder, per-thread
  // MiniVM backtraces, the sync-object table. Runs inside the fatal
  // signal handler — lock-free, allocation-free, racy best-effort
  // reads with hard caps; a fault mid-walk trips the handler's
  // re-entry guard and yields a truncated report instead of a hang.
  void crash_dump(crash::Writer& w) noexcept;

  // ---- fork ----
  // Register debugger/user handlers; returns a handle id (handlers
  // currently live for the Vm's lifetime).
  int add_fork_handlers(ForkHooks hooks);
  // The augmented fork (§5.4): runs prepare handlers, ::fork(2),
  // then child/parent handlers. Returns the pid (0 in the child).
  Result<int> fork_now(InterpThread& th);
  bool is_forked_child() const noexcept { return forked_child_; }
  int fork_depth() const noexcept { return fork_depth_; }

  // Checkpoint fork (timetravel): identical handler choreography to
  // fork_now — prepare newest-first, fork(2), child/parent oldest-first,
  // so handlers A/B/C make the snapshot's locks, GIL, metrics shards,
  // cache pins and listener coherent — but the fork is *not* a recorded
  // event: the replay engine keeps its log/cursor in the child
  // (Engine::checkpoint_child_atfork) instead of descending the fork
  // tree. GIL required; single live interpreter thread required (the
  // snapshot must be resumable, and only interpreter state survives
  // fork — the same safety condition fork(2) itself imposes).
  Result<int> fork_checkpoint(InterpThread& th);

  // Pause-at-boundary hook (timetravel): invoked at GIL switch points
  // (every switch_interval_ statements, GIL held, frame state synced).
  // Unarmed cost is one relaxed load per switch point — the per-line
  // fast path (§7 overhead gate) is untouched. The hook may fork and
  // may park the calling thread.
  void set_boundary_hook(std::function<void(Vm&, InterpThread&)> hook);
  bool boundary_hook_armed() const noexcept {
    return boundary_armed_.load(std::memory_order_relaxed);
  }
  void run_boundary_hook(InterpThread& th);

  // Called (if set) right before a fork-with-block child _exits —
  // the debugger's `at_finalize_proc` (§5.4 C / Listing 3).
  void set_at_exit_hook(std::function<void(Vm&)> hook);
  void run_at_exit_hook();

  // ---- deadlock ----
  void set_deadlock_hook(DeadlockHook hook);

  // ---- output (the client's Output window, Fig. 2) ----
  void set_output(std::function<void(std::string_view)> sink);
  void write_output(std::string_view text);

  // ---- exit ----
  void request_exit(int code);

  // ---- tuning / stats ----
  void set_switch_interval(int statements) noexcept {
    switch_interval_ = statements > 0 ? statements : 1;
  }
  std::uint64_t statements_executed();

  // ---- internals shared with sync.cpp / builtins.cpp ----
  // Interruptible timed wait helper: returns true if pred() became
  // true, false on interrupt. Must be called inside a BlockScope.
  // Each wait slice also drives deadlock confirmation (see
  // deadlock_tick), which is why this is a member.
  template <typename Pred>
  bool wait_interruptible(InterpThread& th, std::mutex& mutex,
                          std::condition_variable& cv, Pred pred);

  // Deadlock detection is two-phase to avoid false positives from
  // wakeups in flight (a dying thread's joiner is still flagged
  // blocked for a few microseconds). Entering a forever-block or a
  // thread death establishes a *candidate* (snapshot of blocked
  // threads + their epochs); blocked threads confirm it from their
  // wait ticks once it has survived kDeadlockGraceMillis unchanged.
  static constexpr int kDeadlockGraceMillis = 150;
  void deadlock_tick();

  VmError runtime_error(InterpThread& th, std::string message,
                        VmErrorKind kind = VmErrorKind::kRuntime);

 private:
  friend class BlockScope;

  struct SpawnRequest;

  void install_builtins();
  void thread_entry(std::shared_ptr<InterpThread> th,
                    std::shared_ptr<Closure> closure,
                    std::vector<Value> args);
  // Dispatch entry: picks the backend from dispatch_mode_. The two
  // backends share one loop body (dispatch.inc) compiled under either a
  // switch or a computed-goto dispatcher; see dispatch.cpp.
  std::variant<Value, VmError> interpret(InterpThread& th,
                                         size_t stop_depth);
  std::variant<Value, VmError> interpret_switch(InterpThread& th,
                                                size_t stop_depth);
  std::variant<Value, VmError> interpret_goto(InterpThread& th,
                                              size_t stop_depth);
  std::optional<VmError> push_frame(InterpThread& th,
                                    std::shared_ptr<Closure> closure,
                                    int argc);
  // Pops the top frame, unpinning its code cache and truncating the
  // value stack to the caller's height.
  void pop_frame(InterpThread& th) noexcept;
  // Verify + (maybe) quicken `proto`, memoised per proto address (the
  // cache co-owns the proto so the address cannot be recycled).
  // Returns nullptr with *error set when verification rejects it.
  CodeCache* ensure_code_cache(std::shared_ptr<const FunctionProto> proto,
                               std::string* error);
  // Slow path for quickened trace-line sites: refresh the cache's gate
  // snapshot and report whether the trace hook is armed.
  bool line_gate_sync(CodeCache& cache) noexcept;
  // Out-of-line cold error constructors (keep the hot loop free of
  // string formatting).
  VmError undefined_name_error(InterpThread& th, std::string_view name);
  std::optional<VmError> apply_binop(InterpThread& th, Op op, Value& lhs,
                                     Value rhs);
  void fire_trace(InterpThread& th, TraceKind kind, int line);
  bool trace_armed(const InterpThread& th) const noexcept {
    return (line_gate_.load(std::memory_order_relaxed) & kGateArmedMask) ==
               kGateArmedMask &&
           !th.suppress_trace;
  }
  GlobalSlot* find_global_slot(std::string_view name) noexcept;
  const GlobalSlot* find_global_slot(std::string_view name) const noexcept;
  GlobalSlot& intern_global_slot(std::string_view name);
  void set_thread_state(InterpThread& th, ThreadState state,
                        std::string note);
  // Candidate = (tid, epoch) of every blocked thread when all live
  // threads were blocked forever. Empty candidate = none pending.
  std::vector<std::pair<std::int64_t, std::uint64_t>>
  blocked_snapshot_locked(bool* all_blocked_forever) const;
  void check_deadlock_locked(std::unique_lock<std::mutex>& sched_lock);
  void fire_deadlock_locked(std::unique_lock<std::mutex>& sched_lock);
  void shutdown_threads();
  void unregister_thread(InterpThread& th);

  // fork internals
  void internal_fork_prepare(InterpThread& th);
  void internal_fork_parent();
  void internal_fork_child(InterpThread& th);

  Gil gil_;
  // See the gate-bit comment above set_trace_fn.
  std::atomic<std::uint64_t> line_gate_{0};
  // Loaded only on the armed (already slow) path; the shared_ptr keeps
  // the callback alive across a concurrent clear_trace_fn.
  std::atomic<std::shared_ptr<const TraceFn>> trace_fn_;

  mutable std::mutex sched_mutex_;
  std::unordered_map<std::int64_t, std::shared_ptr<InterpThread>> threads_;
  std::vector<std::weak_ptr<SyncObject>> sync_objects_;
  std::int64_t next_thread_id_ = 1;
  std::atomic<std::int64_t> main_thread_id_{1};
  std::uint64_t retired_statements_ = 0;
  bool deadlock_reported_ = false;
  // Pending candidate (guarded by sched_mutex_); the atomic mirrors
  // "candidate exists" so wait ticks can skip the lock when idle.
  std::vector<std::pair<std::int64_t, std::uint64_t>> deadlock_candidate_;
  double deadlock_candidate_since_ = 0.0;
  std::atomic<bool> deadlock_candidate_active_{false};

  // Interned globals (GIL-protected). Slots live in a deque so their
  // addresses are stable for the Vm's lifetime — that stability is
  // what lets a GlobalIc cache a raw GlobalSlot*. The index keys are
  // string_views into the slots' own (never-mutated) name strings.
  std::deque<GlobalSlot> global_slots_;
  std::unordered_map<std::string_view, std::uint32_t> global_index_;

  // Per-proto executable code (GIL-protected). Built lazily on first
  // call, after verification; repaired by fork handler C.
  std::unordered_map<const FunctionProto*, std::unique_ptr<CodeCache>>
      code_caches_;
  DispatchMode dispatch_mode_ = DispatchMode::kSwitch;
  bool quicken_enabled_ = true;

  mutable std::mutex program_mutex_;
  std::shared_ptr<const FunctionProto> current_program_;

  std::vector<ForkHooks> fork_hooks_;  // mutated under GIL, pre-run or GIL
  std::unique_lock<std::mutex> fork_sched_lock_;
  std::vector<std::shared_ptr<SyncObject>> fork_pinned_;
  // The forking thread's own completion/park mutexes are pinned across
  // fork: a joiner in the parent could hold one at the fork instant,
  // which would leave the child's copy locked forever.
  std::unique_lock<std::mutex> fork_done_lock_;
  std::unique_lock<std::mutex> fork_park_lock_;
  // InterpThreads of the parent's other threads, kept alive in the
  // child forever: destroying their mutexes/cvs (whose state references
  // parent-only threads) would be UB. Bounded by threads-at-fork.
  std::vector<std::shared_ptr<InterpThread>> fork_graveyard_;
  bool forked_child_ = false;
  int fork_depth_ = 0;

  DeadlockHook deadlock_hook_;
  std::function<void(Vm&)> at_exit_hook_;
  std::function<void(std::string_view)> output_;

  // Pause-at-boundary hook (timetravel). The armed flag is the only
  // thing the dispatch loop reads; the function itself is guarded so
  // install/clear can race with switch points.
  mutable std::mutex boundary_mutex_;
  std::function<void(Vm&, InterpThread&)> boundary_hook_;
  std::atomic<bool> boundary_armed_{false};

  std::atomic<bool> exit_pending_{false};
  std::atomic<int> exit_code_{0};

  int switch_interval_ = 128;
};

template <typename Pred>
bool Vm::wait_interruptible(InterpThread& th, std::mutex& mutex,
                            std::condition_variable& cv, Pred pred) {
  std::unique_lock lock(mutex);
  while (true) {
    if (pred()) return true;
    if (th.interrupt.load(std::memory_order_relaxed) !=
        InterruptReason::kNone) {
      return false;
    }
    cv.wait_for(lock, std::chrono::milliseconds(kWaitSliceMillis));
    if (deadlock_candidate_active_.load(std::memory_order_relaxed)) {
      // Confirm outside `mutex`: deadlock_tick takes sched_mutex_, and
      // the fork prepare path locks sched_mutex_ *before* object
      // mutexes — holding `mutex` here would invert that order.
      lock.unlock();
      deadlock_tick();
      lock.lock();
    }
  }
}

}  // namespace dionea::vm
