// MiniLang recursive-descent parser (Pratt-style expression parsing).
#pragma once

#include <string>
#include <vector>

#include "support/result.hpp"
#include "vm/ast.hpp"
#include "vm/lexer.hpp"

namespace dionea::vm {

// Parse error with source position, suitable for the debugger's
// "source sync" channel to display.
struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  std::string to_string() const {
    return "parse error at line " + std::to_string(line) + ":" +
           std::to_string(column) + ": " + message;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view source);

  // Parse a whole program. On failure the first error is returned
  // (MiniLang does not attempt error recovery: debuggees must parse
  // cleanly before a debug session starts).
  Result<Program> parse_program();

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().is(kind); }
  bool match(TokenKind kind);
  Status expect(TokenKind kind, const std::string& context);
  void skip_newlines();
  Error error_here(const std::string& message) const;

  Result<StmtPtr> parse_statement();
  Result<StmtPtr> parse_fn_def();
  Result<StmtPtr> parse_if();
  Result<StmtPtr> parse_while();
  Result<StmtPtr> parse_for();
  Result<StmtPtr> parse_simple_statement();
  // Statements until one of the given terminator keywords (not consumed).
  Result<std::vector<StmtPtr>> parse_block(
      std::initializer_list<TokenKind> terminators);

  Result<std::shared_ptr<FnDecl>> parse_fn_tail(std::string name, int line);

  Result<ExprPtr> parse_expression();
  Result<ExprPtr> parse_or();
  Result<ExprPtr> parse_and();
  Result<ExprPtr> parse_not();
  Result<ExprPtr> parse_comparison();
  Result<ExprPtr> parse_term();
  Result<ExprPtr> parse_factor();
  Result<ExprPtr> parse_unary();
  Result<ExprPtr> parse_postfix();
  Result<ExprPtr> parse_primary();
  Result<std::vector<ExprPtr>> parse_call_args();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Convenience: parse or die with location (used by embedded programs in
// benches whose sources are compiled-in constants).
Result<Program> parse_source(std::string_view source);

}  // namespace dionea::vm
