#include "vm/builtins.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "analysis/analysis.hpp"
#include "replay/replay.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"
#include "support/trace_export.hpp"
#include "vm/sync.hpp"
#include "vm/vm.hpp"

namespace dionea::vm {
namespace {

VmError type_error(Vm& vm, InterpThread& th, const char* fn,
                   const char* expected, const Value& got) {
  return vm.runtime_error(
      th, strings::format("%s: expected %s, got %s", fn, expected,
                          got.type_name()));
}

VmError err_from_interrupt(Vm& vm, InterpThread& th) {
  if (th.interrupt.load(std::memory_order_relaxed) ==
      InterruptReason::kDeadlock) {
    return vm.runtime_error(th, "deadlock detected (fatal)",
                            VmErrorKind::kFatalDeadlock);
  }
  return vm.runtime_error(th, "killed", VmErrorKind::kThreadKill);
}

VmError outcome_error(Vm& vm, InterpThread& th, const char* what,
                      WaitOutcome outcome) {
  switch (outcome) {
    case WaitOutcome::kInterrupted:
      return err_from_interrupt(vm, th);
    case WaitOutcome::kNotOwner:
      return vm.runtime_error(
          th, strings::format("%s: mutex not owned by current thread", what));
    case WaitOutcome::kRecursive:
      return vm.runtime_error(
          th, strings::format("%s: deadlock; recursive locking", what));
    case WaitOutcome::kOk:
      break;
  }
  return vm.runtime_error(th, "internal: outcome_error on kOk");
}

// ------------------------------------------------------------- IO / misc

void install_io(Vm& vm) {
  vm.define_native("puts", 0, -1,
                   [](Vm& v, InterpThread&, std::vector<Value>& args)
                       -> NativeResult {
                     if (args.empty()) {
                       v.write_output("\n");
                       return Value();
                     }
                     std::string out;
                     for (const Value& arg : args) {
                       out += arg.to_display();
                       out += '\n';
                     }
                     v.write_output(out);
                     return Value();
                   });

  vm.define_native("print", 0, -1,
                   [](Vm& v, InterpThread&, std::vector<Value>& args)
                       -> NativeResult {
                     std::string out;
                     for (const Value& arg : args) out += arg.to_display();
                     v.write_output(out);
                     return Value();
                   });

  // clock() and rand() are the two nondeterministic *values* (as
  // opposed to schedules) MiniLang exposes; both round-trip through
  // the replay log so a replayed run computes with the recorded
  // values, not fresh ones.
  vm.define_native(
      "clock", 0, 0,
      [](Vm&, InterpThread& th, std::vector<Value>&) -> NativeResult {
        replay::Engine& rep = replay::Engine::instance();
        if (rep.replaying()) {
          std::uint64_t bits = 0;
          if (rep.await_turn(replay::EventKind::kClock, th.id(), 0, &bits)) {
            double seconds;
            static_assert(sizeof(seconds) == sizeof(bits));
            std::memcpy(&seconds, &bits, sizeof(seconds));
            return Value(seconds);
          }
        }
        double seconds = mono_seconds();
        std::uint64_t bits;
        std::memcpy(&bits, &seconds, sizeof(bits));
        rep.record(replay::EventKind::kClock, th.id(), 0, bits);
        return Value(seconds);
      });

  // rand() -> double in [0, 1); rand(n) -> int in [0, n).
  vm.define_native(
      "rand", 0, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args.empty() && (!args[0].is_int() || args[0].as_int() <= 0)) {
          return type_error(v, th, "rand", "positive int", args[0]);
        }
        replay::Engine& rep = replay::Engine::instance();
        std::uint64_t raw = 0;
        bool have_raw = false;
        if (rep.replaying()) {
          have_raw = rep.await_turn(replay::EventKind::kRand, th.id(), 0, &raw);
        }
        if (!have_raw) {
          static thread_local Rng rng(static_cast<std::uint64_t>(
              mono_nanos() ^ (static_cast<std::uint64_t>(th.id()) << 32)));
          raw = rng.next_u64();
          rep.record(replay::EventKind::kRand, th.id(), 0, raw);
        }
        if (args.empty()) {
          return Value(static_cast<double>(raw >> 11) * 0x1.0p-53);
        }
        return Value(static_cast<std::int64_t>(
            raw % static_cast<std::uint64_t>(args[0].as_int())));
      });

  vm.define_native(
      "assert", 1, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].truthy()) return Value(true);
        std::string msg = args.size() > 1 ? args[1].to_display()
                                          : "assertion failed";
        return v.runtime_error(th, "AssertionError: " + msg);
      });

  vm.define_native(
      "sleep", 0, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        bool forever = args.empty() || args[0].is_nil();
        double seconds = 0.0;
        if (!forever) {
          if (!args[0].is_number()) {
            return type_error(v, th, "sleep", "number", args[0]);
          }
          seconds = args[0].number();
        }
        double deadline = mono_seconds() + seconds;
        Vm::BlockScope scope(v, th,
                             forever ? ThreadState::kBlockedForever
                                     : ThreadState::kBlockedTimed,
                             "sleep");
        bool ok = v.wait_interruptible(
            th, th.park_mutex, th.park_cv,
            [&] { return !forever && mono_seconds() >= deadline; });
        if (!ok) return err_from_interrupt(v, th);
        return Value(static_cast<std::int64_t>(seconds));
      });

  vm.define_native("exit", 0, 1,
                   [](Vm& v, InterpThread& th, std::vector<Value>& args)
                       -> NativeResult {
                     int code = args.empty()
                                    ? 0
                                    : static_cast<int>(
                                          args[0].is_int() ? args[0].as_int()
                                                           : 0);
                     v.request_exit(code);
                     VmError err = v.runtime_error(th, "exit",
                                                   VmErrorKind::kExit);
                     err.exit_code = code;
                     return err;
                   });

  vm.define_native("getpid", 0, 0,
                   [](Vm&, InterpThread&, std::vector<Value>&)
                       -> NativeResult {
                     return Value(static_cast<std::int64_t>(::getpid()));
                   });
}

// ------------------------------------------------------------ conversion

void install_conversion(Vm& vm) {
  vm.define_native("to_s", 1, 1,
                   [](Vm&, InterpThread&, std::vector<Value>& args)
                       -> NativeResult {
                     return Value::str(args[0].to_display());
                   });

  vm.define_native("repr", 1, 1,
                   [](Vm&, InterpThread&, std::vector<Value>& args)
                       -> NativeResult { return Value::str(args[0].repr()); });

  vm.define_native("type", 1, 1,
                   [](Vm&, InterpThread&, std::vector<Value>& args)
                       -> NativeResult {
                     return Value::str(args[0].type_name());
                   });

  vm.define_native(
      "to_i", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        const Value& x = args[0];
        if (x.is_int()) return x;
        if (x.is_float()) {
          return Value(static_cast<std::int64_t>(x.as_float()));
        }
        if (x.is_bool()) return Value(std::int64_t{x.as_bool() ? 1 : 0});
        if (x.is_str()) {
          std::int64_t out = 0;
          if (!strings::parse_int(strings::trim(x.as_str()), &out)) {
            return v.runtime_error(th, "to_i: cannot parse \"" +
                                           strings::escape(x.as_str()) + "\"");
          }
          return Value(out);
        }
        return type_error(v, th, "to_i", "number or string", x);
      });

  vm.define_native(
      "to_f", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        const Value& x = args[0];
        if (x.is_float()) return x;
        if (x.is_int()) return Value(static_cast<double>(x.as_int()));
        if (x.is_str()) {
          double out = 0;
          if (!strings::parse_double(strings::trim(x.as_str()), &out)) {
            return v.runtime_error(th, "to_f: cannot parse string");
          }
          return Value(out);
        }
        return type_error(v, th, "to_f", "number or string", x);
      });
}

// ------------------------------------------------------------ collections

void install_collections(Vm& vm) {
  vm.define_native(
      "len", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        const Value& x = args[0];
        if (x.is_str()) return Value(static_cast<std::int64_t>(x.as_str().size()));
        if (x.is_list()) {
          return Value(static_cast<std::int64_t>(x.as_list()->items.size()));
        }
        if (x.is_map()) {
          return Value(static_cast<std::int64_t>(x.as_map()->items.size()));
        }
        if (x.kind() == ValueKind::kQueue) {
          return Value(static_cast<std::int64_t>(x.as_queue()->size()));
        }
        return type_error(v, th, "len", "str, list, map or queue", x);
      });

  vm.define_native(
      "push", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        Value& target = args[0];
        if (target.is_list()) {
          target.as_list()->items.push_back(args[1]);
          return target;
        }
        if (target.kind() == ValueKind::kQueue) {
          auto queue = target.as_queue();
          if (queue->closed()) {
            if (analysis::engine_enabled() && !th.frames.empty()) {
              analysis::Finding finding;
              finding.kind = analysis::FindingKind::kClosedQueue;
              finding.message = "push on a closed queue";
              finding.file = th.frames.back().closure->proto->file;
              finding.line = th.frames.back().line;
              finding.object =
                  strings::format("queue#%llu", static_cast<unsigned long long>(
                                                    queue->replay_id()));
              analysis::Engine::instance().add_finding(std::move(finding));
            }
            return v.runtime_error(th, "push on closed queue");
          }
          if (analysis::engine_enabled()) {
            // push->pop is a happens-before edge (channel semantics).
            // Publish the producer's clock BEFORE the element becomes
            // visible: a blocked consumer's wait predicate pops inside
            // the queue's notify, with the GIL released, so a
            // publish-after-push loses the edge on some schedules.
            analysis::Engine::instance().on_queue_push(th.id(),
                                                       queue->replay_id());
          }
          queue->push(args[1]);
          return target;
        }
        return type_error(v, th, "push", "list or queue", target);
      });

  vm.define_native(
      "pop", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        Value& target = args[0];
        if (target.is_list()) {
          auto& items = target.as_list()->items;
          if (items.empty()) {
            return v.runtime_error(th, "pop from empty list");
          }
          Value out = std::move(items.back());
          items.pop_back();
          return out;
        }
        if (target.kind() == ValueKind::kQueue) {
          Value out;
          WaitOutcome outcome = target.as_queue()->pop(v, th, &out);
          if (outcome != WaitOutcome::kOk) {
            return outcome_error(v, th, "Queue#pop", outcome);
          }
          return out;
        }
        return type_error(v, th, "pop", "list or queue", target);
      });

  vm.define_native(
      "try_pop", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kQueue) {
          return type_error(v, th, "try_pop", "queue", args[0]);
        }
        auto queue = args[0].as_queue();
        replay::Engine& rep = replay::Engine::instance();
        if (rep.replaying()) {
          // Whether the try saw an item is itself a race outcome; the
          // recorded verdict (payload) overrides what the live queue
          // happens to hold right now.
          std::uint64_t took = 0;
          if (rep.await_turn(replay::EventKind::kQueueTryPop, th.id(),
                             queue->replay_id(), &took)) {
            Value out;
            if (took == 0 || !queue->try_pop(&out)) return Value();
            return out;
          }
        }
        Value out;
        bool took = queue->try_pop(&out);
        rep.record(replay::EventKind::kQueueTryPop, th.id(),
                   queue->replay_id(), took ? 1 : 0);
        if (!took) return Value();
        return out;
      });

  vm.define_native(
      "range", 1, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_int() || (args.size() > 1 && !args[1].is_int())) {
          return type_error(v, th, "range", "int", args[0]);
        }
        std::int64_t lo = args.size() > 1 ? args[0].as_int() : 0;
        std::int64_t hi = args.size() > 1 ? args[1].as_int() : args[0].as_int();
        auto list = std::make_shared<List>();
        for (std::int64_t i = lo; i < hi; ++i) list->items.push_back(Value(i));
        return Value(std::move(list));
      });

  vm.define_native(
      "sort", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_list()) return type_error(v, th, "sort", "list", args[0]);
        auto out = std::make_shared<List>();
        out->items = args[0].as_list()->items;
        bool type_ok = true;
        std::stable_sort(out->items.begin(), out->items.end(),
                         [&](const Value& a, const Value& b) {
                           if (a.is_number() && b.is_number()) {
                             return a.number() < b.number();
                           }
                           if (a.is_str() && b.is_str()) {
                             return a.as_str() < b.as_str();
                           }
                           type_ok = false;
                           return false;
                         });
        if (!type_ok) {
          return v.runtime_error(th, "sort: elements must be all numbers or "
                                     "all strings");
        }
        return Value(std::move(out));
      });

  vm.define_native(
      "contains", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        const Value& coll = args[0];
        if (coll.is_list()) {
          for (const Value& item : coll.as_list()->items) {
            if (item.equals(args[1])) return Value(true);
          }
          return Value(false);
        }
        if (coll.is_map()) {
          if (!args[1].is_str()) return Value(false);
          return Value(coll.as_map()->items.count(args[1].as_str()) > 0);
        }
        if (coll.is_str() && args[1].is_str()) {
          return Value(coll.as_str().find(args[1].as_str()) !=
                       std::string::npos);
        }
        return type_error(v, th, "contains", "list, map or str", coll);
      });

  vm.define_native(
      "keys", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_map()) return type_error(v, th, "keys", "map", args[0]);
        auto out = std::make_shared<List>();
        for (const auto& [key, unused] : args[0].as_map()->items) {
          out->items.push_back(Value::str(key));
        }
        return Value(std::move(out));
      });

  vm.define_native(
      "get", 2, 3,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_map() || !args[1].is_str()) {
          return type_error(v, th, "get", "map and string key", args[0]);
        }
        const auto& items = args[0].as_map()->items;
        auto it = items.find(args[1].as_str());
        if (it != items.end()) return it->second;
        return args.size() > 2 ? args[2] : Value();
      });

  vm.define_native(
      "delete", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_map() || !args[1].is_str()) {
          return type_error(v, th, "delete", "map and string key", args[0]);
        }
        auto& items = args[0].as_map()->items;
        auto it = items.find(args[1].as_str());
        if (it == items.end()) return Value();
        Value out = std::move(it->second);
        items.erase(it);
        return out;
      });

  vm.define_native(
      "min", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_number() || !args[1].is_number()) {
          return type_error(v, th, "min", "numbers", args[0]);
        }
        return args[0].number() <= args[1].number() ? args[0] : args[1];
      });
  vm.define_native(
      "max", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_number() || !args[1].is_number()) {
          return type_error(v, th, "max", "numbers", args[0]);
        }
        return args[0].number() >= args[1].number() ? args[0] : args[1];
      });
  vm.define_native(
      "abs", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].is_int()) {
          std::int64_t x = args[0].as_int();
          return Value(x < 0 ? -x : x);
        }
        if (args[0].is_float()) {
          double x = args[0].as_float();
          return Value(x < 0 ? -x : x);
        }
        return type_error(v, th, "abs", "number", args[0]);
      });
}

// ---------------------------------------------------------------- strings

void install_strings(Vm& vm) {
  vm.define_native(
      "split", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str() || !args[1].is_str() || args[1].as_str().empty()) {
          return type_error(v, th, "split", "string and non-empty separator",
                            args[0]);
        }
        auto out = std::make_shared<List>();
        const std::string& s = args[0].as_str();
        const std::string& sep = args[1].as_str();
        size_t start = 0;
        while (true) {
          size_t pos = s.find(sep, start);
          if (pos == std::string::npos) {
            out->items.push_back(Value::str(s.substr(start)));
            break;
          }
          out->items.push_back(Value::str(s.substr(start, pos - start)));
          start = pos + sep.size();
        }
        return Value(std::move(out));
      });

  vm.define_native(
      "words", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) return type_error(v, th, "words", "str", args[0]);
        auto out = std::make_shared<List>();
        for (std::string& word : strings::split_whitespace(args[0].as_str())) {
          out->items.push_back(Value::str(std::move(word)));
        }
        return Value(std::move(out));
      });

  vm.define_native(
      "lower", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) return type_error(v, th, "lower", "str", args[0]);
        return Value::str(strings::to_lower(args[0].as_str()));
      });

  vm.define_native(
      "upper", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) return type_error(v, th, "upper", "str", args[0]);
        std::string out(args[0].as_str());
        for (char& c : out) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        return Value::str(std::move(out));
      });

  vm.define_native(
      "is_alpha", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) {
          return type_error(v, th, "is_alpha", "str", args[0]);
        }
        return Value(strings::is_alpha_word(args[0].as_str()));
      });

  vm.define_native(
      "slice", 2, 3,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[1].is_int() || (args.size() > 2 && !args[2].is_int())) {
          return type_error(v, th, "slice", "int bounds", args[1]);
        }
        std::int64_t start = args[1].as_int();
        if (args[0].is_str()) {
          const std::string& s = args[0].as_str();
          std::int64_t n = static_cast<std::int64_t>(s.size());
          std::int64_t end = args.size() > 2 ? args[2].as_int() : n;
          if (start < 0) start += n;
          if (end < 0) end += n;
          start = std::clamp<std::int64_t>(start, 0, n);
          end = std::clamp<std::int64_t>(end, start, n);
          return Value::str(s.substr(static_cast<size_t>(start),
                                     static_cast<size_t>(end - start)));
        }
        if (args[0].is_list()) {
          const auto& items = args[0].as_list()->items;
          std::int64_t n = static_cast<std::int64_t>(items.size());
          std::int64_t end = args.size() > 2 ? args[2].as_int() : n;
          if (start < 0) start += n;
          if (end < 0) end += n;
          start = std::clamp<std::int64_t>(start, 0, n);
          end = std::clamp<std::int64_t>(end, start, n);
          auto out = std::make_shared<List>();
          out->items.assign(items.begin() + start, items.begin() + end);
          return Value(std::move(out));
        }
        return type_error(v, th, "slice", "str or list", args[0]);
      });
}

// ------------------------------------------------------------ threads/sync

void install_threads(Vm& vm) {
  vm.define_native(
      "spawn", 1, -1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        Value callee = args[0];
        std::vector<Value> call_args(args.begin() + 1, args.end());
        auto outcome = v.spawn_thread(th, std::move(callee),
                                      std::move(call_args));
        if (std::holds_alternative<VmError>(outcome)) {
          return std::get<VmError>(std::move(outcome));
        }
        return std::get<Value>(std::move(outcome));
      });

  vm.define_native(
      "join", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kThread) {
          return type_error(v, th, "join", "thread", args[0]);
        }
        auto target = args[0].as_thread()->thread;
        if (!target) return Value();  // handle crossed a pickle boundary
        if (target->id() == th.id()) {
          return v.runtime_error(th, "join: target thread must not be "
                                     "current thread");
        }
        // Whether the target is already dead here is a race against its
        // GIL-free exit epilogue — the one scheduling decision the GIL
        // grant order does not pin down, so it is recorded explicitly.
        replay::Engine& rep = replay::Engine::instance();
        bool was_done = target->is_done();
        if (rep.replaying()) {
          std::uint64_t done = 0;
          if (rep.await_turn(replay::EventKind::kThreadDone, th.id(),
                             static_cast<std::uint64_t>(target->id()),
                             &done)) {
            if (done != 0 && !was_done) {
              // Recorded as already-dead: the target consumed its last
              // recorded event (its events precede this one in the
              // log), so its epilogue finishes without the GIL — wait
              // for the flag to catch up instead of blocking.
              std::unique_lock lk(target->done_mutex);
              target->done_cv.wait(lk, [&] { return target->done; });
            }
            was_done = done != 0;
          }
        } else {
          rep.record(replay::EventKind::kThreadDone, th.id(),
                     static_cast<std::uint64_t>(target->id()),
                     was_done ? 1 : 0);
        }
        if (!was_done) {
          Vm::BlockScope scope(v, th, ThreadState::kBlockedForever,
                               "Thread#join");
          bool ok = v.wait_interruptible(
              th, target->done_mutex, target->done_cv,
              [&] { return target->done; });
          if (!ok) return err_from_interrupt(v, th);
        }
        if (analysis::engine_enabled()) {
          // join edge: everything the target did happens-before the
          // joiner's continuation.
          analysis::Engine::instance().on_thread_join(th.id(), target->id());
        }
        std::scoped_lock lock(target->done_mutex);
        if (target->has_error &&
            target->error.kind == VmErrorKind::kRuntime) {
          // Ruby: join re-raises the thread's exception in the joiner.
          return target->error;
        }
        return target->result;
      });

  vm.define_native("current_thread_id", 0, 0,
                   [](Vm&, InterpThread& th, std::vector<Value>&)
                       -> NativeResult { return Value(th.id()); });

  vm.define_native(
      "thread_id", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kThread) {
          return type_error(v, th, "thread_id", "thread", args[0]);
        }
        return Value(args[0].as_thread()->thread_id);
      });

  vm.define_native("mutex", 0, 0,
                   [](Vm& v, InterpThread&, std::vector<Value>&)
                       -> NativeResult {
                     auto m = std::make_shared<VmMutex>();
                     v.register_sync_object(m);
                     return Value(std::move(m));
                   });

  vm.define_native("queue", 0, 0,
                   [](Vm& v, InterpThread&, std::vector<Value>&)
                       -> NativeResult {
                     auto q = std::make_shared<VmQueue>();
                     v.register_sync_object(q);
                     return Value(std::move(q));
                   });

  vm.define_native("cond", 0, 0,
                   [](Vm& v, InterpThread&, std::vector<Value>&)
                       -> NativeResult {
                     auto c = std::make_shared<VmCond>();
                     v.register_sync_object(c);
                     return Value(std::move(c));
                   });

  vm.define_native(
      "lock", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kMutex) {
          return type_error(v, th, "lock", "mutex", args[0]);
        }
        WaitOutcome outcome = args[0].as_mutex()->lock(v, th);
        if (outcome != WaitOutcome::kOk) {
          return outcome_error(v, th, "Mutex#lock", outcome);
        }
        return args[0];
      });

  vm.define_native(
      "try_lock", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kMutex) {
          return type_error(v, th, "try_lock", "mutex", args[0]);
        }
        auto mutex = args[0].as_mutex();
        replay::Engine& rep = replay::Engine::instance();
        if (rep.replaying()) {
          std::uint64_t took = 0;
          if (rep.await_turn(replay::EventKind::kMutexTryLock, th.id(),
                             mutex->replay_id(), &took)) {
            return Value(took != 0 && mutex->try_lock(th.id()));
          }
        }
        bool took = mutex->try_lock(th.id());
        rep.record(replay::EventKind::kMutexTryLock, th.id(),
                   mutex->replay_id(), took ? 1 : 0);
        return Value(took);
      });

  vm.define_native(
      "unlock", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kMutex) {
          return type_error(v, th, "unlock", "mutex", args[0]);
        }
        WaitOutcome outcome = args[0].as_mutex()->unlock(th.id());
        if (outcome != WaitOutcome::kOk) {
          return outcome_error(v, th, "Mutex#unlock", outcome);
        }
        return args[0];
      });

  vm.define_native(
      "locked", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kMutex) {
          return type_error(v, th, "locked", "mutex", args[0]);
        }
        return Value(args[0].as_mutex()->locked());
      });

  vm.define_native(
      "synchronize", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kMutex) {
          return type_error(v, th, "synchronize", "mutex", args[0]);
        }
        auto& mutex = *args[0].as_mutex();
        WaitOutcome outcome = mutex.lock(v, th);
        if (outcome != WaitOutcome::kOk) {
          return outcome_error(v, th, "Mutex#synchronize", outcome);
        }
        auto result = v.call_value(th, args[1], {});
        (void)mutex.unlock(th.id());
        if (std::holds_alternative<VmError>(result)) {
          return std::get<VmError>(std::move(result));
        }
        return std::get<Value>(std::move(result));
      });

  vm.define_native(
      "num_waiting", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kQueue) {
          return type_error(v, th, "num_waiting", "queue", args[0]);
        }
        return Value(
            static_cast<std::int64_t>(args[0].as_queue()->num_waiting()));
      });

  vm.define_native(
      "wait", 2, 3,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kCond ||
            args[1].kind() != ValueKind::kMutex) {
          return type_error(v, th, "wait", "cond and mutex", args[0]);
        }
        if (args.size() == 3) {
          // wait(c, m, secs): true if signalled, false on timeout.
          if (!args[2].is_number()) {
            return type_error(v, th, "wait", "number of seconds", args[2]);
          }
          bool timed_out = false;
          WaitOutcome outcome = args[0].as_cond()->wait_for(
              v, th, *args[1].as_mutex(), args[2].number(), &timed_out);
          if (outcome != WaitOutcome::kOk) {
            return outcome_error(v, th, "Cond#wait", outcome);
          }
          return Value(!timed_out);
        }
        WaitOutcome outcome =
            args[0].as_cond()->wait(v, th, *args[1].as_mutex());
        if (outcome != WaitOutcome::kOk) {
          return outcome_error(v, th, "Cond#wait", outcome);
        }
        return Value();
      });

  vm.define_native(
      "signal", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kCond) {
          return type_error(v, th, "signal", "cond", args[0]);
        }
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_cond_signal(
              th.id(), args[0].as_cond()->replay_id());
        }
        args[0].as_cond()->signal();
        return Value();
      });

  vm.define_native(
      "broadcast", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kCond) {
          return type_error(v, th, "broadcast", "cond", args[0]);
        }
        if (analysis::engine_enabled()) {
          analysis::Engine::instance().on_cond_signal(
              th.id(), args[0].as_cond()->replay_id());
        }
        args[0].as_cond()->broadcast();
        return Value();
      });

  vm.define_native(
      "close", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (args[0].kind() != ValueKind::kQueue) {
          return type_error(v, th, "close", "queue", args[0]);
        }
        args[0].as_queue()->close();
        return args[0];
      });
}

// ---------------------------------------------------------------- process

void install_process(Vm& vm) {
  // fork(): plain fork, returns pid (0 in child).
  // fork(f): Ruby's fork-with-block (Listing 3) — the child runs f,
  // then the at-exit hook (the debugger's at_finalize_proc), then
  // _exits; the parent gets the child pid.
  vm.define_native(
      "fork", 0, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args.empty() && !args[0].is_callable()) {
          return type_error(v, th, "fork", "fn block", args[0]);
        }
        auto pid = v.fork_now(th);
        if (!pid.is_ok()) {
          return v.runtime_error(th, pid.error().to_string());
        }
        if (args.empty()) return Value(std::int64_t{pid.value()});
        if (pid.value() != 0) return Value(std::int64_t{pid.value()});
        // Child: run the block, report, and _exit like Listing 3.
        auto outcome = v.call_value(th, args[0], {});
        int exit_code = 0;
        if (std::holds_alternative<VmError>(outcome)) {
          const VmError& err = std::get<VmError>(outcome);
          if (err.kind == VmErrorKind::kExit) {
            exit_code = err.exit_code;
          } else {
            std::fprintf(stderr, "%s\n", err.to_string().c_str());
            exit_code = 1;
          }
        }
        v.run_at_exit_hook();
        // _exit skips atexit handlers; flush the child's trace buffer
        // (repointed to its own file by handler C) and its replay log
        // (repointed by Engine::child_atfork) explicitly.
        trace::flush();
        replay::Engine::instance().flush();
        std::fflush(nullptr);
        ::_exit(exit_code);
      });

  vm.define_native(
      "waitpid", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_int()) {
          return type_error(v, th, "waitpid", "pid", args[0]);
        }
        pid_t pid = static_cast<pid_t>(args[0].as_int());
        // The wait verdict is a nondeterministic *value* like clock():
        // record it, substitute it on replay. The real drain below
        // still runs so a re-executed child's side effects land before
        // we return — but a checkpoint resumer whose snapshot predates
        // this child's parent gets ECHILD there, and the recorded code
        // is what lets it replay through the wait instead of erroring.
        // The log event is consumed *after* the BlockScope, mirroring
        // where record mode emits it (the scope's GIL reacquire logs a
        // kGilAcquire in between; consuming earlier would mismatch it).
        replay::Engine& rep = replay::Engine::instance();
        std::int64_t code = 0;
        bool real_verdict = false;
        int wait_errno = 0;
        {
          Vm::BlockScope scope(v, th, ThreadState::kIoBlocked, "waitpid");
          while (true) {
            int status = 0;
            pid_t got = ::waitpid(pid, &status, WNOHANG);
            if (got == pid) {
              if (WIFEXITED(status)) {
                code = WEXITSTATUS(status);
              } else if (WIFSIGNALED(status)) {
                code = -WTERMSIG(status);
              } else {
                code = -1;
              }
              real_verdict = true;
              break;
            }
            if (got < 0) {
              wait_errno = errno;
              if (rep.replaying()) break;  // fall back to the logged verdict
              return v.runtime_error(
                  th, strings::format("waitpid(%d): %s", static_cast<int>(pid),
                                      std::strerror(wait_errno)));
            }
            if (th.interrupt.load(std::memory_order_relaxed) !=
                InterruptReason::kNone) {
              return err_from_interrupt(v, th);
            }
            sleep_for_millis(Vm::kWaitSliceMillis / 2);
          }
        }
        if (rep.replaying()) {
          std::uint64_t recorded_bits = 0;
          if (rep.await_turn(replay::EventKind::kWaitResult, th.id(), 0,
                             &recorded_bits)) {
            return Value(static_cast<std::int64_t>(recorded_bits));
          }
          // Diverged: free-run on whatever the real wait produced.
          if (!real_verdict) {
            return v.runtime_error(
                th, strings::format("waitpid(%d): %s", static_cast<int>(pid),
                                    std::strerror(wait_errno)));
          }
          return Value(code);
        }
        rep.record(replay::EventKind::kWaitResult, th.id(), 0,
                   static_cast<std::uint64_t>(code));
        return Value(code);
      });
}

// ------------------------------------------------------------------ files

void install_files(Vm& vm) {
  vm.define_native(
      "read_file", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) {
          return type_error(v, th, "read_file", "path string", args[0]);
        }
        auto contents = read_file(args[0].as_str());
        if (!contents.is_ok()) {
          return v.runtime_error(th, contents.error().to_string());
        }
        return Value::str(std::move(contents).value());
      });

  vm.define_native(
      "write_file", 2, 2,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str() || !args[1].is_str()) {
          return type_error(v, th, "write_file", "path and contents", args[0]);
        }
        Status status = write_file(args[0].as_str(), args[1].as_str());
        if (!status.is_ok()) {
          return v.runtime_error(th, status.to_string());
        }
        return Value(true);
      });

  // Recursively collect regular-file paths under a root, sorted — the
  // word-count workload walks a source tree with this.
  vm.define_native(
      "walk_files", 1, 1,
      [](Vm& v, InterpThread& th, std::vector<Value>& args) -> NativeResult {
        if (!args[0].is_str()) {
          return type_error(v, th, "walk_files", "path string", args[0]);
        }
        std::vector<std::string> out;
        std::vector<std::string> pending{args[0].as_str()};
        while (!pending.empty()) {
          std::string dir = std::move(pending.back());
          pending.pop_back();
          DIR* handle = ::opendir(dir.c_str());
          if (handle == nullptr) {
            return v.runtime_error(
                th, strings::format("walk_files: cannot open %s: %s",
                                    dir.c_str(), std::strerror(errno)));
          }
          while (dirent* entry = ::readdir(handle)) {
            const char* name = entry->d_name;
            if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
              continue;
            }
            std::string child = dir + "/" + name;
            struct stat st{};
            if (::stat(child.c_str(), &st) != 0) continue;
            if (S_ISDIR(st.st_mode)) {
              pending.push_back(std::move(child));
            } else if (S_ISREG(st.st_mode)) {
              out.push_back(std::move(child));
            }
          }
          ::closedir(handle);
        }
        std::sort(out.begin(), out.end());
        auto list = std::make_shared<List>();
        for (std::string& path : out) {
          list->items.push_back(Value::str(std::move(path)));
        }
        return Value(std::move(list));
      });
}

}  // namespace

void install_core_builtins(Vm& vm) {
  install_io(vm);
  install_conversion(vm);
  install_collections(vm);
  install_strings(vm);
  install_threads(vm);
  install_process(vm);
  install_files(vm);
}

}  // namespace dionea::vm
