#include "vm/verifier.hpp"

#include <deque>
#include <vector>

#include "support/strings.hpp"

namespace dionea::vm {
namespace {

constexpr int kDepthUnknown = -1;
constexpr int kMaxStackDepth = 65536;

Error bad(size_t offset, const std::string& message) {
  return Error(ErrorCode::kInvalidArgument,
               strings::format("invalid bytecode at offset %zu: %s", offset,
                               message.c_str()));
}

// Net stack effect and minimum required depth for ops whose effect is
// operand-independent. kCall/kBuildList/kBuildMap/kIterNext are
// handled inline in the dataflow pass.
struct StackEffect {
  int required = 0;  // entries that must exist before the op runs
  int delta = 0;     // depth change after the op
};

StackEffect stack_effect(Op op) noexcept {
  switch (op) {
    case Op::kConst:
    case Op::kNil:
    case Op::kTrue:
    case Op::kFalse:
    case Op::kGetLocal:
    case Op::kGetGlobal:
    case Op::kGetCapture:
    case Op::kClosure:
    case Op::kLocLocBin:
    case Op::kLocConstBin:
      return {0, +1};
    case Op::kDup:
      return {1, +1};
    case Op::kPop:
    case Op::kJumpIfFalse:
      return {1, -1};
    case Op::kSetLocal:
    case Op::kSetGlobal:
    case Op::kSetCapture:
    case Op::kNeg:
    case Op::kNot:
    case Op::kJumpIfFalsePeek:
    case Op::kJumpIfTruePeek:
    case Op::kIterNew:
      return {1, 0};
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kIndexGet:
      return {2, -1};
    case Op::kIndexSet:
      return {3, -2};
    case Op::kConstSetLocal:
    case Op::kJump:
    case Op::kLoop:
    case Op::kTraceLine:
      return {0, 0};
    case Op::kReturn:
      return {1, -1};
    default:
      return {0, 0};
  }
}

}  // namespace

Status verify_chunk(const FunctionProto& proto) {
  const Chunk& chunk = proto.chunk;
  const size_t size = chunk.size();
  const size_t n_consts = chunk.constants().size();
  const size_t n_locals = proto.local_names.size();
  const size_t n_captures = proto.captures.size();

  if (size == 0) return bad(0, "empty chunk");

  // ---- pass 1: linear structural walk -------------------------------
  // Decodes every instruction exactly once, building the boundary set
  // and validating operand ranges (so pass 2 can read blindly).
  std::vector<bool> boundary(size, false);
  size_t offset = 0;
  while (offset < size) {
    boundary[offset] = true;
    const std::uint8_t byte = chunk.read_u8(offset);
    if (!op_is_valid(byte)) {
      return bad(offset, strings::format("undefined opcode %u",
                                         static_cast<unsigned>(byte)));
    }
    const Op op = static_cast<Op>(byte);
    if (op_is_quickened(op)) {
      return bad(offset, strings::format("quickened opcode %s in compiled "
                                         "code",
                                         op_name(op)));
    }
    const size_t operand_bytes =
        static_cast<size_t>(op_operand_bytes(op));
    if (offset + 1 + operand_bytes > size) {
      return bad(offset, strings::format("truncated operand for %s",
                                         op_name(op)));
    }

    switch (op) {
      case Op::kConst: {
        if (chunk.read_u16(offset + 1) >= n_consts) {
          return bad(offset, "constant index out of range");
        }
        break;
      }
      case Op::kGetGlobal:
      case Op::kSetGlobal: {
        const std::uint16_t idx = chunk.read_u16(offset + 1);
        if (idx >= n_consts) {
          return bad(offset, "global name constant out of range");
        }
        if (!chunk.constants()[idx].is_str()) {
          return bad(offset, "global name constant is not a string");
        }
        break;
      }
      case Op::kClosure: {
        const std::uint16_t idx = chunk.read_u16(offset + 1);
        if (idx >= n_consts) {
          return bad(offset, "closure constant out of range");
        }
        const Value& v = chunk.constants()[idx];
        if (!v.is_closure() || v.as_closure() == nullptr ||
            v.as_closure()->proto == nullptr) {
          return bad(offset, "closure constant is not a function");
        }
        // Instantiation reads the enclosing frame through the child's
        // capture sources; bound them against *this* proto.
        for (const CaptureSource& source : v.as_closure()->proto->captures) {
          const size_t limit =
              source.from_enclosing_capture ? n_captures : n_locals;
          if (source.index >= limit) {
            return bad(offset, "capture source out of range");
          }
        }
        break;
      }
      case Op::kGetLocal:
      case Op::kSetLocal: {
        if (chunk.read_u16(offset + 1) >= n_locals) {
          return bad(offset, "local slot out of range");
        }
        break;
      }
      case Op::kGetCapture:
      case Op::kSetCapture: {
        if (chunk.read_u16(offset + 1) >= n_captures) {
          return bad(offset, "capture index out of range");
        }
        break;
      }
      case Op::kCall: {
        if (chunk.read_u8(offset + 1) > 250) {
          return bad(offset, "call argc out of range");
        }
        break;
      }
      case Op::kIterNext: {
        const std::uint16_t slot = chunk.read_u16(offset + 1);
        // Needs the hidden (iterator, index) slot pair.
        if (static_cast<size_t>(slot) + 1 >= n_locals) {
          return bad(offset, "iterator slot pair out of range");
        }
        break;
      }
      case Op::kLocLocBin: {
        if (chunk.read_u16(offset + 1) >= n_locals ||
            chunk.read_u16(offset + 3) >= n_locals) {
          return bad(offset, "fused local slot out of range");
        }
        const std::uint8_t sub = chunk.read_u8(offset + 5);
        if (!op_is_valid(sub) ||
            !op_is_fusable_binop(static_cast<Op>(sub))) {
          return bad(offset, "fused operator is not a binary op");
        }
        break;
      }
      case Op::kLocConstBin: {
        if (chunk.read_u16(offset + 1) >= n_locals) {
          return bad(offset, "fused local slot out of range");
        }
        if (chunk.read_u16(offset + 3) >= n_consts) {
          return bad(offset, "fused constant index out of range");
        }
        const std::uint8_t sub = chunk.read_u8(offset + 5);
        if (!op_is_valid(sub) ||
            !op_is_fusable_binop(static_cast<Op>(sub))) {
          return bad(offset, "fused operator is not a binary op");
        }
        break;
      }
      case Op::kConstSetLocal: {
        if (chunk.read_u16(offset + 1) >= n_consts) {
          return bad(offset, "fused constant index out of range");
        }
        if (chunk.read_u16(offset + 3) >= n_locals) {
          return bad(offset, "fused local slot out of range");
        }
        break;
      }
      default:
        break;
    }
    offset += 1 + operand_bytes;
  }

  // ---- pass 2: control-flow + stack-depth dataflow ------------------
  // Depth is the operand-stack height above base + local slots. Every
  // reachable instruction must see one consistent depth; joins that
  // disagree are rejected (the compiler never produces them, and an
  // inconsistent join would make the check-free pops unsound).
  auto jump_target_ok = [&](size_t target) {
    return target < size && boundary[target];
  };

  std::vector<int> depth_at(size, kDepthUnknown);
  std::deque<size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);

  auto flow_to = [&](size_t from, size_t target, int depth) -> Status {
    if (target >= size) {
      return bad(from, "control flow runs off the end of the chunk");
    }
    if (!boundary[target]) {
      return bad(from, "jump target is not an instruction boundary");
    }
    if (depth_at[target] == kDepthUnknown) {
      depth_at[target] = depth;
      worklist.push_back(target);
    } else if (depth_at[target] != depth) {
      return bad(from, "inconsistent stack depth at join point");
    }
    return Status::ok();
  };

  while (!worklist.empty()) {
    const size_t at = worklist.front();
    worklist.pop_front();
    const int depth_in = depth_at[at];
    const Op op = static_cast<Op>(chunk.read_u8(at));
    const size_t next = at + 1 + static_cast<size_t>(op_operand_bytes(op));

    int required;
    int delta;
    switch (op) {
      case Op::kCall: {
        const int argc = chunk.read_u8(at + 1);
        required = argc + 1;
        delta = -argc;
        break;
      }
      case Op::kBuildList: {
        const int count = chunk.read_u16(at + 1);
        required = count;
        delta = 1 - count;
        break;
      }
      case Op::kBuildMap: {
        const int pairs = chunk.read_u16(at + 1);
        required = pairs * 2;
        delta = 1 - pairs * 2;
        break;
      }
      default: {
        const StackEffect effect = stack_effect(op);
        required = effect.required;
        delta = effect.delta;
        break;
      }
    }
    if (depth_in < required) {
      return bad(at, strings::format("stack underflow: %s needs %d, has %d",
                                     op_name(op), required, depth_in));
    }
    const int depth_out = depth_in + delta;
    if (depth_out > kMaxStackDepth) {
      return bad(at, "stack depth exceeds limit");
    }

    switch (op) {
      case Op::kReturn:
      case Op::kHalt:
        break;  // no successor
      case Op::kJump: {
        DIONEA_RETURN_IF_ERROR(
            flow_to(at, next + chunk.read_u16(at + 1), depth_out));
        break;
      }
      case Op::kLoop: {
        const std::uint16_t back = chunk.read_u16(at + 1);
        if (back > next) {
          return bad(at, "loop target before chunk start");
        }
        const size_t target = next - back;
        if (!jump_target_ok(target)) {
          return bad(at, "loop target is not an instruction boundary");
        }
        DIONEA_RETURN_IF_ERROR(flow_to(at, target, depth_out));
        break;
      }
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek: {
        DIONEA_RETURN_IF_ERROR(
            flow_to(at, next + chunk.read_u16(at + 1), depth_out));
        DIONEA_RETURN_IF_ERROR(flow_to(at, next, depth_out));
        break;
      }
      case Op::kIterNext: {
        // Exhausted: jumps to exit with nothing pushed. Otherwise:
        // falls through having pushed the next element.
        DIONEA_RETURN_IF_ERROR(
            flow_to(at, next + chunk.read_u16(at + 3), depth_out));
        DIONEA_RETURN_IF_ERROR(flow_to(at, next, depth_out + 1));
        break;
      }
      default: {
        DIONEA_RETURN_IF_ERROR(flow_to(at, next, depth_out));
        break;
      }
    }
  }

  return Status::ok();
}

}  // namespace dionea::vm
