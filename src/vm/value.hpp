// MiniVM runtime values.
//
// Value is a small tagged variant; heap payloads (strings, lists,
// maps, closures, sync objects, thread handles) are shared_ptr-managed
// so that copying a Value is cheap and fork(2) copy-on-write works the
// same way it does for CPython object graphs. All mutation of Lists
// and Maps happens under the GIL, exactly like CPython — the objects
// themselves carry no locks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace dionea::vm {

class Vm;
class InterpThread;
struct FunctionProto;  // bytecode.hpp
class VmMutex;         // sync.hpp
class VmQueue;         // sync.hpp
class VmCond;          // sync.hpp

class Value;

struct List {
  std::vector<Value> items;
};

// MiniLang maps have string keys (ordered, so iteration and repr are
// deterministic — the word-count reducer relies on it).
struct Map {
  std::map<std::string, Value> items;
};

// A function value: compiled prototype + by-value captured bindings
// (MiniLang lambdas capture enclosing locals by value at creation, like
// C++ [=]; heap payloads still alias through their shared_ptr, which is
// what makes `fn() q.push(1) end` see the same queue).
struct Closure {
  std::shared_ptr<const FunctionProto> proto;
  std::vector<Value> captures;
};

// One frame of a MiniLang traceback.
struct TracebackEntry {
  std::string function;
  std::string file;
  int line = 0;
};

enum class VmErrorKind : int {
  kRuntime,        // ordinary runtime error (undefined name, bad index, ...)
  kFatalDeadlock,  // `deadlock detected (fatal)` — every thread blocked
  kThreadKill,     // VM shutdown reached this thread; dies silently
  kExit,           // exit(code) builtin
};

// A runtime error travelling up the interpreter (value-based, never a
// C++ exception: errors must cross fork handlers and the GIL safely).
struct VmError {
  VmErrorKind kind = VmErrorKind::kRuntime;
  std::string message;
  std::vector<TracebackEntry> traceback;
  int exit_code = 0;  // kExit only

  bool fatal() const noexcept { return kind == VmErrorKind::kFatalDeadlock; }
  std::string to_string() const;
};

// Result of a native builtin: a value or an error.
using NativeResult = std::variant<Value, VmError>;

struct NativeFn {
  std::string name;
  int min_arity = 0;
  int max_arity = 0;  // -1 = variadic
  std::function<NativeResult(Vm&, InterpThread&, std::vector<Value>&)> fn;
};

// Extension point for embedders (mp:: inter-process queues live here).
class ForeignObject {
 public:
  virtual ~ForeignObject() = default;
  virtual std::string_view type_name() const noexcept = 0;
  virtual std::string repr() const { return std::string("<") + std::string(type_name()) + ">"; }
};

// Handle for a spawned interpreter thread (join target). Holds the
// InterpThread alive so join/value work after the thread dies (Ruby's
// Thread#value). The dead thread's stack is empty, so no reference
// cycle survives its exit.
struct ThreadHandle {
  std::int64_t thread_id = 0;
  std::shared_ptr<InterpThread> thread;
};

enum class ValueKind : int {
  kNil,
  kBool,
  kInt,
  kFloat,
  kStr,
  kList,
  kMap,
  kClosure,
  kNative,
  kMutex,
  kQueue,
  kCond,
  kThread,
  kForeign,
};

const char* value_kind_name(ValueKind kind) noexcept;

class Value {
 public:
  using Str = std::shared_ptr<const std::string>;

  Value() : rep_(std::monostate{}) {}
  Value(std::monostate) : rep_(std::monostate{}) {}           // NOLINT
  Value(bool b) : rep_(b) {}                                  // NOLINT
  Value(std::int64_t i) : rep_(i) {}                          // NOLINT
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}        // NOLINT
  Value(double d) : rep_(d) {}                                // NOLINT
  Value(Str s) : rep_(std::move(s)) {}                        // NOLINT
  Value(std::shared_ptr<List> l) : rep_(std::move(l)) {}      // NOLINT
  Value(std::shared_ptr<Map> m) : rep_(std::move(m)) {}       // NOLINT
  Value(std::shared_ptr<Closure> c) : rep_(std::move(c)) {}   // NOLINT
  Value(std::shared_ptr<NativeFn> f) : rep_(std::move(f)) {}  // NOLINT
  Value(std::shared_ptr<VmMutex> m) : rep_(std::move(m)) {}   // NOLINT
  Value(std::shared_ptr<VmQueue> q) : rep_(std::move(q)) {}   // NOLINT
  Value(std::shared_ptr<VmCond> c) : rep_(std::move(c)) {}    // NOLINT
  Value(std::shared_ptr<ThreadHandle> t) : rep_(std::move(t)) {}    // NOLINT
  Value(std::shared_ptr<ForeignObject> o) : rep_(std::move(o)) {}   // NOLINT

  static Value str(std::string s) {
    return Value(std::make_shared<const std::string>(std::move(s)));
  }
  static Value new_list() { return Value(std::make_shared<List>()); }
  static Value new_map() { return Value(std::make_shared<Map>()); }

  ValueKind kind() const noexcept {
    return static_cast<ValueKind>(rep_.index());
  }
  const char* type_name() const noexcept { return value_kind_name(kind()); }

  bool is_nil() const noexcept { return kind() == ValueKind::kNil; }
  bool is_bool() const noexcept { return kind() == ValueKind::kBool; }
  bool is_int() const noexcept { return kind() == ValueKind::kInt; }
  bool is_float() const noexcept { return kind() == ValueKind::kFloat; }
  bool is_number() const noexcept { return is_int() || is_float(); }
  bool is_str() const noexcept { return kind() == ValueKind::kStr; }
  bool is_list() const noexcept { return kind() == ValueKind::kList; }
  bool is_map() const noexcept { return kind() == ValueKind::kMap; }
  bool is_closure() const noexcept { return kind() == ValueKind::kClosure; }
  bool is_native() const noexcept { return kind() == ValueKind::kNative; }
  bool is_callable() const noexcept { return is_closure() || is_native(); }

  // MiniLang truthiness is Ruby's: only nil and false are falsy.
  bool truthy() const noexcept {
    if (is_nil()) return false;
    if (is_bool()) return std::get<bool>(rep_);
    return true;
  }

  bool as_bool() const { return std::get<bool>(rep_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  double as_float() const { return std::get<double>(rep_); }
  // Numeric coercion (int -> double).
  double number() const {
    return is_int() ? static_cast<double>(as_int()) : as_float();
  }
  const std::string& as_str() const { return *std::get<Str>(rep_); }
  const Str& str_ptr() const { return std::get<Str>(rep_); }
  const std::shared_ptr<List>& as_list() const {
    return std::get<std::shared_ptr<List>>(rep_);
  }
  const std::shared_ptr<Map>& as_map() const {
    return std::get<std::shared_ptr<Map>>(rep_);
  }
  const std::shared_ptr<Closure>& as_closure() const {
    return std::get<std::shared_ptr<Closure>>(rep_);
  }
  const std::shared_ptr<NativeFn>& as_native() const {
    return std::get<std::shared_ptr<NativeFn>>(rep_);
  }
  const std::shared_ptr<VmMutex>& as_mutex() const {
    return std::get<std::shared_ptr<VmMutex>>(rep_);
  }
  const std::shared_ptr<VmQueue>& as_queue() const {
    return std::get<std::shared_ptr<VmQueue>>(rep_);
  }
  const std::shared_ptr<VmCond>& as_cond() const {
    return std::get<std::shared_ptr<VmCond>>(rep_);
  }
  const std::shared_ptr<ThreadHandle>& as_thread() const {
    return std::get<std::shared_ptr<ThreadHandle>>(rep_);
  }
  const std::shared_ptr<ForeignObject>& as_foreign() const {
    return std::get<std::shared_ptr<ForeignObject>>(rep_);
  }

  // Structural equality: numbers compare across int/float; lists and
  // maps compare element-wise; closures, natives, sync objects and
  // thread handles compare by identity (like Ruby object identity).
  bool equals(const Value& other) const;

  // Ruby-ish `to_s`: strings render bare ("abc"), everything else like
  // repr(). puts() uses this.
  std::string to_display() const;
  // `inspect` rendering: strings quoted, containers recursive.
  std::string repr() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, Str,
               std::shared_ptr<List>, std::shared_ptr<Map>,
               std::shared_ptr<Closure>, std::shared_ptr<NativeFn>,
               std::shared_ptr<VmMutex>, std::shared_ptr<VmQueue>,
               std::shared_ptr<VmCond>, std::shared_ptr<ThreadHandle>,
               std::shared_ptr<ForeignObject>>
      rep_;
};

}  // namespace dionea::vm
