// Token kinds for MiniLang, the small dynamic language MiniVM executes.
//
// MiniLang is the stand-in for the paper's Python/Ruby debuggees:
// Ruby-flavoured syntax (`fn … end`, only nil/false are falsy),
// newline-terminated statements, first-class closures, and builtin
// threads/queues/mutexes/fork — the exact surface the Dionea scenarios
// (§6.2–§6.4) exercise.
#pragma once

#include <string>
#include <string_view>

namespace dionea::vm {

enum class TokenKind : int {
  // literals / identifiers
  kInt,
  kFloat,
  kString,
  kName,
  // keywords
  kFn,
  kIf,
  kElif,
  kElse,
  kWhile,
  kFor,
  kIn,
  kEnd,
  kReturn,
  kBreak,
  kContinue,
  kTrue,
  kFalse,
  kNil,
  kAnd,
  kOr,
  kNot,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kColon,
  kAssign,      // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  // structure
  kNewline,
  kEof,
  kError,       // lexer error; text holds the message
};

const char* token_kind_name(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier name, literal spelling, or error message
  int line = 0;         // 1-based source line
  int column = 0;       // 1-based source column

  bool is(TokenKind k) const noexcept { return kind == k; }
};

}  // namespace dionea::vm
