// MiniLang lexer: source text -> token stream.
#pragma once

#include <string>
#include <vector>

#include "vm/token.hpp"

namespace dionea::vm {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  // Next token; returns kEof forever once exhausted, kError (with a
  // message in .text) on malformed input. Consecutive newlines are
  // collapsed into one kNewline token.
  Token next();

  // Tokenize everything (including the trailing kEof). Stops early
  // after the first kError token.
  static std::vector<Token> tokenize(std::string_view source);

 private:
  char peek(int ahead = 0) const noexcept;
  char advance() noexcept;
  bool match(char expected) noexcept;
  void skip_ws_and_comments() noexcept;
  Token make(TokenKind kind, std::string text = {}) const;
  Token error(std::string message) const;
  Token lex_number();
  Token lex_string();
  Token lex_name();

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int tok_line_ = 1;
  int tok_column_ = 1;
  bool emitted_newline_ = true;  // suppress leading newlines
};

}  // namespace dionea::vm
