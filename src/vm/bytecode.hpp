// MiniVM bytecode: opcodes, chunks and function prototypes.
//
// A Chunk is a flat byte array with u16 operands (little-endian) and a
// parallel line table. The compiler emits an explicit kTraceLine
// opcode at every statement boundary; that is where the interpreter
// fires `line` trace events, honours breakpoints and performs GIL
// switch checks — making debugger behaviour exact and deterministic
// (the same design point as CPython's per-line tracing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace dionea::vm {

enum class Op : std::uint8_t {
  kConst,         // u16 constant index
  kNil,
  kTrue,
  kFalse,
  kPop,
  kDup,
  kGetLocal,      // u16 slot
  kSetLocal,      // u16 slot
  kGetGlobal,     // u16 constant index of name string
  kSetGlobal,     // u16 constant index of name string
  kGetCapture,    // u16 capture index
  kSetCapture,    // u16 capture index
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kJump,          // u16 forward offset
  kJumpIfFalse,   // u16 forward offset (pops condition)
  kJumpIfFalsePeek,  // u16 forward offset (leaves condition: and/or)
  kJumpIfTruePeek,   // u16 forward offset (leaves condition: and/or)
  kLoop,          // u16 backward offset
  kCall,          // u8 argc
  kReturn,
  kBuildList,     // u16 element count
  kBuildMap,      // u16 pair count
  kIndexGet,
  kIndexSet,      // stack: target index value -> value
  kClosure,       // u16 constant index of FunctionProto
  kIterNew,       // stack: iterable -> iterator state (list copy + index)
  kIterNext,      // u16 exit offset; pushes next element or jumps
  kTraceLine,     // u16 line number: statement boundary
  kHalt,
};

const char* op_name(Op op) noexcept;
// Operand byte count for an opcode (0, 1 or 2).
int op_operand_bytes(Op op) noexcept;

class Chunk {
 public:
  void write(Op op, int line);
  void write_u8(std::uint8_t byte, int line);
  void write_u16(std::uint16_t value, int line);
  // Returns the offset of the operand for later patching.
  size_t emit_jump(Op op, int line);
  void patch_jump(size_t operand_offset);
  void emit_loop(size_t loop_start, int line);

  std::uint16_t add_constant(Value value);

  const std::vector<std::uint8_t>& code() const noexcept { return code_; }
  const std::vector<Value>& constants() const noexcept { return constants_; }
  int line_at(size_t offset) const noexcept;

  std::uint8_t read_u8(size_t offset) const noexcept { return code_[offset]; }
  std::uint16_t read_u16(size_t offset) const noexcept {
    return static_cast<std::uint16_t>(code_[offset]) |
           static_cast<std::uint16_t>(code_[offset + 1]) << 8;
  }
  size_t size() const noexcept { return code_.size(); }

  // Human-readable disassembly (tests and the `disasm` client command).
  std::string disassemble(const std::string& name) const;
  size_t disassemble_instruction(size_t offset, std::string* out) const;

 private:
  std::vector<std::uint8_t> code_;
  std::vector<Value> constants_;
  std::vector<int> lines_;  // line per code byte (simple, debug-friendly)
};

// Where a lambda capture comes from in the *enclosing* function.
struct CaptureSource {
  bool from_enclosing_capture = false;  // else from an enclosing local slot
  std::uint16_t index = 0;
};

// A compiled function. Immutable after compilation; shared by every
// closure instantiated from it and by every interpreter thread (and,
// post-fork, by the child — immutability is what makes that sound).
struct FunctionProto {
  std::string name;                 // "" for lambdas, "<main>" for top level
  std::string file;                 // script path for tracebacks/breakpoints
  int arity = 0;
  int line = 0;                     // definition line
  std::vector<std::string> local_names;  // slot -> name (params first)
  std::vector<CaptureSource> captures;   // what kClosure copies
  std::vector<std::string> capture_names;
  Chunk chunk;
};

}  // namespace dionea::vm
