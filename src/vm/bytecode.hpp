// MiniVM bytecode: opcodes, chunks and function prototypes.
//
// A Chunk is a flat byte array with u16 operands (little-endian) and a
// parallel line table. The compiler emits an explicit kTraceLine
// opcode at every statement boundary; that is where the interpreter
// fires `line` trace events, honours breakpoints and performs GIL
// switch checks — making debugger behaviour exact and deterministic
// (the same design point as CPython's per-line tracing).
//
// The opcode set comes in three tiers:
//   1. Core ops the compiler emits directly (kConst .. kTraceLine).
//   2. Superinstructions the compiler fuses at emission time
//      (kLocLocBin, kLocConstBin, kConstSetLocal). These are ordinary
//      compiled bytecode: the verifier accepts them and both dispatch
//      backends execute them.
//   3. Quickened ops (everything after kHalt). These never appear in
//      a compiled Chunk — the verifier rejects them — and exist only
//      inside a per-VM CodeCache's rewritten copy of the code. Each
//      quickened op has the same operand width as the op it replaces,
//      so quickening is a same-length in-place rewrite: offsets, jump
//      targets, the line table and replay schedule points all survive
//      untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace dionea::vm {

// X-macro master list: X(enumerator, mnemonic, operand_bytes).
// Order is ABI within a build (caches are per-process, never
// serialized), but kHalt must stay the last compiler-visible op: the
// verifier uses `op <= kHalt` as the "legal in compiled code" test.
#define DIONEA_OPCODE_LIST(X)                                           \
  X(kConst, "CONST", 2)            /* u16 constant index */             \
  X(kNil, "NIL", 0)                                                     \
  X(kTrue, "TRUE", 0)                                                   \
  X(kFalse, "FALSE", 0)                                                 \
  X(kPop, "POP", 0)                                                     \
  X(kDup, "DUP", 0)                                                     \
  X(kGetLocal, "GET_LOCAL", 2)     /* u16 slot */                       \
  X(kSetLocal, "SET_LOCAL", 2)     /* u16 slot */                       \
  X(kGetGlobal, "GET_GLOBAL", 2)   /* u16 const index of name string */ \
  X(kSetGlobal, "SET_GLOBAL", 2)   /* u16 const index of name string */ \
  X(kGetCapture, "GET_CAPTURE", 2) /* u16 capture index */              \
  X(kSetCapture, "SET_CAPTURE", 2) /* u16 capture index */              \
  X(kAdd, "ADD", 0)                                                     \
  X(kSub, "SUB", 0)                                                     \
  X(kMul, "MUL", 0)                                                     \
  X(kDiv, "DIV", 0)                                                     \
  X(kMod, "MOD", 0)                                                     \
  X(kNeg, "NEG", 0)                                                     \
  X(kNot, "NOT", 0)                                                     \
  X(kEq, "EQ", 0)                                                       \
  X(kNe, "NE", 0)                                                       \
  X(kLt, "LT", 0)                                                       \
  X(kLe, "LE", 0)                                                       \
  X(kGt, "GT", 0)                                                       \
  X(kGe, "GE", 0)                                                       \
  X(kJump, "JUMP", 2)          /* u16 forward offset */                 \
  X(kJumpIfFalse, "JUMP_IF_FALSE", 2) /* u16 fwd offset (pops cond) */  \
  X(kJumpIfFalsePeek, "JUMP_IF_FALSE_PEEK", 2) /* leaves cond: and */   \
  X(kJumpIfTruePeek, "JUMP_IF_TRUE_PEEK", 2)   /* leaves cond: or */    \
  X(kLoop, "LOOP", 2)          /* u16 backward offset */                \
  X(kCall, "CALL", 1)          /* u8 argc */                            \
  X(kReturn, "RETURN", 0)                                               \
  X(kBuildList, "BUILD_LIST", 2) /* u16 element count */                \
  X(kBuildMap, "BUILD_MAP", 2)   /* u16 pair count */                   \
  X(kIndexGet, "INDEX_GET", 0)                                          \
  X(kIndexSet, "INDEX_SET", 0) /* stack: target index value -> value */ \
  X(kClosure, "CLOSURE", 2)    /* u16 const index of FunctionProto */   \
  X(kIterNew, "ITER_NEW", 0)   /* iterable -> iterator state */         \
  X(kIterNext, "ITER_NEXT", 4) /* u16 slot + u16 exit offset */         \
  X(kTraceLine, "TRACE_LINE", 2) /* u16 line: statement boundary */     \
  /* -- superinstructions (compiler-fused, verifier-legal) -- */        \
  X(kLocLocBin, "LOC_LOC_BIN", 5)   /* u16 slotA, u16 slotB, u8 op */   \
  X(kLocConstBin, "LOC_CONST_BIN", 5) /* u16 slot, u16 const, u8 op */  \
  X(kConstSetLocal, "CONST_SET_LOCAL", 4) /* u16 const, u16 slot */     \
  X(kHalt, "HALT", 0)                                                   \
  /* -- quickened ops: CodeCache-only, never in compiled chunks -- */   \
  X(kGetGlobalIC, "GET_GLOBAL_IC", 2) /* u16 IC slot index */           \
  X(kSetGlobalIC, "SET_GLOBAL_IC", 2) /* u16 IC slot index */           \
  X(kTraceLineQ, "TRACE_LINE_Q", 2)   /* u16 line (gate fast path) */

enum class Op : std::uint8_t {
#define DIONEA_OP_ENUM(name, str, operand_bytes) name,
  DIONEA_OPCODE_LIST(DIONEA_OP_ENUM)
#undef DIONEA_OP_ENUM
};

// Number of defined opcodes (for dispatch tables).
inline constexpr std::size_t kOpCount = []() constexpr {
  std::size_t n = 0;
#define DIONEA_OP_COUNT(name, str, operand_bytes) ++n;
  DIONEA_OPCODE_LIST(DIONEA_OP_COUNT)
#undef DIONEA_OP_COUNT
  return n;
}();

// True for ops that only a CodeCache rewrite may introduce. Compiled
// chunks containing these are rejected by the verifier.
inline constexpr bool op_is_quickened(Op op) noexcept {
  return static_cast<std::uint8_t>(op) > static_cast<std::uint8_t>(Op::kHalt);
}

// True for a valid opcode byte (quickened or not).
inline constexpr bool op_is_valid(std::uint8_t byte) noexcept {
  return byte < kOpCount;
}

const char* op_name(Op op) noexcept;
// Operand byte count for an opcode (0, 1, 2, 4 or 5).
int op_operand_bytes(Op op) noexcept;

// Binary operators a fused superinstruction may carry in its trailing
// u8 (arithmetic + comparisons; unary and logical ops never fuse).
bool op_is_fusable_binop(Op op) noexcept;

class Chunk {
 public:
  void write(Op op, int line);
  void write_u8(std::uint8_t byte, int line);
  void write_u16(std::uint16_t value, int line);
  // Returns the offset of the operand for later patching.
  size_t emit_jump(Op op, int line);
  void patch_jump(size_t operand_offset);
  void emit_loop(size_t loop_start, int line);

  std::uint16_t add_constant(Value value);

  const std::vector<std::uint8_t>& code() const noexcept { return code_; }
  const std::vector<Value>& constants() const noexcept { return constants_; }
  int line_at(size_t offset) const noexcept;

  std::uint8_t read_u8(size_t offset) const noexcept { return code_[offset]; }
  std::uint16_t read_u16(size_t offset) const noexcept {
    return static_cast<std::uint16_t>(code_[offset]) |
           static_cast<std::uint16_t>(code_[offset + 1]) << 8;
  }
  size_t size() const noexcept { return code_.size(); }

  // Test-only escape hatch: overwrite a code byte in place. The fuzz
  // suite uses this to build hostile chunks for the verifier; nothing
  // in the compiler or VM calls it.
  void poke_for_test(size_t offset, std::uint8_t byte) { code_[offset] = byte; }

  // Human-readable disassembly (tests and the `disasm` client command).
  std::string disassemble(const std::string& name) const;
  size_t disassemble_instruction(size_t offset, std::string* out) const;

 private:
  std::vector<std::uint8_t> code_;
  std::vector<Value> constants_;
  std::vector<int> lines_;  // line per code byte (simple, debug-friendly)
};

// Where a lambda capture comes from in the *enclosing* function.
struct CaptureSource {
  bool from_enclosing_capture = false;  // else from an enclosing local slot
  std::uint16_t index = 0;
};

// A compiled function. Immutable after compilation; shared by every
// closure instantiated from it and by every interpreter thread (and,
// post-fork, by the child — immutability is what makes that sound).
// Mutable execution state derived from it (quickened code, inline
// caches) lives in a per-VM CodeCache keyed by this object's address,
// never on the proto itself.
struct FunctionProto {
  std::string name;                 // "" for lambdas, "<main>" for top level
  std::string file;                 // script path for tracebacks/breakpoints
  int arity = 0;
  int line = 0;                     // definition line
  std::vector<std::string> local_names;  // slot -> name (params first)
  std::vector<CaptureSource> captures;   // what kClosure copies
  std::vector<std::string> capture_names;
  Chunk chunk;
};

// Every FunctionProto reachable from `main` through constant-table
// closures, pre-order with `main` first, each proto once. Purely
// structural (never executes bytecode); the shared traversal under
// MiniSan's lint, ForkLint's CFG builder and the disassembler.
std::vector<const FunctionProto*> collect_protos(const FunctionProto& main);

}  // namespace dionea::vm
