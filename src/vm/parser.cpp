#include "vm/parser.hpp"

#include <utility>

#include "support/strings.hpp"

namespace dionea::vm {
namespace {

ExprPtr make_expr(ExprKind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

StmtPtr make_stmt(StmtKind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

}  // namespace

Parser::Parser(std::string_view source) : tokens_(Lexer::tokenize(source)) {}

const Token& Parser::peek(int ahead) const {
  size_t idx = pos_ + static_cast<size_t>(ahead);
  if (idx >= tokens_.size()) return tokens_.back();  // kEof or kError
  return tokens_[idx];
}

const Token& Parser::advance() {
  const Token& tok = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

Error Parser::error_here(const std::string& message) const {
  const Token& tok = peek();
  return Error(ErrorCode::kInvalidArgument,
               strings::format("parse error at %d:%d: %s (got '%s')",
                               tok.line, tok.column, message.c_str(),
                               tok.kind == TokenKind::kError
                                   ? tok.text.c_str()
                                   : token_kind_name(tok.kind)));
}

Status Parser::expect(TokenKind kind, const std::string& context) {
  if (match(kind)) return Status::ok();
  return error_here("expected '" + std::string(token_kind_name(kind)) +
                    "' " + context);
}

void Parser::skip_newlines() {
  while (check(TokenKind::kNewline)) advance();
}

Result<Program> Parser::parse_program() {
  Program program;
  skip_newlines();
  while (!check(TokenKind::kEof)) {
    if (check(TokenKind::kError)) return error_here("lexical error");
    DIONEA_ASSIGN_OR_RETURN(StmtPtr stmt, parse_statement());
    program.statements.push_back(std::move(stmt));
    skip_newlines();
  }
  return program;
}

Result<std::vector<StmtPtr>> Parser::parse_block(
    std::initializer_list<TokenKind> terminators) {
  std::vector<StmtPtr> body;
  skip_newlines();
  while (true) {
    if (check(TokenKind::kEof) || check(TokenKind::kError)) {
      return error_here("unterminated block (missing 'end'?)");
    }
    for (TokenKind t : terminators) {
      if (check(t)) return body;
    }
    DIONEA_ASSIGN_OR_RETURN(StmtPtr stmt, parse_statement());
    body.push_back(std::move(stmt));
    skip_newlines();
  }
}

Result<StmtPtr> Parser::parse_statement() {
  switch (peek().kind) {
    case TokenKind::kFn:
      // `fn name(...)` is a definition; `fn(...)` is a lambda expression.
      if (peek(1).is(TokenKind::kName)) return parse_fn_def();
      return parse_simple_statement();
    case TokenKind::kIf: return parse_if();
    case TokenKind::kWhile: return parse_while();
    case TokenKind::kFor: return parse_for();
    default: return parse_simple_statement();
  }
}

Result<std::shared_ptr<FnDecl>> Parser::parse_fn_tail(std::string name,
                                                      int line) {
  auto decl = std::make_shared<FnDecl>();
  decl->name = std::move(name);
  decl->line = line;
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kLParen, "after fn"));
  if (!check(TokenKind::kRParen)) {
    while (true) {
      if (!check(TokenKind::kName)) return error_here("expected parameter");
      decl->params.push_back(advance().text);
      if (!match(TokenKind::kComma)) break;
    }
  }
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRParen, "after parameters"));
  DIONEA_ASSIGN_OR_RETURN(decl->body, parse_block({TokenKind::kEnd}));
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kEnd, "to close fn"));
  return decl;
}

Result<StmtPtr> Parser::parse_fn_def() {
  int line = peek().line;
  advance();  // fn
  std::string name = advance().text;
  DIONEA_ASSIGN_OR_RETURN(auto decl, parse_fn_tail(std::move(name), line));
  StmtPtr stmt = make_stmt(StmtKind::kFnDef, line);
  stmt->fn = std::move(decl);
  return stmt;
}

Result<StmtPtr> Parser::parse_if() {
  int line = peek().line;
  advance();  // if
  StmtPtr stmt = make_stmt(StmtKind::kIf, line);
  while (true) {
    IfArm arm;
    DIONEA_ASSIGN_OR_RETURN(arm.condition, parse_expression());
    DIONEA_ASSIGN_OR_RETURN(
        arm.body,
        parse_block({TokenKind::kElif, TokenKind::kElse, TokenKind::kEnd}));
    stmt->arms.push_back(std::move(arm));
    if (match(TokenKind::kElif)) continue;
    break;
  }
  if (match(TokenKind::kElse)) {
    IfArm arm;  // null condition = else
    DIONEA_ASSIGN_OR_RETURN(arm.body, parse_block({TokenKind::kEnd}));
    stmt->arms.push_back(std::move(arm));
  }
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kEnd, "to close if"));
  return stmt;
}

Result<StmtPtr> Parser::parse_while() {
  int line = peek().line;
  advance();  // while
  StmtPtr stmt = make_stmt(StmtKind::kWhile, line);
  DIONEA_ASSIGN_OR_RETURN(stmt->expr, parse_expression());
  DIONEA_ASSIGN_OR_RETURN(stmt->body, parse_block({TokenKind::kEnd}));
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kEnd, "to close while"));
  return stmt;
}

Result<StmtPtr> Parser::parse_for() {
  int line = peek().line;
  advance();  // for
  if (!check(TokenKind::kName)) return error_here("expected loop variable");
  std::string var = advance().text;
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kIn, "in for loop"));
  StmtPtr stmt = make_stmt(StmtKind::kForIn, line);
  stmt->name = std::move(var);
  DIONEA_ASSIGN_OR_RETURN(stmt->expr, parse_expression());
  DIONEA_ASSIGN_OR_RETURN(stmt->body, parse_block({TokenKind::kEnd}));
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kEnd, "to close for"));
  return stmt;
}

Result<StmtPtr> Parser::parse_simple_statement() {
  int line = peek().line;
  if (match(TokenKind::kReturn)) {
    StmtPtr stmt = make_stmt(StmtKind::kReturn, line);
    if (!check(TokenKind::kNewline) && !check(TokenKind::kEof) &&
        !check(TokenKind::kEnd)) {
      DIONEA_ASSIGN_OR_RETURN(stmt->expr, parse_expression());
    }
    return stmt;
  }
  if (match(TokenKind::kBreak)) return make_stmt(StmtKind::kBreak, line);
  if (match(TokenKind::kContinue)) return make_stmt(StmtKind::kContinue, line);

  DIONEA_ASSIGN_OR_RETURN(ExprPtr expr, parse_expression());
  if (match(TokenKind::kAssign)) {
    if (expr->kind != ExprKind::kName && expr->kind != ExprKind::kIndex) {
      return error_here("invalid assignment target");
    }
    StmtPtr stmt = make_stmt(StmtKind::kAssign, line);
    stmt->expr = std::move(expr);
    DIONEA_ASSIGN_OR_RETURN(stmt->value, parse_expression());
    return stmt;
  }
  StmtPtr stmt = make_stmt(StmtKind::kExpr, line);
  stmt->expr = std::move(expr);
  return stmt;
}

Result<ExprPtr> Parser::parse_expression() { return parse_or(); }

Result<ExprPtr> Parser::parse_or() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_and());
  while (check(TokenKind::kOr)) {
    int line = advance().line;
    DIONEA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_and());
    ExprPtr node = make_expr(ExprKind::kLogical, line);
    node->op = TokenKind::kOr;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<ExprPtr> Parser::parse_and() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_not());
  while (check(TokenKind::kAnd)) {
    int line = advance().line;
    DIONEA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_not());
    ExprPtr node = make_expr(ExprKind::kLogical, line);
    node->op = TokenKind::kAnd;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<ExprPtr> Parser::parse_not() {
  if (check(TokenKind::kNot)) {
    int line = advance().line;
    DIONEA_ASSIGN_OR_RETURN(ExprPtr operand, parse_not());
    ExprPtr node = make_expr(ExprKind::kUnary, line);
    node->op = TokenKind::kNot;
    node->rhs = std::move(operand);
    return node;
  }
  return parse_comparison();
}

Result<ExprPtr> Parser::parse_comparison() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_term());
  while (check(TokenKind::kEq) || check(TokenKind::kNe) ||
         check(TokenKind::kLt) || check(TokenKind::kLe) ||
         check(TokenKind::kGt) || check(TokenKind::kGe)) {
    Token op = advance();
    DIONEA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_term());
    ExprPtr node = make_expr(ExprKind::kBinary, op.line);
    node->op = op.kind;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<ExprPtr> Parser::parse_term() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_factor());
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    Token op = advance();
    DIONEA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_factor());
    ExprPtr node = make_expr(ExprKind::kBinary, op.line);
    node->op = op.kind;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<ExprPtr> Parser::parse_factor() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr lhs, parse_unary());
  while (check(TokenKind::kStar) || check(TokenKind::kSlash) ||
         check(TokenKind::kPercent)) {
    Token op = advance();
    DIONEA_ASSIGN_OR_RETURN(ExprPtr rhs, parse_unary());
    ExprPtr node = make_expr(ExprKind::kBinary, op.line);
    node->op = op.kind;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<ExprPtr> Parser::parse_unary() {
  if (check(TokenKind::kMinus)) {
    int line = advance().line;
    DIONEA_ASSIGN_OR_RETURN(ExprPtr operand, parse_unary());
    ExprPtr node = make_expr(ExprKind::kUnary, line);
    node->op = TokenKind::kMinus;
    node->rhs = std::move(operand);
    return node;
  }
  return parse_postfix();
}

Result<std::vector<ExprPtr>> Parser::parse_call_args() {
  std::vector<ExprPtr> args;
  if (!check(TokenKind::kRParen)) {
    while (true) {
      DIONEA_ASSIGN_OR_RETURN(ExprPtr arg, parse_expression());
      args.push_back(std::move(arg));
      if (!match(TokenKind::kComma)) break;
    }
  }
  DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRParen, "after arguments"));
  return args;
}

Result<ExprPtr> Parser::parse_postfix() {
  DIONEA_ASSIGN_OR_RETURN(ExprPtr expr, parse_primary());
  while (true) {
    if (check(TokenKind::kLParen)) {
      int line = advance().line;
      DIONEA_ASSIGN_OR_RETURN(auto args, parse_call_args());
      ExprPtr node = make_expr(ExprKind::kCall, line);
      node->callee = std::move(expr);
      node->args = std::move(args);
      expr = std::move(node);
    } else if (check(TokenKind::kLBracket)) {
      int line = advance().line;
      DIONEA_ASSIGN_OR_RETURN(ExprPtr index, parse_expression());
      DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "after index"));
      ExprPtr node = make_expr(ExprKind::kIndex, line);
      node->lhs = std::move(expr);
      node->rhs = std::move(index);
      expr = std::move(node);
    } else if (check(TokenKind::kDot)) {
      int line = advance().line;
      if (!check(TokenKind::kName)) {
        return error_here("expected method name after '.'");
      }
      std::string method = advance().text;
      DIONEA_RETURN_IF_ERROR(
          expect(TokenKind::kLParen, "after method name (methods are "
                                     "builtin-call sugar; fields don't exist)"));
      DIONEA_ASSIGN_OR_RETURN(auto args, parse_call_args());
      ExprPtr node = make_expr(ExprKind::kMethod, line);
      node->str_val = std::move(method);
      node->callee = std::move(expr);  // receiver
      node->args = std::move(args);
      expr = std::move(node);
    } else {
      return expr;
    }
  }
}

Result<ExprPtr> Parser::parse_primary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::kInt: {
      advance();
      ExprPtr node = make_expr(ExprKind::kIntLit, tok.line);
      std::int64_t v = 0;
      if (!strings::parse_int(tok.text, &v)) {
        return error_here("integer literal out of range");
      }
      node->int_val = v;
      return node;
    }
    case TokenKind::kFloat: {
      advance();
      ExprPtr node = make_expr(ExprKind::kFloatLit, tok.line);
      double v = 0;
      if (!strings::parse_double(tok.text, &v)) {
        return error_here("bad float literal");
      }
      node->float_val = v;
      return node;
    }
    case TokenKind::kString: {
      advance();
      ExprPtr node = make_expr(ExprKind::kStrLit, tok.line);
      node->str_val = tok.text;
      return node;
    }
    case TokenKind::kTrue:
    case TokenKind::kFalse: {
      advance();
      ExprPtr node = make_expr(ExprKind::kBoolLit, tok.line);
      node->bool_val = tok.kind == TokenKind::kTrue;
      return node;
    }
    case TokenKind::kNil:
      advance();
      return make_expr(ExprKind::kNilLit, tok.line);
    case TokenKind::kName: {
      advance();
      ExprPtr node = make_expr(ExprKind::kName, tok.line);
      node->str_val = tok.text;
      return node;
    }
    case TokenKind::kLParen: {
      advance();
      DIONEA_ASSIGN_OR_RETURN(ExprPtr inner, parse_expression());
      DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRParen, "after expression"));
      return inner;
    }
    case TokenKind::kLBracket: {
      int line = advance().line;
      ExprPtr node = make_expr(ExprKind::kListLit, line);
      skip_newlines();
      if (!check(TokenKind::kRBracket)) {
        while (true) {
          DIONEA_ASSIGN_OR_RETURN(ExprPtr elem, parse_expression());
          node->args.push_back(std::move(elem));
          skip_newlines();
          if (!match(TokenKind::kComma)) break;
          skip_newlines();
        }
      }
      DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "after list"));
      return node;
    }
    case TokenKind::kLBrace: {
      int line = advance().line;
      ExprPtr node = make_expr(ExprKind::kMapLit, line);
      skip_newlines();
      if (!check(TokenKind::kRBrace)) {
        while (true) {
          DIONEA_ASSIGN_OR_RETURN(ExprPtr key, parse_expression());
          DIONEA_RETURN_IF_ERROR(expect(TokenKind::kColon, "after map key"));
          DIONEA_ASSIGN_OR_RETURN(ExprPtr value, parse_expression());
          node->args.push_back(std::move(key));
          node->args.push_back(std::move(value));
          skip_newlines();
          if (!match(TokenKind::kComma)) break;
          skip_newlines();
        }
      }
      DIONEA_RETURN_IF_ERROR(expect(TokenKind::kRBrace, "after map"));
      return node;
    }
    case TokenKind::kFn: {
      int line = advance().line;
      DIONEA_ASSIGN_OR_RETURN(auto decl, parse_fn_tail("", line));
      ExprPtr node = make_expr(ExprKind::kLambda, line);
      node->fn = std::move(decl);
      return node;
    }
    default:
      return error_here("expected expression");
  }
}

Result<Program> parse_source(std::string_view source) {
  Parser parser(source);
  return parser.parse_program();
}

}  // namespace dionea::vm
