// Length-prefixed framing of wire::Value over a byte stream.
//
// Frame layout: 4-byte magic 'D','N','E','A' + 4-byte little-endian
// payload length + payload. The magic catches the §5.3 failure mode
// this library exists to prevent: a forked child talking on its
// parent's socket would interleave bytes mid-frame ("mixed requests
// and responses") — with the magic check that corruption surfaces as a
// kProtocol error instead of silently misparsed commands.
#pragma once

#include <cstdint>

#include "ipc/socket.hpp"
#include "ipc/wire.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

inline constexpr std::uint32_t kFrameMagic = 0x41454E44u;  // "DNEA" LE
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

// Receive-side frame cap, checked against the length prefix BEFORE any
// payload allocation: 8 hostile bytes must never commit the receiver
// to a multi-MiB buffer. DIONEA_MAX_FRAME_BYTES lowers it (clamped to
// [4096, kMaxFrameBytes]); unset or malformed values leave the
// compile-time limit. Read once per process.
std::uint32_t max_recv_frame_bytes() noexcept;

Status send_frame(TcpStream& stream, const wire::Value& value);

// Serialize one frame (header + payload) into a byte string without
// writing it anywhere. The hub's per-client outbound queues buffer
// frames in this form so a slow client costs memory, not encode time,
// and a partial write can resume from a byte offset.
Result<std::string> encode_frame(const wire::Value& value);

// Blocking receive of one frame.
Result<wire::Value> recv_frame(TcpStream& stream);

// Receive with timeout; kTimeout when no frame starts in time, and
// also when a frame starts but stalls mid-read (half-open peer) — the
// caller is never wedged by a partial frame.
Result<wire::Value> recv_frame_timeout(TcpStream& stream, int timeout_millis);

// Incremental receiver for a channel that is polled with short
// timeouts (the events channel). recv_frame_timeout discards whatever
// it read when it times out, so a frame that arrives slower than one
// poll interval would desynchronize the stream for good — every later
// read starts mid-frame and fails the magic check. FrameReader keeps
// the partial frame buffered across calls instead: a timeout means
// "not complete yet", never "bytes lost".
class FrameReader {
 public:
  Result<wire::Value> recv_timeout(TcpStream& stream, int timeout_millis);

  // Drop any buffered partial frame (call when the stream is replaced).
  void reset() noexcept { pending_.clear(); }

 private:
  std::string pending_;  // raw bytes of the in-flight frame, header first
};

}  // namespace dionea::ipc
