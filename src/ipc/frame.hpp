// Length-prefixed framing of wire::Value over a byte stream.
//
// Frame layout: 4-byte magic 'D','N','E','A' + 4-byte little-endian
// payload length + payload. The magic catches the §5.3 failure mode
// this library exists to prevent: a forked child talking on its
// parent's socket would interleave bytes mid-frame ("mixed requests
// and responses") — with the magic check that corruption surfaces as a
// kProtocol error instead of silently misparsed commands.
#pragma once

#include <cstdint>

#include "ipc/socket.hpp"
#include "ipc/wire.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

inline constexpr std::uint32_t kFrameMagic = 0x41454E44u;  // "DNEA" LE
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

Status send_frame(TcpStream& stream, const wire::Value& value);

// Blocking receive of one frame.
Result<wire::Value> recv_frame(TcpStream& stream);

// Receive with timeout; kTimeout when no frame starts in time.
Result<wire::Value> recv_frame_timeout(TcpStream& stream, int timeout_millis);

}  // namespace dionea::ipc
