// TCP sockets over loopback.
//
// §4: "Server and client interact through a predefined protocol using
// TCP/IP, making possible to debug remote processes." The debug server
// listens on an ephemeral port; the client connects. Dionea uses three
// sockets per session (connection listener, source sync, commands) —
// see debugger/session.hpp for how the three channels map onto these.
#pragma once

#include <cstdint>
#include <string>

#include "ipc/fd.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class TcpStream;

// Listening socket bound to 127.0.0.1:<port> (port 0 = ephemeral).
class TcpListener {
 public:
  static Result<TcpListener> bind(std::uint16_t port = 0);

  TcpListener(TcpListener&&) = default;
  TcpListener& operator=(TcpListener&&) = default;

  std::uint16_t port() const noexcept { return port_; }
  int raw_fd() const noexcept { return fd_.get(); }

  // Blocking accept.
  Result<TcpStream> accept();

  // Accept with timeout; kTimeout if nothing arrives.
  Result<TcpStream> accept_timeout(int timeout_millis);

  void close() noexcept { fd_.reset(); }
  bool valid() const noexcept { return fd_.valid(); }

 private:
  TcpListener(Fd fd, std::uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  std::uint16_t port_ = 0;
};

// Connected stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  static Result<TcpStream> connect(std::uint16_t port);
  // Retry connect until deadline — the client races server startup.
  static Result<TcpStream> connect_retry(std::uint16_t port,
                                         int timeout_millis);

  TcpStream(TcpStream&&) = default;
  TcpStream& operator=(TcpStream&&) = default;

  bool valid() const noexcept { return fd_.valid(); }
  int raw_fd() const noexcept { return fd_.get(); }
  Fd& fd() noexcept { return fd_; }

  Status write_all(const void* data, size_t len) {
    return fd_.write_all(data, len);
  }
  Status read_exact(void* data, size_t len) {
    return fd_.read_exact(data, len);
  }
  // Deadline-bounded read: a peer that dies mid-frame (half-open
  // connection) yields kTimeout instead of wedging the caller.
  Status read_exact_timeout(void* data, size_t len, int timeout_millis) {
    return fd_.read_exact_timeout(data, len, timeout_millis);
  }

  // True when bytes are readable within the timeout (0 = poll).
  Result<bool> readable(int timeout_millis);

  void close() noexcept { fd_.reset(); }

  // Disable Nagle: debug commands are tiny request/response pairs.
  Status set_nodelay(bool on);

 private:
  Fd fd_;
};

}  // namespace dionea::ipc
