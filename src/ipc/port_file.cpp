#include "ipc/port_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "support/fault.hpp"
#include "support/strings.hpp"
#include "support/temp_file.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {

Status PortFile::publish(const PortRecord& record) const {
  // O_RDWR (not O_WRONLY): we pread the current tail byte to self-heal
  // after a writer that crashed mid-append.
  int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_error("open " + path_, errno);
  std::string line = strings::format("%d %d %u %lld\n", record.pid,
                                     record.parent_pid,
                                     static_cast<unsigned>(record.port),
                                     static_cast<long long>(record.seq));

  // Torn-append injection: a previous writer died after writing only a
  // prefix of its record (no trailing newline). The recovery below and
  // the reader's line tolerance must both absorb this.
  if (fault::Decision f = fault::probe("port_file.append");
      f.kind == fault::Kind::kTorn) {
    (void)::write(fd, line.data(), line.size() / 2);
  }

  // If the file does not end in '\n', a writer died mid-record: start
  // on a fresh line so our record is not glued to the torn fragment.
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\0';
    if (::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      line.insert(line.begin(), '\n');
    }
  }

  // Single write(2) of the full line: O_APPEND makes it atomic with
  // respect to concurrent publishers. A short count means the record
  // is torn on disk — report it; readers skip the fragment.
  Status status = Status::ok();
  ssize_t n;
  do {
    n = ::write(fd, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    status = errno_error("append " + path_, errno);
  } else if (n != static_cast<ssize_t>(line.size())) {
    status = Status(ErrorCode::kOsError,
                    "torn append to " + path_ + " (" + std::to_string(n) +
                        " of " + std::to_string(line.size()) + " bytes)");
  }
  // The record hands a port to another process: it must survive the
  // publisher crashing right after this call returns.
  if (status.is_ok() && ::fsync(fd) != 0) {
    status = errno_error("fsync " + path_, errno);
  }
  ::close(fd);
  return status;
}

Result<std::vector<PortRecord>> PortFile::read_all() const {
  std::vector<PortRecord> out;
  auto contents = read_file(path_);
  if (!contents.is_ok()) {
    if (contents.error().code() == ErrorCode::kNotFound) return out;
    return contents.error();
  }
  for (const std::string& line : strings::split(contents.value(), '\n')) {
    auto fields = strings::split_whitespace(line);
    if (fields.size() != 4) continue;  // blank or torn line
    PortRecord rec;
    std::int64_t pid = 0, ppid = 0, port = 0, seq = 0;
    if (!strings::parse_int(fields[0], &pid) ||
        !strings::parse_int(fields[1], &ppid) ||
        !strings::parse_int(fields[2], &port) ||
        !strings::parse_int(fields[3], &seq)) {
      continue;
    }
    if (port <= 0 || port > 65535) continue;
    rec.pid = static_cast<int>(pid);
    rec.parent_pid = static_cast<int>(ppid);
    rec.port = static_cast<std::uint16_t>(port);
    rec.seq = seq;
    out.push_back(rec);
  }
  return out;
}

Result<PortRecord> PortFile::await_pid(int pid, int timeout_millis) const {
  Stopwatch watch;
  while (true) {
    DIONEA_ASSIGN_OR_RETURN(std::vector<PortRecord> records, read_all());
    // Latest record wins: a pid may republish after a second fork.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->pid == pid) return *it;
    }
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "no port record for pid " + std::to_string(pid));
    }
    sleep_for_millis(5);
  }
}

Result<std::vector<PortRecord>> PortFile::read_new(size_t already_seen) const {
  DIONEA_ASSIGN_OR_RETURN(std::vector<PortRecord> records, read_all());
  if (records.size() <= already_seen) return std::vector<PortRecord>{};
  return std::vector<PortRecord>(records.begin() + already_seen,
                                 records.end());
}

}  // namespace dionea::ipc
