#include "ipc/pipe.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

namespace dionea::ipc {

Result<Pipe> Pipe::create(bool cloexec) {
  int fds[2];
  int flags = cloexec ? O_CLOEXEC : 0;
  if (::pipe2(fds, flags) != 0) return errno_error("pipe2", errno);
  return Pipe(Fd(fds[0]), Fd(fds[1]));
}

}  // namespace dionea::ipc
