// Loop wakeup primitive.
//
// Every Reactor needs a way for other threads to interrupt its wait.
// On Linux an eventfd(2) does this with one fd and one 8-byte counter;
// elsewhere (and as a fallback when eventfd creation fails, e.g. under
// fd-exhaustion fault injection) a pipe(2) pair serves. Either way the
// contract is the same: notify() from any thread is cheap and
// async-signal-safe, fd() is pollable for readability, drain() on the
// loop thread consumes all pending notifications.
#pragma once

#include "ipc/fd.hpp"
#include "ipc/pipe.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class Wakeup {
 public:
  static Result<Wakeup> create();

  Wakeup() = default;
  Wakeup(Wakeup&&) = default;
  Wakeup& operator=(Wakeup&&) = default;

  // The fd to watch for readability. -1 if default-constructed.
  int fd() const noexcept;

  // Make fd() readable. Any thread; a single write(2)/eventfd write.
  void notify() noexcept;

  // Consume every pending notification. Loop thread only.
  void drain() noexcept;

  // True when backed by eventfd(2) rather than a pipe pair.
  bool is_eventfd() const noexcept { return event_.valid(); }

 private:
  Fd event_;    // eventfd; valid() iff eventfd backing
  Pipe pipe_;   // fallback
};

}  // namespace dionea::ipc
