// Port-handoff file (§5.3 problem 3).
//
// "Dionea's fork handlers use a temporary file, where the port number
// of the most recently created process is saved." After fork, the
// child's debug server binds a fresh listener and appends a record
// {pid, parent_pid, port, seq} to this file; the client tails the file
// and opens a new session to each previously unseen pid.
//
// The file is append-only with line-oriented records and O_APPEND
// writes (atomic for short writes), so parent and any number of
// children can publish concurrently without a lock shared across the
// fork boundary — exactly the constraint fork handler C operates under.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace dionea::ipc {

struct PortRecord {
  int pid = 0;
  int parent_pid = 0;
  std::uint16_t port = 0;
  std::int64_t seq = 0;  // publisher-local ordering

  bool operator==(const PortRecord&) const = default;
};

class PortFile {
 public:
  explicit PortFile(std::string path) : path_(std::move(path)) {}

  const std::string& path() const noexcept { return path_; }

  // Append one record: a single O_APPEND write of the full line,
  // fsync'd so the record survives the publisher crashing immediately
  // after. If the file's tail is a torn record (a writer died
  // mid-append), the new record starts on a fresh line so it stays
  // parseable.
  Status publish(const PortRecord& record) const;

  // All records currently in the file, in append order. Torn or
  // garbage lines (a writer mid-write or crashed mid-append) are
  // skipped, not errors.
  Result<std::vector<PortRecord>> read_all() const;

  // Block until a record for `pid` appears or timeout elapses.
  Result<PortRecord> await_pid(int pid, int timeout_millis) const;

  // Records appended after the first `already_seen` ones.
  Result<std::vector<PortRecord>> read_new(size_t already_seen) const;

 private:
  std::string path_;
};

}  // namespace dionea::ipc
