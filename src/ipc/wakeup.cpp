#include "ipc/wakeup.hpp"

#include <unistd.h>

#include <cstdint>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

namespace dionea::ipc {

Result<Wakeup> Wakeup::create() {
  Wakeup wakeup;
#if defined(__linux__)
  int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    wakeup.event_ = Fd(efd);
    return wakeup;
  }
  // EMFILE/ENOSYS: fall through to the pipe pair.
#endif
  auto pipe = Pipe::create(/*cloexec=*/true);
  if (!pipe.is_ok()) return pipe.error();
  wakeup.pipe_ = std::move(pipe).value();
  (void)wakeup.pipe_.read_end().set_nonblocking(true);
  (void)wakeup.pipe_.write_end().set_nonblocking(true);
  return wakeup;
}

int Wakeup::fd() const noexcept {
  if (event_.valid()) return event_.get();
  return pipe_.read_end().get();
}

void Wakeup::notify() noexcept {
  if (event_.valid()) {
    std::uint64_t one = 1;
    (void)::write(event_.get(), &one, sizeof(one));
    return;
  }
  char byte = 'w';
  (void)::write(pipe_.write_end().get(), &byte, 1);
}

void Wakeup::drain() noexcept {
  if (event_.valid()) {
    std::uint64_t count = 0;
    (void)::read(event_.get(), &count, sizeof(count));
    return;
  }
  char buf[64];
  while (::read(pipe_.read_end().get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace dionea::ipc
