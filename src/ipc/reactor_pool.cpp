#include "ipc/reactor_pool.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace dionea::ipc {

ReactorPool::ReactorPool(int shards) {
  if (shards <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    shards = static_cast<int>(std::clamp(hw, 1u, 8u));
  }
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Reactor>());
  }
}

ReactorPool::~ReactorPool() { stop(); }

Status ReactorPool::start() {
  if (running_) return Status::ok();
  threads_.reserve(shards_.size());
  for (auto& reactor : shards_) {
    threads_.emplace_back([raw = reactor.get()] {
      Status status = raw->run();
      if (!status.is_ok()) {
        DLOG_ERROR("ipc") << "reactor shard exited: " << status.to_string();
      }
    });
  }
  running_ = true;
  return Status::ok();
}

void ReactorPool::stop() {
  if (!running_) return;
  for (auto& reactor : shards_) reactor->stop();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_ = false;
}

}  // namespace dionea::ipc
