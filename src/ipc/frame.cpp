#include "ipc/frame.hpp"

#include <cerrno>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

// Shared body of recv_frame / recv_frame_timeout. deadline_millis < 0
// means "block forever"; otherwise every read is bounded so a peer
// that dies after sending a partial frame yields kTimeout, not a hang.
Result<wire::Value> recv_frame_impl(TcpStream& stream, int deadline_millis) {
  Stopwatch watch;
  auto read_part = [&](void* data, size_t len) -> Status {
    if (deadline_millis < 0) return stream.read_exact(data, len);
    int remaining =
        deadline_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining <= 0) {
      return Status(ErrorCode::kTimeout, "frame stalled mid-read");
    }
    return stream.read_exact_timeout(data, len, remaining);
  };

  char header[8];
  DIONEA_RETURN_IF_ERROR(read_part(header, sizeof(header)));
  std::uint32_t magic = get_u32(header);
  if (magic != kFrameMagic) {
    return Error(ErrorCode::kProtocol,
                 strings::format("bad frame magic 0x%08x (socket crossed a "
                                 "fork without re-establishment?)",
                                 magic));
  }
  std::uint32_t len = get_u32(header + 4);
  if (len > max_recv_frame_bytes()) {
    return Error(ErrorCode::kProtocol,
                 strings::format("frame length %u exceeds receive limit %u",
                                 len, max_recv_frame_bytes()));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    DIONEA_RETURN_IF_ERROR(read_part(payload.data(), len));
  }
  metrics::add(metrics::Counter::kFramesReceived);
  metrics::add(metrics::Counter::kFrameBytesReceived, 8 + len);
  return wire::Value::decode(payload);
}

}  // namespace

std::uint32_t max_recv_frame_bytes() noexcept {
  // Constant-initialized atomic, not a guarded static: recv runs on
  // every thread including freshly forked children, and a guarded
  // static whose init was in flight on a sibling at fork time would
  // wedge the child. Racing first calls compute the same value.
  static std::atomic<std::uint32_t> cached{0};
  std::uint32_t cap = cached.load(std::memory_order_relaxed);
  if (cap != 0) return cap;
  cap = [] {
    const char* v = std::getenv("DIONEA_MAX_FRAME_BYTES");
    if (v == nullptr || *v == '\0') return kMaxFrameBytes;
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') return kMaxFrameBytes;
    if (parsed < 4096ull) return 4096u;
    if (parsed > kMaxFrameBytes) return kMaxFrameBytes;
    return static_cast<std::uint32_t>(parsed);
  }();
  cached.store(cap, std::memory_order_relaxed);
  return cap;
}

Result<std::string> encode_frame(const wire::Value& value) {
  std::string payload;
  value.encode(&payload);
  if (payload.size() > kMaxFrameBytes) {
    return Error(ErrorCode::kInvalidArgument,
                 strings::format("frame too large: %zu bytes", payload.size()));
  }
  char header[8];
  put_u32(header, kFrameMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  std::string buffer;
  buffer.reserve(sizeof(header) + payload.size());
  buffer.append(header, sizeof(header));
  buffer.append(payload);
  return buffer;
}

Status send_frame(TcpStream& stream, const wire::Value& value) {
  // Frame-boundary fault: a reset *before* any bytes go out keeps the
  // stream's framing intact — the failure is clean and typed.
  if (fault::Decision f = fault::probe("frame.send");
      f.kind == fault::Kind::kConnReset) {
    return errno_error("send_frame (injected)", ECONNRESET);
  }
  std::string payload;
  value.encode(&payload);
  if (payload.size() > kMaxFrameBytes) {
    return Status(ErrorCode::kInvalidArgument,
                  strings::format("frame too large: %zu bytes", payload.size()));
  }
  char header[8];
  put_u32(header, kFrameMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  // Single buffered write: a frame must hit the socket atomically with
  // respect to this process's other writers (the server serializes
  // writers, but keeping the invariant local makes it fork-robust).
  std::string buffer;
  buffer.reserve(sizeof(header) + payload.size());
  buffer.append(header, sizeof(header));
  buffer.append(payload);
  Status st = stream.write_all(buffer.data(), buffer.size());
  if (st.is_ok()) {
    metrics::add(metrics::Counter::kFramesSent);
    metrics::add(metrics::Counter::kFrameBytesSent, buffer.size());
  }
  return st;
}

Result<wire::Value> recv_frame(TcpStream& stream) {
  if (fault::Decision f = fault::probe("frame.recv");
      f.kind == fault::Kind::kConnReset) {
    return errno_error("recv_frame (injected)", ECONNRESET);
  }
  return recv_frame_impl(stream, -1);
}

Result<wire::Value> recv_frame_timeout(TcpStream& stream, int timeout_millis) {
  if (fault::Decision f = fault::probe("frame.recv");
      f.kind == fault::Kind::kConnReset) {
    return errno_error("recv_frame (injected)", ECONNRESET);
  }
  DIONEA_ASSIGN_OR_RETURN(bool ready, stream.readable(timeout_millis));
  if (!ready) {
    return Error(ErrorCode::kTimeout, "no frame within timeout");
  }
  return recv_frame_impl(stream, timeout_millis);
}

Result<wire::Value> FrameReader::recv_timeout(TcpStream& stream,
                                              int timeout_millis) {
  if (fault::Decision f = fault::probe("frame.recv");
      f.kind == fault::Kind::kConnReset) {
    return errno_error("recv_frame (injected)", ECONNRESET);
  }
  Stopwatch watch;
  while (true) {
    // Header first, then the length it announces.
    size_t target = 8;
    if (pending_.size() >= 8) {
      std::uint32_t magic = get_u32(pending_.data());
      if (magic != kFrameMagic) {
        pending_.clear();
        return Error(ErrorCode::kProtocol,
                     strings::format("bad frame magic 0x%08x (socket crossed "
                                     "a fork without re-establishment?)",
                                     magic));
      }
      std::uint32_t len = get_u32(pending_.data() + 4);
      if (len > max_recv_frame_bytes()) {
        pending_.clear();
        return Error(ErrorCode::kProtocol,
                     strings::format("frame length %u exceeds receive limit %u",
                                     len, max_recv_frame_bytes()));
      }
      target = 8 + len;
      if (pending_.size() == target) {
        std::string payload = pending_.substr(8);
        pending_.clear();
        metrics::add(metrics::Counter::kFramesReceived);
        metrics::add(metrics::Counter::kFrameBytesReceived, target);
        return wire::Value::decode(payload);
      }
    }
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining < 0) remaining = 0;
    DIONEA_ASSIGN_OR_RETURN(bool ready, stream.readable(remaining));
    if (!ready) {
      // The partial frame stays buffered; the next call resumes it.
      return Error(ErrorCode::kTimeout,
                   pending_.empty() ? "no frame within timeout"
                                    : "frame incomplete within timeout");
    }
    char chunk[4096];
    size_t want = target - pending_.size();
    if (want > sizeof(chunk)) want = sizeof(chunk);
    DIONEA_ASSIGN_OR_RETURN(size_t n, stream.fd().read_some(chunk, want));
    if (n == 0) {
      pending_.clear();
      return Error(ErrorCode::kClosed, "EOF on events channel");
    }
    pending_.append(chunk, n);
  }
}

}  // namespace dionea::ipc
