#include "ipc/frame.hpp"

#include <cstring>

#include "support/strings.hpp"

namespace dionea::ipc {
namespace {

void put_u32(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

Status send_frame(TcpStream& stream, const wire::Value& value) {
  std::string payload;
  value.encode(&payload);
  if (payload.size() > kMaxFrameBytes) {
    return Status(ErrorCode::kInvalidArgument,
                  strings::format("frame too large: %zu bytes", payload.size()));
  }
  char header[8];
  put_u32(header, kFrameMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  // Single buffered write: a frame must hit the socket atomically with
  // respect to this process's other writers (the server serializes
  // writers, but keeping the invariant local makes it fork-robust).
  std::string buffer;
  buffer.reserve(sizeof(header) + payload.size());
  buffer.append(header, sizeof(header));
  buffer.append(payload);
  return stream.write_all(buffer.data(), buffer.size());
}

Result<wire::Value> recv_frame(TcpStream& stream) {
  char header[8];
  DIONEA_RETURN_IF_ERROR(stream.read_exact(header, sizeof(header)));
  std::uint32_t magic = get_u32(header);
  if (magic != kFrameMagic) {
    return Error(ErrorCode::kProtocol,
                 strings::format("bad frame magic 0x%08x (socket crossed a "
                                 "fork without re-establishment?)",
                                 magic));
  }
  std::uint32_t len = get_u32(header + 4);
  if (len > kMaxFrameBytes) {
    return Error(ErrorCode::kProtocol,
                 strings::format("frame length %u exceeds limit", len));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    DIONEA_RETURN_IF_ERROR(stream.read_exact(payload.data(), len));
  }
  return wire::Value::decode(payload);
}

Result<wire::Value> recv_frame_timeout(TcpStream& stream, int timeout_millis) {
  DIONEA_ASSIGN_OR_RETURN(bool ready, stream.readable(timeout_millis));
  if (!ready) {
    return Error(ErrorCode::kTimeout, "no frame within timeout");
  }
  return recv_frame(stream);
}

}  // namespace dionea::ipc
