// RAII file descriptor (C++ Core Guidelines R.1: manage resources via
// RAII; P.8: don't leak). Every fd in the library lives in one of
// these; fork handler C closes inherited descriptors by dropping the
// owning objects.
#pragma once

#include <unistd.h>

#include <utility>

#include "support/result.hpp"

namespace dionea::ipc {

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int get() const noexcept { return fd_; }

  int release() noexcept { return std::exchange(fd_, -1); }

  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

  // dup(2) the underlying descriptor.
  Result<Fd> duplicate() const;

  Status set_nonblocking(bool nonblocking);
  Status set_cloexec(bool cloexec);

  // Full read/write with EINTR retry and short-transfer continuation
  // (a partial write(2) resumes where it left off, so callers' framing
  // survives). read_exact fails with kClosed on EOF before len bytes
  // arrive. Both honour fault::probe("fd.read"/"fd.write") injection.
  Status write_all(const void* data, size_t len);
  Status read_exact(void* data, size_t len);

  // read_exact bounded by a deadline: kTimeout if the peer stalls
  // mid-transfer (a half-open connection must not wedge the caller).
  Status read_exact_timeout(void* data, size_t len, int timeout_millis);

  // Single read(2); returns 0 on EOF.
  Result<size_t> read_some(void* data, size_t len);

 private:
  int fd_ = -1;
};

}  // namespace dionea::ipc
