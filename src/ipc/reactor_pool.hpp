// Sharded reactor pool.
//
// The hub routes thousands of sessions; one loop thread would make
// every slow callback head-of-line-block the fleet. A ReactorPool runs
// N Reactors on N threads and pins work to shards by id: everything
// belonging to one session (its upstream sockets, its timers) lives on
// shard_for(session_id), so per-session state needs no locking beyond
// the reactor's own cross-thread queues. Cross-shard handoff is
// Reactor::post() — each shard's Wakeup (eventfd) makes that cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ipc/reactor.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class ReactorPool {
 public:
  // shards <= 0 picks a default: min(hardware_concurrency, 8), at
  // least 1.
  explicit ReactorPool(int shards = 0);
  ~ReactorPool();
  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  // Spawn one loop thread per shard. Idempotent.
  Status start();

  // Stop every loop and join the threads. Idempotent; also run by the
  // destructor.
  void stop();

  int shard_count() const noexcept { return static_cast<int>(shards_.size()); }
  bool running() const noexcept { return running_; }

  // Stable pinning: the same id always lands on the same shard.
  int shard_for(std::uint64_t id) const noexcept {
    // Fibonacci hashing spreads sequential session ids across shards.
    return static_cast<int>((id * 11400714819323198485ull) %
                            shards_.size());
  }

  Reactor& shard(int index) noexcept { return *shards_[static_cast<size_t>(index)]; }
  Reactor& reactor_for(std::uint64_t id) noexcept {
    return shard(shard_for(id));
  }

 private:
  std::vector<std::unique_ptr<Reactor>> shards_;
  std::vector<std::thread> threads_;
  bool running_ = false;
};

}  // namespace dionea::ipc
