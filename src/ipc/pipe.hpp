// Anonymous pipes.
//
// The mp:: queues (§6.3: "The queue is implemented using a semaphore
// and a pipe") and the parallel-gem analog (§6.4: workers communicate
// "via IO.pipe") are built on these. The §6.4 bug is precisely about
// *inherited sibling pipe fds that nobody closes* — Pipe exposes
// explicit close_read()/close_write() so both the buggy and the fixed
// protocol can be expressed.
#pragma once

#include "ipc/fd.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class Pipe {
 public:
  // cloexec=false: children are expected to inherit the ends across
  // fork (the mp:: queues rely on it).
  static Result<Pipe> create(bool cloexec = false);

  Pipe() = default;
  Pipe(Pipe&&) = default;
  Pipe& operator=(Pipe&&) = default;

  Fd& read_end() noexcept { return read_; }
  Fd& write_end() noexcept { return write_; }
  const Fd& read_end() const noexcept { return read_; }
  const Fd& write_end() const noexcept { return write_; }

  void close_read() noexcept { read_.reset(); }
  void close_write() noexcept { write_.reset(); }

 private:
  Pipe(Fd read_fd, Fd write_fd)
      : read_(std::move(read_fd)), write_(std::move(write_fd)) {}
  Fd read_;
  Fd write_;
};

}  // namespace dionea::ipc
