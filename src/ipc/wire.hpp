// wire::Value — the structured payload of every debugger protocol
// message ("a predefined protocol", §4). A small JSON-like value with a
// compact, versioned binary encoding. Decoding is fail-safe: malformed
// bytes yield kProtocol errors, never UB, because frames cross a
// process boundary (a broken debuggee must not take the client down).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "support/result.hpp"

namespace dionea::ipc::wire {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : rep_(nullptr) {}
  Value(std::nullptr_t) : rep_(nullptr) {}          // NOLINT
  Value(bool b) : rep_(b) {}                        // NOLINT
  Value(std::int64_t i) : rep_(i) {}                // NOLINT
  Value(int i) : rep_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : rep_(d) {}                      // NOLINT
  Value(std::string s) : rep_(std::move(s)) {}      // NOLINT
  Value(const char* s) : rep_(std::string(s)) {}    // NOLINT
  Value(Array a) : rep_(std::move(a)) {}            // NOLINT
  Value(Object o) : rep_(std::move(o)) {}           // NOLINT

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(rep_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(rep_); }
  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_double() const noexcept { return std::holds_alternative<double>(rep_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(rep_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(rep_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(rep_); }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? std::get<bool>(rep_) : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (is_int()) return std::get<std::int64_t>(rep_);
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(rep_));
    return fallback;
  }
  double as_double(double fallback = 0.0) const noexcept {
    if (is_double()) return std::get<double>(rep_);
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(rep_));
    return fallback;
  }
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& mutable_array();
  Object& mutable_object();

  // Object field access; returns a shared null Value when missing or
  // when *this is not an object.
  const Value& at(const std::string& key) const noexcept;
  bool has(const std::string& key) const noexcept;
  void set(const std::string& key, Value value);

  // Convenience typed lookups with defaults.
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const {
    return at(key).as_int(fallback);
  }
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const {
    const Value& v = at(key);
    return v.is_string() ? v.as_string() : fallback;
  }
  bool get_bool(const std::string& key, bool fallback = false) const {
    return at(key).as_bool(fallback);
  }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }

  // Binary codec. encode appends to out; decode consumes from data and
  // advances *offset.
  void encode(std::string* out) const;
  static Result<Value> decode(const std::string& data);
  static Result<Value> decode_at(const std::string& data, size_t* offset,
                                 int depth = 0);

  // Human-readable JSON-ish rendering for logs and the CLI client.
  std::string to_json() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      rep_;
};

}  // namespace dionea::ipc::wire
