// Pluggable readiness backends for the Reactor.
//
// The original Reactor rebuilt a pollfd array and called poll(2) every
// round — fine for one debuggee's handful of sockets, O(n) per round
// for a hub multiplexing thousands of sessions. The Backend interface
// splits "which fds are ready" from the dispatch logic so the hub's
// shards can run epoll(7) (O(ready) per round, interest set kept in the
// kernel) while the portable poll(2) path remains the fallback and the
// differential-testing reference.
//
// Selection: make_reactor_backend() prefers epoll on Linux; set
// DIONEA_REACTOR_BACKEND=poll|epoll to force one (the reactor tests
// run the whole suite under both).
//
// Threading: a backend instance belongs to one Reactor and is only
// touched from its loop thread (add/remove happen while applying the
// pending queues, which runs on the loop thread).
#pragma once

#include <memory>
#include <vector>

#include "support/result.hpp"

namespace dionea::ipc {

class ReactorBackend {
 public:
  // One readiness report. `invalid` flags an fd the kernel says we no
  // longer own (POLLNVAL / EBADF): the caller must evict it — leaving
  // it registered turns a poll(2) loop into a busy-wait.
  struct Ready {
    int fd = -1;
    bool invalid = false;
  };

  virtual ~ReactorBackend() = default;

  virtual const char* name() const noexcept = 0;

  // Watch fd for readability. Re-adding a watched fd is a no-op.
  virtual Status add(int fd) = 0;

  // Stop watching fd. Unknown or already-closed fds are fine: eviction
  // paths remove fds the kernel has already forgotten.
  virtual void remove(int fd) = 0;

  // Block up to timeout_millis (-1 = forever) and append every ready
  // fd to `out` (which the caller has cleared). Returns the number
  // appended; EINTR is not an error (returns 0).
  virtual Result<int> wait(int timeout_millis, std::vector<Ready>& out) = 0;
};

// poll(2): portable reference implementation.
std::unique_ptr<ReactorBackend> make_poll_backend();

#if defined(__linux__)
// epoll(7): interest set lives in the kernel; wait cost scales with
// ready fds, not watched fds.
std::unique_ptr<ReactorBackend> make_epoll_backend();
#endif

// Default choice honouring DIONEA_REACTOR_BACKEND.
std::unique_ptr<ReactorBackend> make_reactor_backend();

}  // namespace dionea::ipc
