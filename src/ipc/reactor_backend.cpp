#include "ipc/reactor_backend.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "ipc/fd.hpp"
#include "support/logging.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace dionea::ipc {

namespace {

class PollBackend final : public ReactorBackend {
 public:
  const char* name() const noexcept override { return "poll"; }

  Status add(int fd) override {
    fds_.insert(fd);
    return Status::ok();
  }

  void remove(int fd) override { fds_.erase(fd); }

  Result<int> wait(int timeout_millis, std::vector<Ready>& out) override {
    pfds_.clear();
    for (int fd : fds_) pfds_.push_back(pollfd{fd, POLLIN, 0});
    int rc = ::poll(pfds_.data(), pfds_.size(), timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) return 0;
      return errno_error("poll", errno);
    }
    int appended = 0;
    for (const pollfd& pfd : pfds_) {
      if (pfd.revents & POLLNVAL) {
        out.push_back(Ready{pfd.fd, /*invalid=*/true});
        ++appended;
        continue;
      }
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      out.push_back(Ready{pfd.fd, /*invalid=*/false});
      ++appended;
    }
    return appended;
  }

 private:
  std::unordered_set<int> fds_;
  std::vector<pollfd> pfds_;  // scratch, reused across rounds
};

#if defined(__linux__)
class EpollBackend final : public ReactorBackend {
 public:
  explicit EpollBackend(Fd epoll_fd) : epoll_(std::move(epoll_fd)) {}

  const char* name() const noexcept override { return "epoll"; }

  Status add(int fd) override {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0) {
      return Status::ok();
    }
    if (errno == EEXIST) return Status::ok();
    // EBADF/EPERM: the fd is closed or not pollable — surface it so
    // the reactor can evict the handler instead of wedging.
    return errno_error("epoll_ctl(ADD)", errno);
  }

  void remove(int fd) override {
    // A close(2)d fd was already dropped from the interest set by the
    // kernel; EBADF/ENOENT here are the expected eviction races.
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  }

  Result<int> wait(int timeout_millis, std::vector<Ready>& out) override {
    epoll_event events[kMaxEvents];
    int rc = ::epoll_wait(epoll_.get(), events, kMaxEvents, timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) return 0;
      return errno_error("epoll_wait", errno);
    }
    for (int i = 0; i < rc; ++i) {
      // Unlike poll(2) there is no POLLNVAL analog: a closed fd simply
      // leaves the interest set, so nothing can busy-wait here.
      out.push_back(Ready{events[i].data.fd, /*invalid=*/false});
    }
    return rc;
  }

 private:
  // Batch size per wait round, not a capacity limit: with more than
  // kMaxEvents ready the kernel round-robins the remainder into the
  // next call, so nothing starves.
  static constexpr int kMaxEvents = 64;
  Fd epoll_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<ReactorBackend> make_poll_backend() {
  return std::make_unique<PollBackend>();
}

#if defined(__linux__)
std::unique_ptr<ReactorBackend> make_epoll_backend() {
  int efd = ::epoll_create1(EPOLL_CLOEXEC);
  if (efd < 0) {
    DLOG_WARN("ipc") << "epoll_create1 failed (" << std::strerror(errno)
                     << "); falling back to poll backend";
    return nullptr;
  }
  return std::make_unique<EpollBackend>(Fd(efd));
}
#endif

std::unique_ptr<ReactorBackend> make_reactor_backend() {
  const char* env = std::getenv("DIONEA_REACTOR_BACKEND");
#if defined(__linux__)
  if (env == nullptr || std::strcmp(env, "epoll") == 0) {
    if (auto backend = make_epoll_backend()) return backend;
  }
#else
  if (env != nullptr && std::strcmp(env, "epoll") == 0) {
    DLOG_WARN("ipc") << "epoll backend unavailable on this platform; "
                        "using poll";
  }
#endif
  return make_poll_backend();
}

}  // namespace dionea::ipc
