#include "ipc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "support/fault.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

// A write to a peer-closed socket must surface as EPIPE (a typed
// kClosed error the caller handles — heartbeats use exactly this as
// the dead-peer signal), never as a process-killing SIGPIPE. Installed
// once per process, the first time any socket is created here.
void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    struct sigaction current = {};
    // Respect an embedder's own SIGPIPE handler, if any.
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
      (void)::sigaction(SIGPIPE, &sa, nullptr);
    }
  });
}

}  // namespace

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  ignore_sigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket", errno);

  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("bind 127.0.0.1:" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), 16) != 0) return errno_error("listen", errno);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname", errno);
  }
  return TcpListener(std::move(fd), ntohs(addr.sin_port));
}

Result<TcpStream> TcpListener::accept() {
  while (true) {
    // Delayed-accept injection widens the window in which a client's
    // connect has succeeded but no one is reading its hello yet.
    if (fault::Decision f = fault::probe("socket.accept")) {
      if (f.kind == fault::Kind::kDelay) sleep_for_millis(f.delay_millis);
      if (f.kind == fault::Kind::kEintr) continue;
      if (f.kind == fault::Kind::kConnReset) {
        return errno_error("accept (injected)", ECONNRESET);
      }
    }
    int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) return TcpStream(Fd(client));
    if (errno == EINTR) continue;
    // A connection that was reset while queued is the peer's failure,
    // not the listener's: keep accepting.
    if (errno == ECONNABORTED) continue;
    return errno_error("accept", errno);
  }
}

Result<TcpStream> TcpListener::accept_timeout(int timeout_millis) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("poll", errno);
    }
    if (rc == 0) return Error(ErrorCode::kTimeout, "accept timed out");
    return accept();
  }
}

Result<TcpStream> TcpStream::connect(std::uint16_t port) {
  ignore_sigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket", errno);
  sockaddr_in addr = loopback_addr(port);
  while (true) {
    if (fault::Decision f = fault::probe("socket.connect")) {
      if (f.kind == fault::Kind::kDelay) sleep_for_millis(f.delay_millis);
      if (f.kind == fault::Kind::kEintr) continue;
      if (f.kind == fault::Kind::kConnReset) {
        return errno_error("connect (injected)", ECONNRESET);
      }
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return TcpStream(std::move(fd));
    }
    if (errno == EINTR) continue;
    return errno_error("connect 127.0.0.1:" + std::to_string(port), errno);
  }
}

Result<TcpStream> TcpStream::connect_retry(std::uint16_t port,
                                           int timeout_millis) {
  Stopwatch watch;
  while (true) {
    auto stream = connect(port);
    if (stream.is_ok()) return stream;
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "connect_retry to port " + std::to_string(port) + ": " +
                       stream.error().message());
    }
    sleep_for_millis(5);
  }
}

Result<bool> TcpStream::readable(int timeout_millis) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("poll", errno);
    }
    return rc > 0;
  }
}

Status TcpStream::set_nodelay(bool on) {
  int flag = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) !=
      0) {
    return errno_error("setsockopt TCP_NODELAY", errno);
  }
  return Status::ok();
}

}  // namespace dionea::ipc
