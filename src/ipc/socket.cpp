#include "ipc/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Result<TcpListener> TcpListener::bind(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket", errno);

  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("bind 127.0.0.1:" + std::to_string(port), errno);
  }
  if (::listen(fd.get(), 16) != 0) return errno_error("listen", errno);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname", errno);
  }
  return TcpListener(std::move(fd), ntohs(addr.sin_port));
}

Result<TcpStream> TcpListener::accept() {
  while (true) {
    int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) return TcpStream(Fd(client));
    if (errno == EINTR) continue;
    return errno_error("accept", errno);
  }
}

Result<TcpStream> TcpListener::accept_timeout(int timeout_millis) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("poll", errno);
    }
    if (rc == 0) return Error(ErrorCode::kTimeout, "accept timed out");
    return accept();
  }
}

Result<TcpStream> TcpStream::connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return errno_error("socket", errno);
  sockaddr_in addr = loopback_addr(port);
  while (true) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return TcpStream(std::move(fd));
    }
    if (errno == EINTR) continue;
    return errno_error("connect 127.0.0.1:" + std::to_string(port), errno);
  }
}

Result<TcpStream> TcpStream::connect_retry(std::uint16_t port,
                                           int timeout_millis) {
  Stopwatch watch;
  while (true) {
    auto stream = connect(port);
    if (stream.is_ok()) return stream;
    if (watch.elapsed_seconds() * 1000.0 > timeout_millis) {
      return Error(ErrorCode::kTimeout,
                   "connect_retry to port " + std::to_string(port) + ": " +
                       stream.error().message());
    }
    sleep_for_millis(5);
  }
}

Result<bool> TcpStream::readable(int timeout_millis) {
  pollfd pfd{fd_.get(), POLLIN, 0};
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("poll", errno);
    }
    return rc > 0;
  }
}

Status TcpStream::set_nodelay(bool on) {
  int flag = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) !=
      0) {
    return errno_error("setsockopt TCP_NODELAY", errno);
  }
  return Status::ok();
}

}  // namespace dionea::ipc
