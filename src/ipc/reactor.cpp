#include "ipc/reactor.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {

Reactor::Reactor() {
  auto pipe = Pipe::create(/*cloexec=*/true);
  DIONEA_CHECK(pipe.is_ok(), "reactor wakeup pipe");
  wakeup_ = std::move(pipe).value();
  (void)wakeup_.read_end().set_nonblocking(true);
}

Reactor::~Reactor() = default;

void Reactor::add_fd(int fd, Callback on_readable) {
  {
    std::scoped_lock lock(mutex_);
    pending_add_.emplace_back(fd, std::move(on_readable));
  }
  char byte = 'a';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::remove_fd(int fd) {
  {
    std::scoped_lock lock(mutex_);
    pending_remove_.push_back(fd);
  }
  char byte = 'r';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

int Reactor::add_periodic(int interval_millis, Callback fn) {
  int id;
  {
    std::scoped_lock lock(mutex_);
    id = next_timer_id_++;
    Timer timer;
    timer.interval_millis = interval_millis < 1 ? 1 : interval_millis;
    timer.fn = std::move(fn);
    // next_deadline is stamped on the loop thread when applied.
    pending_timer_add_.emplace_back(id, std::move(timer));
  }
  char byte = 't';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
  return id;
}

void Reactor::remove_periodic(int timer_id) {
  {
    std::scoped_lock lock(mutex_);
    pending_timer_remove_.push_back(timer_id);
  }
  char byte = 'u';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::post(Callback fn) {
  {
    std::scoped_lock lock(mutex_);
    pending_tasks_.push_back(std::move(fn));
  }
  char byte = 'p';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::stop() {
  {
    std::scoped_lock lock(mutex_);
    stop_requested_ = true;
  }
  char byte = 's';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::apply_pending_locked() {
  // Caller holds mutex_. Runs on the loop thread.
  for (auto& [fd, cb] : pending_add_) handlers_[fd] = std::move(cb);
  pending_add_.clear();
  for (int fd : pending_remove_) handlers_.erase(fd);
  pending_remove_.clear();
  for (auto& [id, timer] : pending_timer_add_) {
    timer.next_deadline =
        mono_seconds() + static_cast<double>(timer.interval_millis) / 1000.0;
    timers_[id] = std::move(timer);
  }
  pending_timer_add_.clear();
  for (int id : pending_timer_remove_) timers_.erase(id);
  pending_timer_remove_.clear();
}

int Reactor::fire_due_timers() {
  // Loop thread only; timers_ is not guarded. Collect ids first — a
  // timer callback may add/remove timers (applied next round).
  double now = mono_seconds();
  std::vector<int> due;
  for (auto& [id, timer] : timers_) {
    if (timer.next_deadline <= now) due.push_back(id);
  }
  int fired = 0;
  for (int id : due) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;
    // Rearm relative to now: a stalled loop fires once, not N times.
    it->second.next_deadline =
        now + static_cast<double>(it->second.interval_millis) / 1000.0;
    Callback cb = it->second.fn;  // copy: cb may remove_periodic itself
    cb();
    ++fired;
  }
  return fired;
}

void Reactor::drain_wakeup() {
  char buf[64];
  while (::read(wakeup_.read_end().get(), buf, sizeof(buf)) > 0) {
  }
}

Result<int> Reactor::poll_once(int timeout_millis) {
  std::vector<Callback> tasks;
  {
    std::scoped_lock lock(mutex_);
    apply_pending_locked();
    tasks.swap(pending_tasks_);
  }
  int fired = 0;
  for (auto& task : tasks) {
    task();
    ++fired;
  }

  std::vector<pollfd> pfds;
  std::vector<int> fds;
  pfds.push_back(pollfd{wakeup_.read_end().get(), POLLIN, 0});
  fds.push_back(-1);
  for (const auto& [fd, cb] : handlers_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
    fds.push_back(fd);
  }

  // Cap the poll so the nearest timer deadline is honoured.
  int effective_timeout = fired > 0 ? 0 : timeout_millis;
  if (!timers_.empty()) {
    double now = mono_seconds();
    double nearest = timers_.begin()->second.next_deadline;
    for (const auto& [id, timer] : timers_) {
      nearest = std::min(nearest, timer.next_deadline);
    }
    int until = static_cast<int>(std::ceil(std::max(0.0, nearest - now) *
                                           1000.0));
    if (effective_timeout < 0 || until < effective_timeout) {
      effective_timeout = until;
    }
  }

  int rc = ::poll(pfds.data(), pfds.size(), effective_timeout);
  if (rc < 0) {
    if (errno == EINTR) return fired;
    return errno_error("poll", errno);
  }
  // Dispatch latency = callback work after poll wakes, NOT the sleep
  // itself — how long a second client request queues behind the first.
  const bool record = metrics::Registry::instance().enabled();
  const std::int64_t dispatch_start = record ? mono_nanos() : 0;
  const int fired_before_dispatch = fired;
  fired += fire_due_timers();
  if (pfds[0].revents != 0) drain_wakeup();
  for (size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents & POLLNVAL) {
      // The fd was closed behind our back (a repair path, a handler
      // that closed without remove_fd). poll() reports POLLNVAL for it
      // on every call with no way to consume it, so leaving it
      // registered turns this loop into a busy-wait. Evict it.
      DLOG_WARN("ipc") << "reactor: evicting closed fd " << fds[i];
      std::scoped_lock lock(mutex_);
      handlers_.erase(fds[i]);
      continue;
    }
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    // The handler may remove itself (or others); look it up fresh and
    // run it outside the lock (CP.22: never call unknown code while
    // holding a lock).
    Callback cb;
    {
      std::scoped_lock lock(mutex_);
      apply_pending_locked();
      auto it = handlers_.find(fds[i]);
      if (it == handlers_.end()) continue;
      cb = it->second;  // copy: handler may remove_fd itself
    }
    cb();
    ++fired;
  }
  if (record && fired > fired_before_dispatch) {
    metrics::add(metrics::Counter::kReactorRounds);
    metrics::observe(
        metrics::Histogram::kReactorDispatchNanos,
        static_cast<std::uint64_t>(mono_nanos() - dispatch_start));
  }
  return fired;
}

Status Reactor::run() {
  running_ = true;
  while (true) {
    {
      std::scoped_lock lock(mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        break;
      }
    }
    auto fired = poll_once(250);
    if (!fired.is_ok()) {
      running_ = false;
      return fired.error();
    }
  }
  running_ = false;
  return Status::ok();
}

}  // namespace dionea::ipc
