#include "ipc/reactor.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "support/logging.hpp"

namespace dionea::ipc {

Reactor::Reactor() {
  auto pipe = Pipe::create(/*cloexec=*/true);
  DIONEA_CHECK(pipe.is_ok(), "reactor wakeup pipe");
  wakeup_ = std::move(pipe).value();
  (void)wakeup_.read_end().set_nonblocking(true);
}

Reactor::~Reactor() = default;

void Reactor::add_fd(int fd, Callback on_readable) {
  {
    std::scoped_lock lock(mutex_);
    pending_add_.emplace_back(fd, std::move(on_readable));
  }
  char byte = 'a';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::remove_fd(int fd) {
  {
    std::scoped_lock lock(mutex_);
    pending_remove_.push_back(fd);
  }
  char byte = 'r';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::post(Callback fn) {
  {
    std::scoped_lock lock(mutex_);
    pending_tasks_.push_back(std::move(fn));
  }
  char byte = 'p';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::stop() {
  {
    std::scoped_lock lock(mutex_);
    stop_requested_ = true;
  }
  char byte = 's';
  (void)::write(wakeup_.write_end().get(), &byte, 1);
}

void Reactor::apply_pending_locked() {
  // Caller holds mutex_. Runs on the loop thread.
  for (auto& [fd, cb] : pending_add_) handlers_[fd] = std::move(cb);
  pending_add_.clear();
  for (int fd : pending_remove_) handlers_.erase(fd);
  pending_remove_.clear();
}

void Reactor::drain_wakeup() {
  char buf[64];
  while (::read(wakeup_.read_end().get(), buf, sizeof(buf)) > 0) {
  }
}

Result<int> Reactor::poll_once(int timeout_millis) {
  std::vector<Callback> tasks;
  {
    std::scoped_lock lock(mutex_);
    apply_pending_locked();
    tasks.swap(pending_tasks_);
  }
  int fired = 0;
  for (auto& task : tasks) {
    task();
    ++fired;
  }

  std::vector<pollfd> pfds;
  std::vector<int> fds;
  pfds.push_back(pollfd{wakeup_.read_end().get(), POLLIN, 0});
  fds.push_back(-1);
  for (const auto& [fd, cb] : handlers_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
    fds.push_back(fd);
  }

  int rc = ::poll(pfds.data(), pfds.size(),
                  fired > 0 ? 0 : timeout_millis);
  if (rc < 0) {
    if (errno == EINTR) return fired;
    return errno_error("poll", errno);
  }
  if (pfds[0].revents != 0) drain_wakeup();
  for (size_t i = 1; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    // The handler may remove itself (or others); look it up fresh and
    // run it outside the lock (CP.22: never call unknown code while
    // holding a lock).
    Callback cb;
    {
      std::scoped_lock lock(mutex_);
      apply_pending_locked();
      auto it = handlers_.find(fds[i]);
      if (it == handlers_.end()) continue;
      cb = it->second;  // copy: handler may remove_fd itself
    }
    cb();
    ++fired;
  }
  return fired;
}

Status Reactor::run() {
  running_ = true;
  while (true) {
    {
      std::scoped_lock lock(mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        break;
      }
    }
    auto fired = poll_once(250);
    if (!fired.is_ok()) {
      running_ = false;
      return fired.error();
    }
  }
  running_ = false;
  return Status::ok();
}

}  // namespace dionea::ipc
