#include "ipc/reactor.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>

#include "support/logging.hpp"
#include "support/metrics.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {

Reactor::Reactor() : Reactor(make_reactor_backend()) {}

Reactor::Reactor(std::unique_ptr<ReactorBackend> backend)
    : backend_(std::move(backend)) {
  DIONEA_CHECK(backend_ != nullptr, "reactor backend");
  auto wakeup = Wakeup::create();
  DIONEA_CHECK(wakeup.is_ok(), "reactor wakeup");
  wakeup_ = std::move(wakeup).value();
  Status watched = backend_->add(wakeup_.fd());
  DIONEA_CHECK(watched.is_ok(), "reactor wakeup watch");
}

Reactor::~Reactor() = default;

void Reactor::add_fd(int fd, Callback on_readable) {
  {
    std::scoped_lock lock(mutex_);
    pending_fd_ops_.push_back(FdOp{/*add=*/true, fd, std::move(on_readable)});
  }
  wakeup_.notify();
}

void Reactor::remove_fd(int fd) {
  {
    std::scoped_lock lock(mutex_);
    pending_fd_ops_.push_back(FdOp{/*add=*/false, fd, nullptr});
  }
  wakeup_.notify();
}

int Reactor::add_periodic(int interval_millis, Callback fn) {
  int id;
  {
    std::scoped_lock lock(mutex_);
    id = next_timer_id_++;
    Timer timer;
    timer.interval_millis = interval_millis < 1 ? 1 : interval_millis;
    timer.fn = std::move(fn);
    // next_deadline is stamped on the loop thread when applied.
    pending_timer_add_.emplace_back(id, std::move(timer));
  }
  wakeup_.notify();
  return id;
}

void Reactor::remove_periodic(int timer_id) {
  {
    std::scoped_lock lock(mutex_);
    pending_timer_remove_.push_back(timer_id);
  }
  wakeup_.notify();
}

void Reactor::post(Callback fn) {
  {
    std::scoped_lock lock(mutex_);
    pending_tasks_.push_back(std::move(fn));
  }
  wakeup_.notify();
}

void Reactor::stop() {
  {
    std::scoped_lock lock(mutex_);
    stop_requested_ = true;
  }
  wakeup_.notify();
}

void Reactor::apply_pending_locked() {
  // Caller holds mutex_. Runs on the loop thread. Ops apply in call
  // order; removals feed the current batch's suppression set so a
  // reused fd number cannot inherit a stale readiness report.
  for (FdOp& op : pending_fd_ops_) {
    if (op.add) {
      Status watched = backend_->add(op.fd);
      if (!watched.is_ok()) {
        // The fd died between add_fd() and here (or is not pollable).
        // Keeping the handler would register a callback that can never
        // fire; drop it and say so.
        DLOG_WARN("ipc") << "reactor: cannot watch fd " << op.fd << ": "
                         << watched.to_string();
        continue;
      }
      handlers_[op.fd] = std::move(op.cb);
    } else {
      handlers_.erase(op.fd);
      backend_->remove(op.fd);
      dead_this_round_.insert(op.fd);
    }
  }
  pending_fd_ops_.clear();
  for (auto& [id, timer] : pending_timer_add_) {
    timer.next_deadline =
        mono_seconds() + static_cast<double>(timer.interval_millis) / 1000.0;
    timers_[id] = std::move(timer);
  }
  pending_timer_add_.clear();
  for (int id : pending_timer_remove_) timers_.erase(id);
  pending_timer_remove_.clear();
}

int Reactor::fire_due_timers() {
  // Loop thread only; timers_ is not guarded. Collect ids first — a
  // timer callback may add/remove timers (applied next round).
  double now = mono_seconds();
  std::vector<int> due;
  for (auto& [id, timer] : timers_) {
    if (timer.next_deadline <= now) due.push_back(id);
  }
  int fired = 0;
  for (int id : due) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;
    // Rearm relative to now: a stalled loop fires once, not N times.
    it->second.next_deadline =
        now + static_cast<double>(it->second.interval_millis) / 1000.0;
    Callback cb = it->second.fn;  // copy: cb may remove_periodic itself
    cb();
    ++fired;
  }
  return fired;
}

Result<int> Reactor::poll_once(int timeout_millis) {
  std::vector<Callback> tasks;
  {
    std::scoped_lock lock(mutex_);
    apply_pending_locked();
    tasks.swap(pending_tasks_);
  }
  int fired = 0;
  for (auto& task : tasks) {
    task();
    ++fired;
  }

  // Cap the wait so the nearest timer deadline is honoured.
  int effective_timeout = fired > 0 ? 0 : timeout_millis;
  if (!timers_.empty()) {
    double now = mono_seconds();
    double nearest = timers_.begin()->second.next_deadline;
    for (const auto& [id, timer] : timers_) {
      nearest = std::min(nearest, timer.next_deadline);
    }
    int until = static_cast<int>(std::ceil(std::max(0.0, nearest - now) *
                                           1000.0));
    if (effective_timeout < 0 || until < effective_timeout) {
      effective_timeout = until;
    }
  }

  ready_.clear();
  auto waited = backend_->wait(effective_timeout, ready_);
  if (!waited.is_ok()) return waited.error();

  // Dispatch latency = callback work after the wait wakes, NOT the
  // sleep itself — how long a second client request queues behind the
  // first.
  const bool record = metrics::Registry::instance().enabled();
  const std::int64_t dispatch_start = record ? mono_nanos() : 0;
  const int fired_before_dispatch = fired;
  fired += fire_due_timers();
  dead_this_round_.clear();
  for (const ReactorBackend::Ready& ready : ready_) {
    if (ready.fd == wakeup_.fd()) {
      wakeup_.drain();
      continue;
    }
    if (ready.invalid) {
      // The fd was closed behind our back (a repair path, a handler
      // that closed without remove_fd). poll() reports POLLNVAL for it
      // on every call with no way to consume it, so leaving it
      // registered turns this loop into a busy-wait. Evict it.
      DLOG_WARN("ipc") << "reactor: evicting closed fd " << ready.fd;
      std::scoped_lock lock(mutex_);
      handlers_.erase(ready.fd);
      backend_->remove(ready.fd);
      dead_this_round_.insert(ready.fd);
      continue;
    }
    // An earlier callback in this batch removed the fd (and may have
    // closed it; accept(2) may even have reused the number for a brand
    // new connection). This readiness report predates all of that —
    // drop it.
    if (dead_this_round_.count(ready.fd) != 0) continue;
    // The handler may remove itself (or others); look it up fresh and
    // run it outside the lock (CP.22: never call unknown code while
    // holding a lock).
    Callback cb;
    {
      std::scoped_lock lock(mutex_);
      apply_pending_locked();
      if (dead_this_round_.count(ready.fd) != 0) continue;
      auto it = handlers_.find(ready.fd);
      if (it == handlers_.end()) continue;
      cb = it->second;  // copy: handler may remove_fd itself
    }
    cb();
    ++fired;
  }
  if (record && fired > fired_before_dispatch) {
    metrics::add(metrics::Counter::kReactorRounds);
    metrics::observe(
        metrics::Histogram::kReactorDispatchNanos,
        static_cast<std::uint64_t>(mono_nanos() - dispatch_start));
  }
  return fired;
}

Status Reactor::run() {
  running_ = true;
  while (true) {
    {
      std::scoped_lock lock(mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        break;
      }
    }
    auto fired = poll_once(250);
    if (!fired.is_ok()) {
      running_ = false;
      return fired.error();
    }
  }
  running_ = false;
  return Status::ok();
}

}  // namespace dionea::ipc
