#include "ipc/fd.hpp"

#include <fcntl.h>

#include <cerrno>
#include <cstring>

namespace dionea::ipc {

Result<Fd> Fd::duplicate() const {
  int duped = ::fcntl(fd_, F_DUPFD_CLOEXEC, 0);
  if (duped < 0) return errno_error("dup", errno);
  return Fd(duped);
}

Status Fd::set_nonblocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl F_GETFL", errno);
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    return errno_error("fcntl F_SETFL", errno);
  }
  return Status::ok();
}

Status Fd::set_cloexec(bool cloexec) {
  int flags = ::fcntl(fd_, F_GETFD, 0);
  if (flags < 0) return errno_error("fcntl F_GETFD", errno);
  if (cloexec) {
    flags |= FD_CLOEXEC;
  } else {
    flags &= ~FD_CLOEXEC;
  }
  if (::fcntl(fd_, F_SETFD, flags) < 0) {
    return errno_error("fcntl F_SETFD", errno);
  }
  return Status::ok();
}

Status Fd::write_all(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd_, p + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("write", errno);
    }
    off += static_cast<size_t>(n);
  }
  return Status::ok();
}

Status Fd::read_exact(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd_, p + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("read", errno);
    }
    if (n == 0) {
      return Status(ErrorCode::kClosed, "EOF after " + std::to_string(off) +
                                            " of " + std::to_string(len) +
                                            " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return Status::ok();
}

Result<size_t> Fd::read_some(void* data, size_t len) {
  while (true) {
    ssize_t n = ::read(fd_, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("read", errno);
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace dionea::ipc
