#include "ipc/fd.hpp"

#include <fcntl.h>
#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "support/fault.hpp"
#include "support/timing.hpp"

namespace dionea::ipc {
namespace {

// Apply an injected fault decision to one transfer attempt. Returns a
// non-OK status when the fault must surface as an error; otherwise may
// shrink `*chunk` (short transfer) or stall (delay). kEintr is
// reported through *interrupted so the caller's retry loop runs —
// exactly the path a real EINTR would take.
Status apply_io_fault(const char* site, size_t* chunk, bool* interrupted) {
  fault::Decision decision = fault::probe(site);
  *interrupted = false;
  switch (decision.kind) {
    case fault::Kind::kNone:
    case fault::Kind::kTorn:
      return Status::ok();
    case fault::Kind::kEintr:
      *interrupted = true;
      return Status::ok();
    case fault::Kind::kConnReset:
      return errno_error(std::string(site) + " (injected)", ECONNRESET);
    case fault::Kind::kDelay:
      sleep_for_millis(decision.delay_millis);
      return Status::ok();
    case fault::Kind::kShortIo:
      *chunk = std::min(*chunk, std::max<size_t>(decision.cap_bytes, 1));
      return Status::ok();
  }
  return Status::ok();
}

}  // namespace

Result<Fd> Fd::duplicate() const {
  int duped = ::fcntl(fd_, F_DUPFD_CLOEXEC, 0);
  if (duped < 0) return errno_error("dup", errno);
  return Fd(duped);
}

Status Fd::set_nonblocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl F_GETFL", errno);
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) {
    return errno_error("fcntl F_SETFL", errno);
  }
  return Status::ok();
}

Status Fd::set_cloexec(bool cloexec) {
  int flags = ::fcntl(fd_, F_GETFD, 0);
  if (flags < 0) return errno_error("fcntl F_GETFD", errno);
  if (cloexec) {
    flags |= FD_CLOEXEC;
  } else {
    flags &= ~FD_CLOEXEC;
  }
  if (::fcntl(fd_, F_SETFD, flags) < 0) {
    return errno_error("fcntl F_SETFD", errno);
  }
  return Status::ok();
}

Status Fd::write_all(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    size_t chunk = len - off;
    bool interrupted = false;
    DIONEA_RETURN_IF_ERROR(apply_io_fault("fd.write", &chunk, &interrupted));
    if (interrupted) continue;
    ssize_t n = ::write(fd_, p + off, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("write after " + std::to_string(off) + " of " +
                             std::to_string(len) + " bytes",
                         errno);
    }
    off += static_cast<size_t>(n);
  }
  return Status::ok();
}

Status Fd::read_exact(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    size_t chunk = len - off;
    bool interrupted = false;
    DIONEA_RETURN_IF_ERROR(apply_io_fault("fd.read", &chunk, &interrupted));
    if (interrupted) continue;
    ssize_t n = ::read(fd_, p + off, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("read after " + std::to_string(off) + " of " +
                             std::to_string(len) + " bytes",
                         errno);
    }
    if (n == 0) {
      return Status(ErrorCode::kClosed, "EOF after " + std::to_string(off) +
                                            " of " + std::to_string(len) +
                                            " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return Status::ok();
}

Status Fd::read_exact_timeout(void* data, size_t len, int timeout_millis) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  Stopwatch watch;
  while (off < len) {
    int remaining =
        timeout_millis - static_cast<int>(watch.elapsed_seconds() * 1000.0);
    if (remaining <= 0) {
      return Status(ErrorCode::kTimeout,
                    "read stalled after " + std::to_string(off) + " of " +
                        std::to_string(len) + " bytes");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("poll", errno);
    }
    if (rc == 0) continue;  // re-check the deadline at the loop head
    size_t chunk = len - off;
    bool interrupted = false;
    DIONEA_RETURN_IF_ERROR(apply_io_fault("fd.read", &chunk, &interrupted));
    if (interrupted) continue;
    ssize_t n = ::read(fd_, p + off, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("read after " + std::to_string(off) + " of " +
                             std::to_string(len) + " bytes",
                         errno);
    }
    if (n == 0) {
      return Status(ErrorCode::kClosed, "EOF after " + std::to_string(off) +
                                            " of " + std::to_string(len) +
                                            " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return Status::ok();
}

Result<size_t> Fd::read_some(void* data, size_t len) {
  while (true) {
    size_t chunk = len;
    bool interrupted = false;
    DIONEA_RETURN_IF_ERROR(apply_io_fault("fd.read", &chunk, &interrupted));
    if (interrupted) continue;
    ssize_t n = ::read(fd_, data, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("read", errno);
    }
    return static_cast<size_t>(n);
  }
}

}  // namespace dionea::ipc
