#include "ipc/wire.hpp"

#include <cstring>

#include "support/strings.hpp"

namespace dionea::ipc::wire {
namespace {

// One-byte type tags. Integers are little-endian fixed 64-bit: the
// protocol only ever crosses localhost, so we trade compactness for
// simple, alignment-safe decoding.
enum Tag : char {
  kNull = 'n',
  kTrue = 't',
  kFalse = 'f',
  kInt = 'i',
  kDouble = 'd',
  kString = 's',
  kArray = 'a',
  kObject = 'o',
};

constexpr int kMaxDepth = 64;
constexpr size_t kMaxContainer = 1u << 24;  // 16M entries: anti-DoS bound

const Value& null_value() {
  static const Value kNullValue;
  return kNullValue;
}

void put_u64(std::string* out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

bool take_u64(const std::string& data, size_t* offset, std::uint64_t* v) {
  if (data.size() - *offset < 8) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[*offset + i]))
           << (8 * i);
  }
  *offset += 8;
  *v = out;
  return true;
}

}  // namespace

const std::string& Value::as_string() const {
  static const std::string kEmpty;
  return is_string() ? std::get<std::string>(rep_) : kEmpty;
}

const Array& Value::as_array() const {
  static const Array kEmpty;
  return is_array() ? std::get<Array>(rep_) : kEmpty;
}

const Object& Value::as_object() const {
  static const Object kEmpty;
  return is_object() ? std::get<Object>(rep_) : kEmpty;
}

Array& Value::mutable_array() {
  if (!is_array()) rep_ = Array{};
  return std::get<Array>(rep_);
}

Object& Value::mutable_object() {
  if (!is_object()) rep_ = Object{};
  return std::get<Object>(rep_);
}

const Value& Value::at(const std::string& key) const noexcept {
  if (!is_object()) return null_value();
  const auto& obj = std::get<Object>(rep_);
  auto it = obj.find(key);
  return it == obj.end() ? null_value() : it->second;
}

bool Value::has(const std::string& key) const noexcept {
  return is_object() && std::get<Object>(rep_).count(key) > 0;
}

void Value::set(const std::string& key, Value value) {
  mutable_object()[key] = std::move(value);
}

void Value::encode(std::string* out) const {
  if (is_null()) {
    out->push_back(kNull);
  } else if (is_bool()) {
    out->push_back(std::get<bool>(rep_) ? kTrue : kFalse);
  } else if (is_int()) {
    out->push_back(kInt);
    put_u64(out, static_cast<std::uint64_t>(std::get<std::int64_t>(rep_)));
  } else if (is_double()) {
    out->push_back(kDouble);
    std::uint64_t bits;
    double d = std::get<double>(rep_);
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(out, bits);
  } else if (is_string()) {
    const auto& s = std::get<std::string>(rep_);
    out->push_back(kString);
    put_u64(out, s.size());
    out->append(s);
  } else if (is_array()) {
    const auto& a = std::get<Array>(rep_);
    out->push_back(kArray);
    put_u64(out, a.size());
    for (const Value& v : a) v.encode(out);
  } else {
    const auto& o = std::get<Object>(rep_);
    out->push_back(kObject);
    put_u64(out, o.size());
    for (const auto& [key, v] : o) {
      put_u64(out, key.size());
      out->append(key);
      v.encode(out);
    }
  }
}

Result<Value> Value::decode(const std::string& data) {
  size_t offset = 0;
  DIONEA_ASSIGN_OR_RETURN(Value v, decode_at(data, &offset));
  if (offset != data.size()) {
    return Error(ErrorCode::kProtocol,
                 strings::format("trailing %zu bytes after value",
                                 data.size() - offset));
  }
  return v;
}

Result<Value> Value::decode_at(const std::string& data, size_t* offset,
                               int depth) {
  if (depth > kMaxDepth) {
    return Error(ErrorCode::kProtocol, "value nesting too deep");
  }
  if (*offset >= data.size()) {
    return Error(ErrorCode::kProtocol, "truncated value (no tag)");
  }
  char tag = data[(*offset)++];
  switch (tag) {
    case kNull:
      return Value(nullptr);
    case kTrue:
      return Value(true);
    case kFalse:
      return Value(false);
    case kInt: {
      std::uint64_t bits;
      if (!take_u64(data, offset, &bits)) {
        return Error(ErrorCode::kProtocol, "truncated int");
      }
      return Value(static_cast<std::int64_t>(bits));
    }
    case kDouble: {
      std::uint64_t bits;
      if (!take_u64(data, offset, &bits)) {
        return Error(ErrorCode::kProtocol, "truncated double");
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kString: {
      std::uint64_t len;
      if (!take_u64(data, offset, &len) || data.size() - *offset < len) {
        return Error(ErrorCode::kProtocol, "truncated string");
      }
      Value v(data.substr(*offset, len));
      *offset += len;
      return v;
    }
    case kArray: {
      std::uint64_t count;
      if (!take_u64(data, offset, &count) || count > kMaxContainer) {
        return Error(ErrorCode::kProtocol, "bad array length");
      }
      Array arr;
      arr.reserve(static_cast<size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        DIONEA_ASSIGN_OR_RETURN(Value elem,
                                decode_at(data, offset, depth + 1));
        arr.push_back(std::move(elem));
      }
      return Value(std::move(arr));
    }
    case kObject: {
      std::uint64_t count;
      if (!take_u64(data, offset, &count) || count > kMaxContainer) {
        return Error(ErrorCode::kProtocol, "bad object length");
      }
      Object obj;
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t klen;
        if (!take_u64(data, offset, &klen) || data.size() - *offset < klen) {
          return Error(ErrorCode::kProtocol, "truncated object key");
        }
        std::string key = data.substr(*offset, klen);
        *offset += klen;
        DIONEA_ASSIGN_OR_RETURN(Value elem,
                                decode_at(data, offset, depth + 1));
        obj.emplace(std::move(key), std::move(elem));
      }
      return Value(std::move(obj));
    }
    default:
      return Error(ErrorCode::kProtocol,
                   strings::format("unknown wire tag 0x%02x",
                                   static_cast<unsigned char>(tag)));
  }
}

std::string Value::to_json() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(rep_) ? "true" : "false";
  if (is_int()) return std::to_string(std::get<std::int64_t>(rep_));
  if (is_double()) return strings::format("%g", std::get<double>(rep_));
  if (is_string()) {
    return "\"" + strings::escape(std::get<std::string>(rep_)) + "\"";
  }
  if (is_array()) {
    std::string out = "[";
    const auto& arr = std::get<Array>(rep_);
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out += ",";
      out += arr[i].to_json();
    }
    return out + "]";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, v] : std::get<Object>(rep_)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + strings::escape(key) + "\":" + v.to_json();
  }
  return out + "}";
}

}  // namespace dionea::ipc::wire
