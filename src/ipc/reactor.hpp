// Reactor-pattern event loop over a pluggable readiness backend.
//
// §4: "this dedicated thread handles the requests asynchronously,
// treating each request as an event dispatched by a loop. The
// implementation of this listener thread is inspired by the Reactor
// pattern [Schmidt'95]." The debug server's listener thread runs one
// of these; handlers for the connection socket and per-channel command
// sockets are registered as readable-callbacks. The hub's shards run
// one per core (see ReactorPool), so readiness detection is delegated
// to a ReactorBackend: epoll(7) on Linux, poll(2) as the portable
// fallback (DIONEA_REACTOR_BACKEND forces one).
//
// Threading model: run() executes on exactly one thread (the listener
// thread / the shard thread). add_fd/remove_fd/post/stop may be called
// from any thread; mutations are queued and applied on the loop
// thread, with a Wakeup (eventfd, pipe fallback) interrupting the
// backend's wait.
//
// Reentrancy: a callback may close its own fd and remove_fd it — even
// if a fresh accept(2) immediately reuses the fd number, the stale
// readiness report from the current round is suppressed (removals are
// tracked per dispatch batch; the reused fd's first real readiness is
// seen next round).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ipc/reactor_backend.hpp"
#include "ipc/wakeup.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class Reactor {
 public:
  using Callback = std::function<void()>;

  // Default backend: make_reactor_backend() (epoll on Linux).
  Reactor();
  explicit Reactor(std::unique_ptr<ReactorBackend> backend);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Invoke callback on the loop thread whenever fd is readable (or the
  // peer hung up; the callback is expected to detect EOF itself).
  void add_fd(int fd, Callback on_readable);
  void remove_fd(int fd);

  // Invoke callback on the loop thread every interval_millis (first
  // firing one interval from registration). Returns an id for
  // remove_periodic. Used for heartbeats and liveness sweeps.
  int add_periodic(int interval_millis, Callback fn);
  void remove_periodic(int timer_id);

  // Run fn once on the loop thread as soon as possible.
  void post(Callback fn);

  // Block dispatching events until stop(). Returns the status that
  // terminated the loop (OK after stop()).
  Status run();

  // One dispatch round with timeout; used by tests. Returns number of
  // callbacks fired.
  Result<int> poll_once(int timeout_millis);

  void stop();

  bool running() const noexcept { return running_; }
  const char* backend_name() const noexcept { return backend_->name(); }

 private:
  struct Timer {
    int interval_millis = 0;
    double next_deadline = 0.0;  // mono_seconds()
    Callback fn;
  };

  // add_fd/remove_fd are applied strictly in call order: with fd-number
  // reuse, "remove old 7, add new 7" must not collapse to "no 7" or
  // "old 7".
  struct FdOp {
    bool add = false;
    int fd = -1;
    Callback cb;  // add only
  };

  void apply_pending_locked();
  int fire_due_timers();

  std::unique_ptr<ReactorBackend> backend_;
  Wakeup wakeup_;
  mutable std::mutex mutex_;
  std::unordered_map<int, Callback> handlers_;  // guarded by mutex_
  std::unordered_map<int, Timer> timers_;       // loop thread only
  std::vector<FdOp> pending_fd_ops_;            // guarded by mutex_
  std::vector<Callback> pending_tasks_;         // guarded by mutex_
  std::vector<std::pair<int, Timer>> pending_timer_add_;  // guarded by mutex_
  std::vector<int> pending_timer_remove_;                 // guarded by mutex_
  int next_timer_id_ = 1;                                 // guarded by mutex_
  bool stop_requested_ = false;  // guarded by mutex_
  bool running_ = false;

  // Loop thread only: scratch for the current dispatch batch.
  std::vector<ReactorBackend::Ready> ready_;
  std::unordered_set<int> dead_this_round_;
};

}  // namespace dionea::ipc
