// Poll(2)-based Reactor.
//
// §4: "this dedicated thread handles the requests asynchronously,
// treating each request as an event dispatched by a loop. The
// implementation of this listener thread is inspired by the Reactor
// pattern [Schmidt'95]." The debug server's listener thread runs one
// of these; handlers for the connection socket and per-channel command
// sockets are registered as readable-callbacks.
//
// Threading model: run() executes on exactly one thread (the listener
// thread). add_fd/remove_fd/post/stop may be called from any thread;
// mutations are queued and applied on the loop thread, with a wakeup
// pipe interrupting poll().
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ipc/pipe.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class Reactor {
 public:
  using Callback = std::function<void()>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Invoke callback on the loop thread whenever fd is readable (or the
  // peer hung up; the callback is expected to detect EOF itself).
  void add_fd(int fd, Callback on_readable);
  void remove_fd(int fd);

  // Invoke callback on the loop thread every interval_millis (first
  // firing one interval from registration). Returns an id for
  // remove_periodic. Used for heartbeats and liveness sweeps.
  int add_periodic(int interval_millis, Callback fn);
  void remove_periodic(int timer_id);

  // Run fn once on the loop thread as soon as possible.
  void post(Callback fn);

  // Block dispatching events until stop(). Returns the status that
  // terminated the loop (OK after stop()).
  Status run();

  // One dispatch round with timeout; used by tests. Returns number of
  // callbacks fired.
  Result<int> poll_once(int timeout_millis);

  void stop();

  bool running() const noexcept { return running_; }

 private:
  struct Timer {
    int interval_millis = 0;
    double next_deadline = 0.0;  // mono_seconds()
    Callback fn;
  };

  void apply_pending_locked();
  void drain_wakeup();
  int fire_due_timers();

  Pipe wakeup_;
  mutable std::mutex mutex_;
  std::unordered_map<int, Callback> handlers_;        // loop thread only
  std::unordered_map<int, Timer> timers_;             // loop thread only
  std::vector<std::pair<int, Callback>> pending_add_;  // guarded by mutex_
  std::vector<int> pending_remove_;                    // guarded by mutex_
  std::vector<Callback> pending_tasks_;                // guarded by mutex_
  std::vector<std::pair<int, Timer>> pending_timer_add_;  // guarded by mutex_
  std::vector<int> pending_timer_remove_;                 // guarded by mutex_
  int next_timer_id_ = 1;                                 // guarded by mutex_
  bool stop_requested_ = false;                        // guarded by mutex_
  bool running_ = false;
};

}  // namespace dionea::ipc
