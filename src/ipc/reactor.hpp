// Poll(2)-based Reactor.
//
// §4: "this dedicated thread handles the requests asynchronously,
// treating each request as an event dispatched by a loop. The
// implementation of this listener thread is inspired by the Reactor
// pattern [Schmidt'95]." The debug server's listener thread runs one
// of these; handlers for the connection socket and per-channel command
// sockets are registered as readable-callbacks.
//
// Threading model: run() executes on exactly one thread (the listener
// thread). add_fd/remove_fd/post/stop may be called from any thread;
// mutations are queued and applied on the loop thread, with a wakeup
// pipe interrupting poll().
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ipc/pipe.hpp"
#include "support/result.hpp"

namespace dionea::ipc {

class Reactor {
 public:
  using Callback = std::function<void()>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Invoke callback on the loop thread whenever fd is readable (or the
  // peer hung up; the callback is expected to detect EOF itself).
  void add_fd(int fd, Callback on_readable);
  void remove_fd(int fd);

  // Run fn once on the loop thread as soon as possible.
  void post(Callback fn);

  // Block dispatching events until stop(). Returns the status that
  // terminated the loop (OK after stop()).
  Status run();

  // One dispatch round with timeout; used by tests. Returns number of
  // callbacks fired.
  Result<int> poll_once(int timeout_millis);

  void stop();

  bool running() const noexcept { return running_; }

 private:
  void apply_pending_locked();
  void drain_wakeup();

  Pipe wakeup_;
  mutable std::mutex mutex_;
  std::unordered_map<int, Callback> handlers_;        // loop thread only
  std::vector<std::pair<int, Callback>> pending_add_;  // guarded by mutex_
  std::vector<int> pending_remove_;                    // guarded by mutex_
  std::vector<Callback> pending_tasks_;                // guarded by mutex_
  bool stop_requested_ = false;                        // guarded by mutex_
  bool running_ = false;
};

}  // namespace dionea::ipc
