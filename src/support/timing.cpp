#include "support/timing.hpp"

#include <cerrno>
#include <cstdio>
#include <ctime>
#include <thread>

namespace dionea {

double mono_seconds() noexcept {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

std::int64_t mono_nanos() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

void sleep_for_millis(std::int64_t millis) {
  if (millis <= 0) return;
  timespec req{};
  req.tv_sec = static_cast<time_t>(millis / 1000);
  req.tv_nsec = static_cast<long>((millis % 1000) * 1'000'000L);
  timespec rem{};
  while (::nanosleep(&req, &rem) != 0 && errno == EINTR) req = rem;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%d'%02d\"", minutes,
                  static_cast<int>(seconds - minutes * 60.0));
  }
  return buf;
}

}  // namespace dionea
