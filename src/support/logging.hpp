// Minimal async-signal-tolerant logger.
//
// The debug server logs from multiple interpreter threads and from the
// child side of fork(); we therefore format each record into a single
// buffer and emit it with one write(2), which keeps records atomic
// across processes sharing a terminal (POSIX guarantees atomicity for
// small writes to the same pipe/tty).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace dionea::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* level_name(Level level) noexcept;

// Global threshold. Default: kWarn (quiet for benches); tests and
// examples raise or lower it. Reads/writes are relaxed-atomic.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

// Route records to a file descriptor (default 2 = stderr).
void set_fd(int fd) noexcept;

bool enabled(Level level) noexcept;

// Emit one record: "[pid:tid LEVEL component] message\n".
void emit(Level level, std::string_view component, std::string_view message);

namespace detail {
class Record {
 public:
  Record(Level level, std::string_view component)
      : level_(level), component_(component) {}
  ~Record() { emit(level_, component_, stream_.str()); }
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  template <typename T>
  Record& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dionea::log

#define DIONEA_LOG(level, component)                      \
  if (!::dionea::log::enabled(level)) {                   \
  } else                                                  \
    ::dionea::log::detail::Record(level, component)

#define DLOG_TRACE(component) DIONEA_LOG(::dionea::log::Level::kTrace, component)
#define DLOG_DEBUG(component) DIONEA_LOG(::dionea::log::Level::kDebug, component)
#define DLOG_INFO(component) DIONEA_LOG(::dionea::log::Level::kInfo, component)
#define DLOG_WARN(component) DIONEA_LOG(::dionea::log::Level::kWarn, component)
#define DLOG_ERROR(component) DIONEA_LOG(::dionea::log::Level::kError, component)
