// Deterministic splitmix64/xoshiro-style RNG.
//
// Corpus generation and property tests must be reproducible across
// runs and across fork(2) (std::mt19937 would also work, but a small
// explicit generator keeps the seeded state trivially copyable into
// children). Not cryptographic.
#pragma once

#include <cstdint>
#include <string>

namespace dionea {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;

  double next_double() noexcept;  // [0, 1)

  bool next_bool(double p_true = 0.5) noexcept;

  // Lowercase ASCII word of the given length.
  std::string next_word(int min_len, int max_len);

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace dionea
