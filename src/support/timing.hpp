// Monotonic timing helpers shared by the VM scheduler, the debugger
// (timeouts) and the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dionea {

using Clock = std::chrono::steady_clock;

// Seconds since an arbitrary (per-process) epoch.
double mono_seconds() noexcept;

// Nanoseconds since the steady-clock epoch.
std::int64_t mono_nanos() noexcept;

// Sleep that tolerates EINTR.
void sleep_for_millis(std::int64_t millis);

// "1601.0s" / "2.31s" / "47ms" — humanized duration for reports.
std::string format_duration(double seconds);

// Stopwatch for benches and tests.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace dionea
