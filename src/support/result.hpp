// Result<T> / Status: lightweight expected-style error handling.
//
// The debugger runs inside the debuggee process; throwing across the
// VM dispatch loop or a fork boundary is never safe, so fallible
// operations in ipc/, debugger/ and mp/ return Result<T> instead of
// throwing. Exceptions are reserved for programmer errors (DIONEA_CHECK).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace dionea {

// Error category, roughly mirroring errno domains we care about.
enum class ErrorCode {
  kUnknown,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnavailable,      // transient: retry may help (EAGAIN, connection refused)
  kClosed,           // peer or fd gone (EPIPE, EOF)
  kTimeout,
  kProtocol,         // malformed frame / wire value
  kInternal,         // invariant violation inside this library
  kOsError,          // unclassified errno
};

const char* error_code_name(ErrorCode code) noexcept;

// A failed operation: code + human-readable context.
class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string to_string() const {
    return std::string(error_code_name(code_)) + ": " + message_;
  }

  // Wrap with additional context, innermost message last.
  Error wrap(const std::string& context) const {
    return Error(code_, context + ": " + message_);
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Build an Error from the current errno value.
Error errno_error(const std::string& what, int saved_errno);

// Status: success or an Error. Use for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string message)
      : error_(Error(code, std::move(message))) {}

  static Status ok() { return Status(); }

  bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  const Error& error() const { return *error_; }

  std::string to_string() const {
    return is_ok() ? "OK" : error_->to_string();
  }

 private:
  std::optional<Error> error_;
};

// Result<T>: a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}       // NOLINT
  Result(Error error) : rep_(std::move(error)) {}   // NOLINT
  Result(ErrorCode code, std::string message)
      : rep_(Error(code, std::move(message))) {}

  bool is_ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return is_ok(); }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const Error& error() const { return std::get<Error>(rep_); }

  Status status() const {
    return is_ok() ? Status::ok() : Status(error());
  }

  T value_or(T fallback) const {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> rep_;
};

// Propagate-on-failure helpers (statement-expression free: use early return).
#define DIONEA_RETURN_IF_ERROR(expr)                         \
  do {                                                       \
    ::dionea::Status _dionea_status = (expr);                \
    if (!_dionea_status.is_ok()) return _dionea_status.error(); \
  } while (0)

#define DIONEA_CONCAT_INNER(a, b) a##b
#define DIONEA_CONCAT(a, b) DIONEA_CONCAT_INNER(a, b)

#define DIONEA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.is_ok()) return tmp.error();              \
  lhs = std::move(tmp).value()

#define DIONEA_ASSIGN_OR_RETURN(lhs, expr) \
  DIONEA_ASSIGN_OR_RETURN_IMPL(DIONEA_CONCAT(_dionea_res_, __LINE__), lhs, expr)

// Hard invariant check: aborts with location. Used for programmer errors
// only — never for conditions an API caller can trigger.
#define DIONEA_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "DIONEA_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, (msg));                           \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace dionea
