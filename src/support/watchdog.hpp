// Session watchdog: escalate instead of hanging.
//
// A debuggee can wedge in ways the protocol cannot see — a command
// handler stuck on VM state, a thread that never gives the GIL back, a
// trace hook that stopped making progress. Without a deadline the
// console just hangs with it. The watchdog samples a caller-supplied
// stall probe on its own OS thread (deliberately NOT the listener
// thread — that is exactly the thread that gets stuck) and walks a
// one-way-escalating, recoverable state machine:
//
//   healthy -> hung -> degraded -> detached
//
// healthy..degraded recover as soon as the stall clears; detached is
// terminal — by then the owner has torn the session down. What each
// state *means* (emit an event, disable tracing, drop the session) is
// entirely the owner's business, expressed in the transition callback;
// this class only keeps time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace dionea {

class Watchdog {
 public:
  enum class State : int { kHealthy = 0, kHung, kDegraded, kDetached };
  static const char* state_name(State state) noexcept;

  struct Options {
    int tick_millis = 100;
    int hung_after_millis = 2'000;
    int degraded_after_millis = 6'000;
    int detached_after_millis = 15'000;
  };

  // What the probe reports: how long the worst current stall has
  // lasted (0 = everything is moving) and which deadline it is
  // (a static string; shown in events and logs).
  struct Stall {
    std::int64_t millis = 0;
    const char* what = "";
  };

  using Probe = std::function<Stall()>;
  // Called (from the watchdog thread) on every state change, forward
  // or recovering. Keep it non-blocking-ish: a transition callback
  // that wedges defeats the purpose.
  using TransitionFn = std::function<void(State from, State to,
                                          const Stall& stall)>;

  Watchdog(Options options, Probe probe, TransitionFn on_transition);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop();  // idempotent; joins the thread

  // Fork handler C: the watchdog thread does not exist in the child.
  // Abandon the handle (joining it would hang forever) and reset so
  // the owner can start() a fresh one after the listener is rebound.
  void abandon_after_fork() noexcept;

  bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  State state() const noexcept {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }

  // Deterministic single evaluation for tests: sample the probe and
  // apply the escalation rules once, on the calling thread.
  void tick_for_test();

 private:
  void run();
  void evaluate(const Stall& stall);

  Options options_;
  Probe probe_;
  TransitionFn on_transition_;
  std::atomic<int> state_{0};
  std::atomic<bool> running_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mutex_
  std::unique_ptr<std::thread> thread_;
};

}  // namespace dionea
