// Post-mortem capture: async-signal-safe crash reports.
//
// The paper's promise is a debug session that *survives* the debuggee
// — but a debuggee that takes SIGSEGV gives the client nothing except
// a dropped socket. This module turns that opaque disconnect into an
// inspectable corpse: install() arms SIGSEGV/SIGBUS/SIGFPE/SIGILL/
// SIGABRT handlers that write a line-oriented crash report (the
// "DIONEA-CRASH v1" format, see DESIGN.md) to a pre-computed temp
// path, optionally blast a pre-encoded `process-crashed` frame down
// the debug events socket, and then re-raise the signal with its
// default disposition so the exit status stays honest.
//
// Everything reachable from the handler obeys the async-signal-safety
// rules: no malloc, no locks, no stdio — only write/open/close-class
// syscalls through the fixed-buffer Writer. Report *content* comes
// from section callbacks (raw function pointers + context, registered
// up front by the VM / debug server); sections read live interpreter
// state best-effort with hard sanity caps, so a corrupted heap yields
// a truncated report rather than a wedged handler (a nested fault
// trips the re-entry guard and re-raises immediately).
//
// capture_now() reuses the same machinery from normal (non-signal)
// code for faults the process detects itself: fatal deadlocks, failed
// fork self-checks.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "support/result.hpp"

namespace dionea::crash {

// Fixed-buffer writer over a raw fd; every method is async-signal-safe.
class Writer {
 public:
  explicit Writer(int fd) noexcept : fd_(fd) {}
  ~Writer() { flush(); }
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void str(const char* s) noexcept;           // NUL-terminated
  void strn(const char* s, size_t n) noexcept;
  void dec(long long v) noexcept;
  void udec(unsigned long long v) noexcept;
  void hex(unsigned long long v) noexcept;    // 0x-prefixed
  void nl() noexcept { strn("\n", 1); }
  void flush() noexcept;

 private:
  int fd_;
  char buf_[512];
  size_t len_ = 0;
};

// A report section: writes its own lines. Must itself be AS-safe
// (no allocation, no locks; racy reads of live state are expected and
// acceptable — cap every loop).
using SectionFn = void (*)(Writer&, void*);

inline constexpr int kMaxSections = 16;

struct Options {
  // Directory for reports. Empty: $DIONEA_CRASH_DIR, else $TMPDIR,
  // else /tmp. The report file is dionea-crash.<pid>.txt inside it.
  std::string dir;
};

// Arm the handlers (idempotent; the second install only updates the
// directory). Uses a dedicated sigaltstack so a blown interpreter
// stack still produces a report.
Status install(const Options& options = {});
bool installed() noexcept;
// Restore default dispositions and forget sections (tests).
void uninstall() noexcept;

// Re-key the report path to the new pid and drop the (now meaningless)
// notify fd. Called from fork handler C — plain code, child context.
void refresh_after_fork() noexcept;

// Where the next report will land. The pointer form reads a static
// buffer and is AS-safe; the string forms are for normal code.
const char* report_path() noexcept;
std::string report_path_string();
std::string crash_dir_string();

// Register / remove a report section. Returns a slot id (< 0 when all
// kMaxSections slots are taken). Not AS-safe; call from normal code.
int add_section(const char* name, SectionFn fn, void* ctx) noexcept;
void remove_section(int id) noexcept;

// Path of an auxiliary log whose tail the report should embed (the
// DRLG replay log). Copied into a static buffer; empty/null clears.
void set_aux_log(const char* path) noexcept;

// Write a report right now (reason != nullptr, e.g. "fatal-deadlock")
// without a signal context and without killing the process. Returns
// the report path, or nullptr when install() has not run.
const char* capture_now(const char* reason) noexcept;

// Arm the crash notification: on crash the handler performs one raw
// write() of `bytes` to `fd` after the report is on disk — the debug
// server points this at the events socket with a pre-encoded
// `process-crashed` frame. `n` is capped at kMaxNotifyBytes.
inline constexpr size_t kMaxNotifyBytes = 2048;
void arm_notify(int fd, const void* bytes, size_t n) noexcept;
void disarm_notify() noexcept;

namespace internal {
extern std::atomic<bool> g_installed;
extern std::atomic<const char*> g_last_trace_file;
extern std::atomic<int> g_last_trace_line;
extern std::atomic<long long> g_last_trace_tid;
}  // namespace internal

// Record the most recent trace event (file must outlive the process'
// interest in it — the VM passes FunctionProto::file, pinned by the
// running program). One relaxed load when capture is not installed;
// three relaxed stores when it is.
inline void note_trace(const char* file, int line, long long tid) noexcept {
  if (!internal::g_installed.load(std::memory_order_relaxed)) return;
  internal::g_last_trace_file.store(file, std::memory_order_relaxed);
  internal::g_last_trace_line.store(line, std::memory_order_relaxed);
  internal::g_last_trace_tid.store(tid, std::memory_order_relaxed);
}

}  // namespace dionea::crash
