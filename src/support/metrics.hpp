// Observability registry: how intrusive is the debugger, measured at
// runtime. The paper's value claim is *low intrusiveness* ("a stop
// suspends exactly one interpreter thread", §1 fn.1) — this registry
// quantifies it: trace-hook dispatch time, GIL acquire-wait/hold time,
// reactor dispatch latency, per-command service time, frame and mp
// queue throughput.
//
// Design: a fixed, enumerated metric set (no string lookups on the hot
// path) recorded into per-thread shards. A probe is one relaxed atomic
// load (the enabled flag) plus one single-writer relaxed store —
// cheap enough to live permanently inside the per-line trace path.
// snapshot() merges every shard; nothing is locked while a debuggee
// thread records.
//
// Fork protocol: shards are plain memory, so the child inherits the
// parent's totals. Fork handler C calls Registry::reset() so child
// stats start clean (a child's `stats` must describe the child, not
// its ancestry).
//
// Environment: DIONEA_METRICS=0 disables collection at startup
// (probes reduce to the enabled-flag load); any other value, or the
// variable being unset, leaves it on.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/timing.hpp"

namespace dionea::metrics {

// ---- metric ids ----
// Monotonic counters.
enum class Counter : int {
  kTraceLineEvents,      // VM line trace events dispatched
  kTraceCallEvents,      // VM call trace events dispatched
  kTraceReturnEvents,    // VM return trace events dispatched
  kTraceThreadEvents,    // VM thread start/end trace events
  kGilAcquires,          // GIL acquisitions
  kGilContended,         // acquisitions that had to wait for a holder
  kReactorRounds,        // reactor dispatch rounds that ran callbacks
  kFramesSent,           // protocol frames written (both channels)
  kFrameBytesSent,       // bytes of those frames (header + payload)
  kFramesReceived,       // protocol frames read
  kFrameBytesReceived,   // bytes of those frames
  kCommandsServed,       // control commands executed by the server
  kEventsSent,           // user-visible events pushed by the server
  kStops,                // threads parked by the debugger
  kForks,                // forks that ran the debugger's handler chain
  kMpPushes,             // mp queue items pushed
  kMpPops,               // mp queue items popped
  kMpBytesPushed,        // payload bytes pushed through mp queues
  kReplaySteps,          // replay-log records written (record) / consumed (replay)
  kReplayDivergences,    // replays that gave up forcing the schedule
  kReplayParkWaits,      // threads parked at a replay gate (wait episodes)
  kAnalysisAccesses,     // variable accesses observed by MiniSan
  kAnalysisSyncEvents,   // sync-object events observed by MiniSan
  kAnalysisRaces,        // distinct data races reported
  kAnalysisLintFindings, // static lint findings reported
  kForklintFindings,     // ForkLint fork-safety findings reported
  kCrashReports,         // post-mortem reports written by capture_now
  kWatchdogEscalations,  // watchdog forward transitions (hung/degraded/detached)
  kForkSelfcheckRepairs, // fork handler C invariants it had to repair
  kHubRegistrations,     // sessions registered with the hub (incl. re-register after fork)
  kHubEventsRouted,      // events the hub fanned out to client queues
  kHubEventsDropped,     // events evicted by client-queue backpressure
  kCount
};

// Point-in-time values (last write wins; not sharded).
enum class Gauge : int {
  kMpQueueDepth,   // items in the most recently touched mp queue
  kParkedThreads,  // threads currently suspended by the debugger
  kHubSessions,    // sessions currently registered with the hub
  kHubPeers,       // client connections currently attached to the hub
  kCount
};

// Fixed-bucket latency histograms (nanoseconds, power-of-two buckets).
enum class Histogram : int {
  kTraceHookNanos,        // one trace-hook dispatch (sampled, see vm.cpp)
  kGilWaitNanos,          // acquire() entry -> lock granted
  kGilHoldNanos,          // lock granted -> release()
  kReactorDispatchNanos,  // one reactor round's callback work
  kCommandNanos,          // one control command, decode -> response ready
  kStopParkNanos,         // park -> resume of one debugger stop
  kMpPopWaitNanos,        // mp queue pop: sem wait -> payload read
  kHubRouteNanos,         // hub event routing: frame in -> queued on every peer
  kCount
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);
inline constexpr int kGaugeCount = static_cast<int>(Gauge::kCount);
inline constexpr int kHistogramCount = static_cast<int>(Histogram::kCount);

// Stable snake_case names used by the `stats` protocol command and the
// console renderer.
const char* counter_name(Counter c) noexcept;
const char* gauge_name(Gauge g) noexcept;
const char* histogram_name(Histogram h) noexcept;

// Bucket i covers [2^i, 2^(i+1)) nanoseconds; bucket 0 also absorbs 0,
// the last bucket absorbs everything >= 2^(kHistogramBuckets-1) ns
// (~134 ms with 28 buckets — far beyond any latency we time).
inline constexpr int kHistogramBuckets = 28;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_nanos = 0;
  std::uint64_t max_nanos = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean_nanos() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_nanos) /
                                  static_cast<double>(count);
  }
  // Bucket-resolution percentile (upper edge of the bucket holding the
  // p-th sample); p in [0, 1].
  std::uint64_t percentile_nanos(double p) const noexcept;
};

struct Snapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::int64_t, kGaugeCount> gauges{};
  std::array<HistogramSnapshot, kHistogramCount> histograms{};
};

namespace internal {

// One thread's slice of every metric. Single writer (the owning
// thread); snapshot() reads concurrently with relaxed loads — a
// snapshot is allowed to be a moment stale, never torn (64-bit relaxed
// atomics).
struct Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  struct Histo {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Histo, kHistogramCount> histograms{};

  void add(Counter c, std::uint64_t delta) noexcept {
    auto& cell = counters[static_cast<int>(c)];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
  void observe(Histogram h, std::uint64_t nanos) noexcept;
  void zero() noexcept;
};

}  // namespace internal

class Registry {
 public:
  // Process-wide instance; reads DIONEA_METRICS on first use.
  static Registry& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Merge every shard (live and retired) plus the gauges.
  Snapshot snapshot() const;

  // Zero every shard and gauge. Called by debugger fork handler C so a
  // child's stats start clean; also used by benches between arms.
  // Single-threaded contexts only (the child after fork, test setup) —
  // concurrent writers may leave a handful of stale increments behind.
  void reset();

  void gauge_set(Gauge g, std::int64_t value) noexcept {
    gauges_[static_cast<int>(g)].store(value, std::memory_order_relaxed);
  }
  void gauge_add(Gauge g, std::int64_t delta) noexcept {
    gauges_[static_cast<int>(g)].fetch_add(delta, std::memory_order_relaxed);
  }

  // The calling thread's shard (created and registered on first use).
  internal::Shard& local_shard();

  // Shards ever created (tests; shards are pooled, not destroyed).
  size_t shard_count() const;

 private:
  Registry();

  internal::Shard* acquire_shard();
  void release_shard(internal::Shard* shard) noexcept;

  struct ThreadSlot;  // RAII registration living in a thread_local

  std::atomic<bool> enabled_{true};
  std::array<std::atomic<std::int64_t>, kGaugeCount> gauges_{};
  mutable std::mutex mutex_;
  // The registry owns every shard forever: a thread's totals must
  // survive its exit. Exited threads' shards go to the free list and
  // are reused (values kept — totals are cumulative), so memory is
  // bounded by the peak thread count.
  std::vector<std::unique_ptr<internal::Shard>> shards_;  // guarded by mutex_
  std::vector<internal::Shard*> free_shards_;             // guarded by mutex_
};

// ---- hot-path probes ----

inline void add(Counter c, std::uint64_t delta = 1) noexcept {
  Registry& reg = Registry::instance();
  if (!reg.enabled()) return;
  reg.local_shard().add(c, delta);
}

inline void observe(Histogram h, std::uint64_t nanos) noexcept {
  Registry& reg = Registry::instance();
  if (!reg.enabled()) return;
  reg.local_shard().observe(h, nanos);
}

inline void gauge_set(Gauge g, std::int64_t value) noexcept {
  Registry& reg = Registry::instance();
  if (!reg.enabled()) return;
  reg.gauge_set(g, value);
}

inline void gauge_add(Gauge g, std::int64_t delta) noexcept {
  Registry& reg = Registry::instance();
  if (!reg.enabled()) return;
  reg.gauge_add(g, delta);
}

// RAII latency probe. Costs nothing (no clock read) when collection is
// disabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h) noexcept
      : h_(h), start_(Registry::instance().enabled() ? mono_nanos() : -1) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Record now instead of at scope exit (idempotent).
  void stop() noexcept {
    if (start_ < 0) return;
    observe(h_, static_cast<std::uint64_t>(mono_nanos() - start_));
    start_ = -1;
  }
  // Abandon without recording.
  void cancel() noexcept { start_ = -1; }

 private:
  Histogram h_;
  std::int64_t start_;
};

}  // namespace dionea::metrics
