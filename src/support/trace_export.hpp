// Chrome trace_event exporter: spans for every debugger stop, control
// command and fork-handler phase, written as a JSON file loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Activation: set DIONEA_TRACE_OUT=/path/trace.json. Disabled (unset),
// emit() is one relaxed atomic load. Spans are buffered in memory and
// flushed at process exit (or on flush()); a forked child switches to
// its own file — "<path>.<pid>" — so per-process timelines never
// interleave (the multi-process view is Perfetto's job: each file
// carries the real pid).
#pragma once

#include <cstdint>
#include <string>

namespace dionea::trace {

bool enabled() noexcept;

// Record a completed span ("ph":"X"). `name` ought to be short and
// stable ("cmd:threads", "stop:breakpoint", "fork:C-child");
// `category` groups spans in the viewer ("debugger", "fork", ...).
void emit_span(std::string name, const char* category,
               std::int64_t start_nanos, std::int64_t duration_nanos);

// Convenience: span measured from construction to destruction.
class Span {
 public:
  Span(std::string name, const char* category) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  const char* category_;
  std::int64_t start_;  // -1 when tracing is off
};

// Write buffered spans to the output file (append-safe: later flushes
// rewrite the whole file with the full buffer). Called automatically
// at exit; tests and benches call it explicitly.
void flush();

// Fork handler C: re-point the child at "<path>.<pid>" and drop spans
// inherited from the parent (the parent flushes its own copy).
void child_atfork();

// Number of spans buffered (tests).
size_t buffered_spans();

}  // namespace dionea::trace
