#include "support/trace_export.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "support/timing.hpp"

namespace dionea::trace {
namespace {

struct SpanRecord {
  std::string name;
  const char* category;
  std::int64_t start_nanos;
  std::int64_t duration_nanos;
  int tid;
};

// Small dense ids for the viewer's per-thread tracks (std::thread::id
// is opaque and gettid() is Linux-only).
int local_tid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

struct Exporter {
  std::mutex mutex;
  std::string path;          // empty = disabled
  std::vector<SpanRecord> spans;  // guarded by mutex
  std::atomic<bool> active{false};

  Exporter() {
    const char* env = std::getenv("DIONEA_TRACE_OUT");
    if (env != nullptr && env[0] != '\0') {
      path = env;
      active.store(true, std::memory_order_relaxed);
      std::atexit([] { flush(); });
    }
  }

  void write_locked() {
    if (path.empty()) return;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return;
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
    int pid = static_cast<int>(::getpid());
    for (size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      // trace_event timestamps are microseconds (doubles are fine for
      // sub-microsecond resolution over a debugging session).
      std::fprintf(out,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}%s\n",
                   s.name.c_str(), s.category,
                   static_cast<double>(s.start_nanos) / 1000.0,
                   static_cast<double>(s.duration_nanos) / 1000.0, pid,
                   s.tid, i + 1 < spans.size() ? "," : "");
    }
    std::fputs("]}\n", out);
    std::fclose(out);
  }
};

Exporter& exporter() {
  // Leaked: spans may be emitted during static destruction.
  static Exporter* instance = new Exporter();
  return *instance;
}

}  // namespace

bool enabled() noexcept {
  return exporter().active.load(std::memory_order_relaxed);
}

void emit_span(std::string name, const char* category,
               std::int64_t start_nanos, std::int64_t duration_nanos) {
  Exporter& ex = exporter();
  if (!ex.active.load(std::memory_order_relaxed)) return;
  int tid = local_tid();
  std::scoped_lock lock(ex.mutex);
  ex.spans.push_back(SpanRecord{std::move(name), category, start_nanos,
                                duration_nanos, tid});
}

Span::Span(std::string name, const char* category) noexcept
    : name_(std::move(name)),
      category_(category),
      start_(enabled() ? mono_nanos() : -1) {}

Span::~Span() {
  if (start_ < 0) return;
  emit_span(std::move(name_), category_, start_, mono_nanos() - start_);
}

void flush() {
  Exporter& ex = exporter();
  if (!ex.active.load(std::memory_order_relaxed)) return;
  std::scoped_lock lock(ex.mutex);
  ex.write_locked();
}

void child_atfork() {
  Exporter& ex = exporter();
  if (!ex.active.load(std::memory_order_relaxed)) return;
  std::scoped_lock lock(ex.mutex);
  ex.spans.clear();
  ex.path += "." + std::to_string(::getpid());
}

size_t buffered_spans() {
  Exporter& ex = exporter();
  std::scoped_lock lock(ex.mutex);
  return ex.spans.size();
}

}  // namespace dionea::trace
