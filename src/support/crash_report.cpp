#include "support/crash_report.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "support/metrics.hpp"
#include "support/temp_file.hpp"

namespace dionea::crash {

namespace internal {
std::atomic<bool> g_installed{false};
std::atomic<const char*> g_last_trace_file{nullptr};
std::atomic<int> g_last_trace_line{0};
std::atomic<long long> g_last_trace_tid{0};
}  // namespace internal

namespace {

// Everything the handler touches is statically allocated: the crash
// path must not depend on a heap that may be the thing that broke.
constexpr size_t kPathMax = 512;
char g_report_path[kPathMax];
char g_crash_dir[kPathMax];
char g_aux_log[kPathMax];

struct Section {
  std::atomic<bool> active{false};
  const char* name = nullptr;
  SectionFn fn = nullptr;
  void* ctx = nullptr;
};
Section g_sections[kMaxSections];
std::mutex g_sections_mutex;  // add/remove only; the handler never locks

std::atomic<int> g_notify_fd{-1};
char g_notify_buf[kMaxNotifyBytes];
std::atomic<size_t> g_notify_len{0};

std::atomic<bool> g_in_handler{false};

// Dedicated stack: a report must come out even when the fault is a
// blown thread stack. 64 KiB clears every platform's MINSIGSTKSZ.
alignas(16) char g_alt_stack[64 * 1024];

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    default: return "?";
  }
}

void append_path(char* dst, const char* a, const char* b) noexcept {
  size_t n = 0;
  for (const char* p = a; *p != '\0' && n < kPathMax - 1; ++p) dst[n++] = *p;
  for (const char* p = b; *p != '\0' && n < kPathMax - 1; ++p) dst[n++] = *p;
  dst[n] = '\0';
}

// dir + "/dionea-crash.<pid>.txt" into g_report_path.
void compute_report_path() noexcept {
  char name[64];
  char pid_buf[24];
  long long pid = static_cast<long long>(::getpid());
  size_t n = 0;
  if (pid == 0) {
    pid_buf[n++] = '0';
  } else {
    char rev[24];
    size_t r = 0;
    while (pid > 0 && r < sizeof(rev)) {
      rev[r++] = static_cast<char>('0' + pid % 10);
      pid /= 10;
    }
    while (r > 0) pid_buf[n++] = rev[--r];
  }
  pid_buf[n] = '\0';
  append_path(name, "/dionea-crash.", pid_buf);
  size_t len = std::strlen(name);
  if (len < sizeof(name) - 5) std::memcpy(name + len, ".txt", 5);
  append_path(g_report_path, g_crash_dir, name);
}

// The core of both the signal path and capture_now: open the report
// file, write the header and every registered section, fsync, close.
void write_report(int sig, const char* reason) noexcept {
  int fd = ::open(g_report_path, O_WRONLY | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) return;
  {
    Writer w(fd);
    w.str("DIONEA-CRASH v1\n");
    w.str("pid: ");
    w.dec(static_cast<long long>(::getpid()));
    w.nl();
    w.str("reason: ");
    w.str(reason);
    w.nl();
    if (sig != 0) {
      w.str("signal: ");
      w.dec(sig);
      w.str(" ");
      w.str(signal_name(sig));
      w.nl();
    }
    const char* file =
        internal::g_last_trace_file.load(std::memory_order_relaxed);
    if (file != nullptr) {
      w.str("last-trace: ");
      w.str(file);
      w.str(":");
      w.dec(internal::g_last_trace_line.load(std::memory_order_relaxed));
      w.str(" tid=");
      w.dec(internal::g_last_trace_tid.load(std::memory_order_relaxed));
      w.nl();
    }
    for (int i = 0; i < kMaxSections; ++i) {
      Section& s = g_sections[i];
      if (!s.active.load(std::memory_order_acquire)) continue;
      w.str("== section: ");
      w.str(s.name);
      w.str(" ==\n");
      s.fn(w, s.ctx);
      w.flush();
    }
    if (g_aux_log[0] != '\0') {
      w.str("== section: aux-log ==\n");
      w.str("path: ");
      w.str(g_aux_log);
      w.nl();
      int log_fd = ::open(g_aux_log, O_RDONLY);
      if (log_fd >= 0) {
        // Last ~2 KiB of the log: enough for the record/replay tail
        // that explains what the schedule was doing when we died.
        off_t size = ::lseek(log_fd, 0, SEEK_END);
        off_t start = size > 2048 ? size - 2048 : 0;
        (void)::lseek(log_fd, start, SEEK_SET);
        w.str("tail:\n");
        w.flush();
        char buf[256];
        ssize_t n;
        while ((n = ::read(log_fd, buf, sizeof(buf))) > 0) {
          w.strn(buf, static_cast<size_t>(n));
        }
        ::close(log_fd);
        w.nl();
      }
    }
    w.str("== end ==\n");
  }
  (void)::fsync(fd);
  ::close(fd);
}

void send_notify() noexcept {
  int fd = g_notify_fd.load(std::memory_order_acquire);
  size_t len = g_notify_len.load(std::memory_order_acquire);
  if (fd < 0 || len == 0) return;
  // One best-effort write. It may interleave with a concurrent event
  // frame from the listener thread — the client then sees a framing
  // error and treats the connection as crashed, which is the truth.
  (void)!::write(fd, g_notify_buf, len);
}

void restore_and_reraise(int sig) noexcept {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_DFL;
  ::sigaction(sig, &sa, nullptr);
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, sig);
  ::pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
  (void)::raise(sig);
}

void handle_fatal_signal(int sig, siginfo_t* /*info*/, void* /*uctx*/) {
  // Re-entry (a section faulted, or two threads crashed at once):
  // give up on the report and die with the original disposition.
  if (g_in_handler.exchange(true)) {
    restore_and_reraise(sig);
    return;
  }
  write_report(sig, "signal");
  send_notify();
  restore_and_reraise(sig);
}

}  // namespace

// ------------------------------------------------------------- Writer

void Writer::strn(const char* s, size_t n) noexcept {
  for (size_t i = 0; i < n; ++i) {
    if (len_ == sizeof(buf_)) flush();
    buf_[len_++] = s[i];
  }
}

void Writer::str(const char* s) noexcept {
  if (s == nullptr) return;
  strn(s, std::strlen(s));
}

void Writer::dec(long long v) noexcept {
  if (v < 0) {
    strn("-", 1);
    // Negate via unsigned so LLONG_MIN doesn't overflow.
    udec(static_cast<unsigned long long>(-(v + 1)) + 1);
    return;
  }
  udec(static_cast<unsigned long long>(v));
}

void Writer::udec(unsigned long long v) noexcept {
  char rev[24];
  size_t n = 0;
  do {
    rev[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && n < sizeof(rev));
  while (n > 0) strn(&rev[--n], 1);
}

void Writer::hex(unsigned long long v) noexcept {
  strn("0x", 2);
  char rev[16];
  size_t n = 0;
  do {
    rev[n++] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0 && n < sizeof(rev));
  while (n > 0) strn(&rev[--n], 1);
}

void Writer::flush() noexcept {
  size_t off = 0;
  while (off < len_) {
    ssize_t n = ::write(fd_, buf_ + off, len_ - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    off += static_cast<size_t>(n);
  }
  len_ = 0;
}

// ------------------------------------------------------------ install

Status install(const Options& options) {
  const char* dir = nullptr;
  if (!options.dir.empty()) {
    dir = options.dir.c_str();
  } else {
    dir = std::getenv("DIONEA_CRASH_DIR");
    if (dir == nullptr || dir[0] == '\0') dir = std::getenv("TMPDIR");
    if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  }
  if (std::strlen(dir) >= kPathMax - 64) {
    return Error(ErrorCode::kInvalidArgument, "crash dir path too long");
  }
  append_path(g_crash_dir, dir, "");
  compute_report_path();

  if (internal::g_installed.load(std::memory_order_relaxed)) {
    return Status::ok();  // already armed; directory updated above
  }

  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = g_alt_stack;
  ss.ss_size = sizeof(g_alt_stack);
  if (::sigaltstack(&ss, nullptr) != 0) {
    return errno_error("sigaltstack", errno);
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = handle_fatal_signal;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER: a fault *inside* the handler must re-enter it so the
  // re-entry guard can re-raise, instead of the kernel force-killing
  // with the report half-written and unflushed.
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_NODEFER;
  for (int sig : kSignals) {
    if (::sigaction(sig, &sa, nullptr) != 0) {
      return errno_error("sigaction", errno);
    }
  }
  internal::g_installed.store(true, std::memory_order_release);
  return Status::ok();
}

bool installed() noexcept {
  return internal::g_installed.load(std::memory_order_relaxed);
}

void uninstall() noexcept {
  if (!internal::g_installed.exchange(false)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_DFL;
  for (int sig : kSignals) ::sigaction(sig, &sa, nullptr);
  disarm_notify();
  std::scoped_lock lock(g_sections_mutex);
  for (Section& s : g_sections) {
    s.active.store(false, std::memory_order_release);
  }
}

void refresh_after_fork() noexcept {
  disarm_notify();
  g_in_handler.store(false, std::memory_order_relaxed);
  if (g_crash_dir[0] != '\0') compute_report_path();
}

const char* report_path() noexcept { return g_report_path; }

std::string report_path_string() { return g_report_path; }

std::string crash_dir_string() { return g_crash_dir; }

int add_section(const char* name, SectionFn fn, void* ctx) noexcept {
  std::scoped_lock lock(g_sections_mutex);
  for (int i = 0; i < kMaxSections; ++i) {
    Section& s = g_sections[i];
    if (s.active.load(std::memory_order_relaxed)) continue;
    s.name = name;
    s.fn = fn;
    s.ctx = ctx;
    s.active.store(true, std::memory_order_release);
    return i;
  }
  return -1;
}

void remove_section(int id) noexcept {
  if (id < 0 || id >= kMaxSections) return;
  std::scoped_lock lock(g_sections_mutex);
  g_sections[id].active.store(false, std::memory_order_release);
}

void set_aux_log(const char* path) noexcept {
  if (path == nullptr || path[0] == '\0') {
    g_aux_log[0] = '\0';
    return;
  }
  append_path(g_aux_log, path, "");
}

const char* capture_now(const char* reason) noexcept {
  if (!internal::g_installed.load(std::memory_order_relaxed)) return nullptr;
  write_report(0, reason == nullptr ? "capture" : reason);
  metrics::add(metrics::Counter::kCrashReports);
  return g_report_path;
}

void arm_notify(int fd, const void* bytes, size_t n) noexcept {
  if (n > kMaxNotifyBytes) n = 0;  // an oversized frame is useless anyway
  g_notify_len.store(0, std::memory_order_release);
  std::memcpy(g_notify_buf, bytes, n);
  g_notify_len.store(n, std::memory_order_release);
  g_notify_fd.store(fd, std::memory_order_release);
}

void disarm_notify() noexcept {
  g_notify_fd.store(-1, std::memory_order_release);
  g_notify_len.store(0, std::memory_order_release);
}

}  // namespace dionea::crash
