// Deterministic fault injection.
//
// The ipc layer threads named probe points ("fd.read", "fd.write",
// "frame.send", "socket.accept", "port_file.append", ...) through this
// injector so tests can force the failures real multi-process debugging
// is made of — EINTR, short reads/writes, ECONNRESET, delayed accepts,
// torn port-file appends — without root, ptrace or LD_PRELOAD tricks.
//
// Decisions are a pure function of (seed, site name, per-site hit
// counter), so a given seed produces the same fault schedule on every
// run regardless of wall-clock time; thread interleaving only affects
// which thread draws which hit number. Disabled (the default), a probe
// is a single relaxed atomic load — cheap enough to leave in the hot
// paths permanently.
//
// Activation: programmatically via fault::Scope (tests) or from the
// environment (DIONEA_FAULT_SEED + DIONEA_FAULT_PROB, optional
// DIONEA_FAULT_KINDS / DIONEA_FAULT_SITES) so a whole ctest run can be
// swept under injection with no code changes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace dionea::fault {

enum class Kind {
  kNone,
  kEintr,      // as-if the syscall returned -1/EINTR (retry path)
  kShortIo,    // cap a read/write to cap_bytes (partial-transfer path)
  kConnReset,  // surface ECONNRESET (typed-error path)
  kDelay,      // sleep delay_millis before the operation (race widener)
  kTorn,       // tear a multi-byte append mid-record (port file)
};

const char* kind_name(Kind kind) noexcept;

// Bitmask selecting which kinds a configuration may inject.
inline constexpr unsigned kBitEintr = 1u << 0;
inline constexpr unsigned kBitShortIo = 1u << 1;
inline constexpr unsigned kBitConnReset = 1u << 2;
inline constexpr unsigned kBitDelay = 1u << 3;
inline constexpr unsigned kBitTorn = 1u << 4;
// Faults that well-written callers absorb without any operation
// failing: a sweep under these must be invisible to correct code.
inline constexpr unsigned kRecoverableKinds =
    kBitEintr | kBitShortIo | kBitDelay | kBitTorn;
inline constexpr unsigned kAllKinds = kRecoverableKinds | kBitConnReset;

struct Decision {
  Kind kind = Kind::kNone;
  size_t cap_bytes = 1;   // kShortIo: transfer at most this many bytes
  int delay_millis = 0;   // kDelay: how long to stall
  explicit operator bool() const noexcept { return kind != Kind::kNone; }
};

struct Config {
  std::uint64_t seed = 0;
  double probability = 0.0;  // per-probe injection probability; 0 = off
  unsigned kinds = kRecoverableKinds;
  // Only sites whose name contains this substring are eligible
  // (empty = every site).
  std::string site_filter{};
};

class Injector {
 public:
  // Process-wide instance; reads DIONEA_FAULT_* on first use.
  static Injector& instance();

  void configure(Config config);
  void disable();
  Config config() const;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Decide whether the hit at `site` faults. Thread-safe.
  Decision decide(const char* site);

  // Fork pinning (registered via pthread_atfork on first use): decide()
  // holds mutex_ briefly on every enabled probe, so an unpinned fork
  // could freeze the child's copy of the mutex mid-critical-section.
  void lock_for_fork();
  void unlock_after_fork();

  std::uint64_t probes() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  Injector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> injected_{0};
  mutable std::mutex mutex_;
  Config config_;                                      // guarded by mutex_
  std::unordered_map<std::string, std::uint64_t> hits_;  // guarded by mutex_
};

// The probe the ipc layer calls. Returns kNone (one atomic load) when
// injection is off.
inline Decision probe(const char* site) {
  Injector& injector = Injector::instance();
  if (!injector.enabled()) return {};
  return injector.decide(site);
}

// RAII activation for tests: applies `config`, restores the previous
// configuration (usually "disabled") on scope exit.
class Scope {
 public:
  explicit Scope(Config config)
      : previous_(Injector::instance().config()) {
    Injector::instance().configure(std::move(config));
  }
  ~Scope() { Injector::instance().configure(previous_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Config previous_;
};

}  // namespace dionea::fault
