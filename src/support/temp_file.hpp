// Temporary files and the port-handoff file.
//
// §5.3(3): "Dionea's fork handlers use a temporary file, where the port
// number of the most recently created process is saved." TempDir/TempFile
// give tests and the port-handoff mechanism unique, RAII-cleaned paths.
#pragma once

#include <string>

#include "support/result.hpp"

namespace dionea {

// Unique directory under $TMPDIR (or /tmp), removed recursively on
// destruction. Survives fork: only the creator process removes it.
class TempDir {
 public:
  // prefix appears in the path for debuggability, e.g. "dionea-test".
  static Result<TempDir> create(const std::string& prefix);

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  const std::string& path() const noexcept { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

  // Forget the directory without deleting it (e.g. in a forked child
  // whose parent owns cleanup).
  void release() noexcept;

 private:
  TempDir(std::string path, int owner_pid)
      : path_(std::move(path)), owner_pid_(owner_pid) {}
  std::string path_;
  int owner_pid_ = -1;
};

// Whole-file read/write helpers used by corpus generation and the
// port-handoff file.
Status write_file(const std::string& path, const std::string& contents);
Result<std::string> read_file(const std::string& path);

// Atomic replace: write to <path>.tmp.<pid> then rename(2). The port
// handoff depends on readers never seeing a torn write.
Status write_file_atomic(const std::string& path, const std::string& contents);

bool file_exists(const std::string& path);
Status remove_file(const std::string& path);
Status remove_tree(const std::string& path);
Status make_dir(const std::string& path);

}  // namespace dionea
