#include "support/fault.hpp"

#include <pthread.h>

#include <cstdlib>
#include <cstring>

#include "support/strings.hpp"

namespace dionea::fault {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

unsigned parse_kinds(const char* spec) {
  unsigned kinds = 0;
  for (const std::string& name : strings::split(spec, ',')) {
    if (name == "eintr") kinds |= kBitEintr;
    if (name == "short") kinds |= kBitShortIo;
    if (name == "connreset") kinds |= kBitConnReset;
    if (name == "delay") kinds |= kBitDelay;
    if (name == "torn") kinds |= kBitTorn;
    if (name == "recoverable") kinds |= kRecoverableKinds;
    if (name == "all") kinds |= kAllKinds;
  }
  return kinds;
}

Config config_from_env() {
  Config config;
  const char* seed = std::getenv("DIONEA_FAULT_SEED");
  const char* prob = std::getenv("DIONEA_FAULT_PROB");
  if (seed == nullptr || prob == nullptr) return config;
  config.seed = std::strtoull(seed, nullptr, 0);
  config.probability = std::strtod(prob, nullptr);
  if (const char* kinds = std::getenv("DIONEA_FAULT_KINDS")) {
    config.kinds = parse_kinds(kinds);
  }
  if (const char* sites = std::getenv("DIONEA_FAULT_SITES")) {
    config.site_filter = sites;
  }
  return config;
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kEintr: return "eintr";
    case Kind::kShortIo: return "short";
    case Kind::kConnReset: return "connreset";
    case Kind::kDelay: return "delay";
    case Kind::kTorn: return "torn";
  }
  return "?";
}

Injector& Injector::instance() {
  // Leaked singleton: probes may run during static destruction (fds
  // closed from destructors of globals in tests).
  static Injector* injector = [] {
    auto* created = new Injector();
    Config env = config_from_env();
    if (env.probability > 0.0) created->configure(std::move(env));
    // Probes fire from every thread that touches a fd, so a fork can
    // land while some sibling is inside decide() holding mutex_ — the
    // child would then deadlock on its very first probe (handler C's
    // port-file write goes through temp_file probes). Pin the mutex
    // across every fork; mutex_ is a leaf lock, so ordering relative
    // to the VM/server handlers is irrelevant.
    (void)pthread_atfork(
        [] { Injector::instance().lock_for_fork(); },
        [] { Injector::instance().unlock_after_fork(); },
        [] { Injector::instance().unlock_after_fork(); });
    return created;
  }();
  return *injector;
}

void Injector::lock_for_fork() { mutex_.lock(); }

// Well-defined in the child too: the prepare handler took the lock on
// the forking thread, and that thread is the one running this.
void Injector::unlock_after_fork() { mutex_.unlock(); }

void Injector::configure(Config config) {
  std::scoped_lock lock(mutex_);
  config_ = std::move(config);
  hits_.clear();
  enabled_.store(config_.probability > 0.0 && config_.kinds != 0,
                 std::memory_order_relaxed);
}

void Injector::disable() { configure(Config{}); }

Config Injector::config() const {
  std::scoped_lock lock(mutex_);
  return config_;
}

Decision Injector::decide(const char* site) {
  std::scoped_lock lock(mutex_);
  if (config_.probability <= 0.0 || config_.kinds == 0) return {};
  if (!config_.site_filter.empty() &&
      std::strstr(site, config_.site_filter.c_str()) == nullptr) {
    return {};
  }
  probes_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t hit = ++hits_[site];
  std::uint64_t h = mix(config_.seed ^ mix(fnv1a(site)) ^ hit);
  auto threshold = static_cast<std::uint64_t>(config_.probability * 1e6);
  if (h % 1'000'000ull >= threshold) return {};

  // Pick uniformly among the enabled kinds.
  Kind enabled[5];
  int count = 0;
  if (config_.kinds & kBitEintr) enabled[count++] = Kind::kEintr;
  if (config_.kinds & kBitShortIo) enabled[count++] = Kind::kShortIo;
  if (config_.kinds & kBitConnReset) enabled[count++] = Kind::kConnReset;
  if (config_.kinds & kBitDelay) enabled[count++] = Kind::kDelay;
  if (config_.kinds & kBitTorn) enabled[count++] = Kind::kTorn;

  Decision decision;
  std::uint64_t h2 = mix(h);
  decision.kind = enabled[h2 % static_cast<std::uint64_t>(count)];
  decision.cap_bytes = 1 + (mix(h2) & 0x3);          // 1..4 bytes
  decision.delay_millis = 1 + static_cast<int>(mix(h2 ^ 0xdeadull) % 10);  // 1..10
  injected_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

}  // namespace dionea::fault
