#include "support/temp_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/fault.hpp"

namespace dionea {

Error errno_error(const std::string& what, int saved_errno) {
  ErrorCode code = ErrorCode::kOsError;
  switch (saved_errno) {
    case ENOENT: code = ErrorCode::kNotFound; break;
    case EEXIST: code = ErrorCode::kAlreadyExists; break;
    case EACCES:
    case EPERM: code = ErrorCode::kPermissionDenied; break;
    case EAGAIN:
    case ECONNREFUSED:
    case EINTR: code = ErrorCode::kUnavailable; break;
    case EPIPE:
    case ECONNRESET: code = ErrorCode::kClosed; break;
    case ETIMEDOUT: code = ErrorCode::kTimeout; break;
    case EINVAL: code = ErrorCode::kInvalidArgument; break;
    default: break;
  }
  return Error(code, what + ": " + std::strerror(saved_errno));
}

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "UNKNOWN";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kClosed: return "CLOSED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kOsError: return "OS_ERROR";
  }
  return "?";
}

Result<TempDir> TempDir::create(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  if (base == nullptr || base[0] == '\0') base = "/tmp";
  std::string tmpl = std::string(base) + "/" + prefix + ".XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return errno_error("mkdtemp " + tmpl, errno);
  }
  return TempDir(std::string(buf.data()), static_cast<int>(::getpid()));
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owner_pid_(other.owner_pid_) {
  other.owner_pid_ = -1;
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (owner_pid_ == static_cast<int>(::getpid()) && !path_.empty()) {
      (void)remove_tree(path_);
    }
    path_ = std::move(other.path_);
    owner_pid_ = other.owner_pid_;
    other.owner_pid_ = -1;
    other.path_.clear();
  }
  return *this;
}

TempDir::~TempDir() {
  if (owner_pid_ == static_cast<int>(::getpid()) && !path_.empty()) {
    (void)remove_tree(path_);
  }
}

void TempDir::release() noexcept { owner_pid_ = -1; }

Status write_file(const std::string& path, const std::string& contents) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_error("open " + path, errno);
  size_t off = 0;
  while (off < contents.size()) {
    size_t want = contents.size() - off;
    if (auto fault = fault::probe("temp_file.write")) {
      switch (fault.kind) {
        case fault::Kind::kEintr:
          continue;  // as-if write returned -1/EINTR: retry
        case fault::Kind::kShortIo:
          if (fault.cap_bytes < want) want = fault.cap_bytes;
          break;
        case fault::Kind::kConnReset:
        case fault::Kind::kTorn:
          ::close(fd);
          return Error(ErrorCode::kOsError, "write " + path +
                                                ": injected I/O error");
        default:
          break;
      }
    }
    ssize_t n = ::write(fd, contents.data() + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return errno_error("write " + path, saved);
    }
    off += static_cast<size_t>(n);
  }
  if (::close(fd) != 0) return errno_error("close " + path, errno);
  return Status::ok();
}

Result<std::string> read_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_error("open " + path, errno);
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return errno_error("read " + path, saved);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status write_file_atomic(const std::string& path, const std::string& contents) {
  std::string tmp =
      path + ".tmp." + std::to_string(static_cast<int>(::getpid()));
  DIONEA_RETURN_IF_ERROR(write_file(tmp, contents));
  // Only the hard kinds fail the rename. The recoverable kinds model
  // conditions rename(2) either cannot have (short I/O) or that the
  // caller-visible contract absorbs (EINTR: the kernel restarts or the
  // caller retries; Delay: already slept inside probe) — surfacing
  // them as errors here would make every ambient recoverable sweep
  // (tools/hostile_sweep.sh's every-5th run) fail spuriously.
  if (auto fault = fault::probe("temp_file.rename");
      fault && (fault.kind == fault::Kind::kConnReset ||
                fault.kind == fault::Kind::kTorn)) {
    ::unlink(tmp.c_str());
    return Error(ErrorCode::kOsError,
                 "rename " + tmp + " -> " + path + ": injected failure");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    return errno_error("rename " + tmp + " -> " + path, saved);
  }
  return Status::ok();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return errno_error("unlink " + path, errno);
  }
  return Status::ok();
}

Status make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return errno_error("mkdir " + path, errno);
  }
  return Status::ok();
}

Status remove_tree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::ok();
    if (errno == ENOTDIR) return remove_file(path);
    return errno_error("opendir " + path, errno);
  }
  while (dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) continue;
    std::string child = path + "/" + name;
    struct stat st{};
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      (void)remove_tree(child);
    } else {
      ::unlink(child.c_str());
    }
  }
  ::closedir(dir);
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return errno_error("rmdir " + path, errno);
  }
  return Status::ok();
}

}  // namespace dionea
