#include "support/metrics.hpp"

#include <cstdlib>
#include <cstring>

namespace dionea::metrics {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTraceLineEvents: return "trace_line_events";
    case Counter::kTraceCallEvents: return "trace_call_events";
    case Counter::kTraceReturnEvents: return "trace_return_events";
    case Counter::kTraceThreadEvents: return "trace_thread_events";
    case Counter::kGilAcquires: return "gil_acquires";
    case Counter::kGilContended: return "gil_contended";
    case Counter::kReactorRounds: return "reactor_rounds";
    case Counter::kFramesSent: return "frames_sent";
    case Counter::kFrameBytesSent: return "frame_bytes_sent";
    case Counter::kFramesReceived: return "frames_received";
    case Counter::kFrameBytesReceived: return "frame_bytes_received";
    case Counter::kCommandsServed: return "commands_served";
    case Counter::kEventsSent: return "events_sent";
    case Counter::kStops: return "stops";
    case Counter::kForks: return "forks";
    case Counter::kMpPushes: return "mp_pushes";
    case Counter::kMpPops: return "mp_pops";
    case Counter::kMpBytesPushed: return "mp_bytes_pushed";
    case Counter::kReplaySteps: return "replay.steps";
    case Counter::kReplayDivergences: return "replay.divergences";
    case Counter::kReplayParkWaits: return "replay.park_waits";
    case Counter::kAnalysisAccesses: return "analysis.accesses";
    case Counter::kAnalysisSyncEvents: return "analysis.sync_events";
    case Counter::kAnalysisRaces: return "analysis.races";
    case Counter::kAnalysisLintFindings: return "analysis.lint_findings";
    case Counter::kForklintFindings: return "analysis.forklint_findings";
    case Counter::kCrashReports: return "crash_reports";
    case Counter::kWatchdogEscalations: return "watchdog_escalations";
    case Counter::kForkSelfcheckRepairs: return "fork_selfcheck_repairs";
    case Counter::kHubRegistrations: return "hub.registrations";
    case Counter::kHubEventsRouted: return "hub.events_routed";
    case Counter::kHubEventsDropped: return "hub.events_dropped";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::kMpQueueDepth: return "mp_queue_depth";
    case Gauge::kParkedThreads: return "parked_threads";
    case Gauge::kHubSessions: return "hub.sessions";
    case Gauge::kHubPeers: return "hub.peers";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* histogram_name(Histogram h) noexcept {
  switch (h) {
    case Histogram::kTraceHookNanos: return "trace_hook_nanos";
    case Histogram::kGilWaitNanos: return "gil_wait_nanos";
    case Histogram::kGilHoldNanos: return "gil_hold_nanos";
    case Histogram::kReactorDispatchNanos: return "reactor_dispatch_nanos";
    case Histogram::kCommandNanos: return "command_nanos";
    case Histogram::kStopParkNanos: return "stop_park_nanos";
    case Histogram::kMpPopWaitNanos: return "mp_pop_wait_nanos";
    case Histogram::kHubRouteNanos: return "hub.route_nanos";
    case Histogram::kCount: break;
  }
  return "?";
}

namespace {

// Index of the power-of-two bucket holding `nanos`.
int bucket_index(std::uint64_t nanos) noexcept {
  if (nanos < 2) return 0;
  int bit = 63 - __builtin_clzll(nanos);
  return bit >= kHistogramBuckets ? kHistogramBuckets - 1 : bit;
}

}  // namespace

std::uint64_t HistogramSnapshot::percentile_nanos(double p) const noexcept {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(p *
                                                  static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper edge of this bucket, clamped to the observed maximum.
      std::uint64_t edge = i + 1 >= 64 ? max_nanos : (1ull << (i + 1));
      return edge < max_nanos || max_nanos == 0 ? edge : max_nanos;
    }
  }
  return max_nanos;
}

namespace internal {

void Shard::observe(Histogram h, std::uint64_t nanos) noexcept {
  Histo& histo = histograms[static_cast<int>(h)];
  histo.count.store(histo.count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  histo.sum.store(histo.sum.load(std::memory_order_relaxed) + nanos,
                  std::memory_order_relaxed);
  if (nanos > histo.max.load(std::memory_order_relaxed)) {
    histo.max.store(nanos, std::memory_order_relaxed);
  }
  auto& bucket = histo.buckets[static_cast<size_t>(bucket_index(nanos))];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

void Shard::zero() noexcept {
  for (auto& c : counters) c.store(0, std::memory_order_relaxed);
  for (auto& h : histograms) {
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
  }
}

}  // namespace internal

Registry::Registry() {
  const char* env = std::getenv("DIONEA_METRICS");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  // Leaked singleton: debuggee threads may record during static
  // destruction; shards must outlive everything.
  static Registry* registry = new Registry();
  return *registry;
}

internal::Shard* Registry::acquire_shard() {
  std::scoped_lock lock(mutex_);
  if (!free_shards_.empty()) {
    internal::Shard* shard = free_shards_.back();
    free_shards_.pop_back();
    return shard;  // values kept: totals are cumulative
  }
  shards_.push_back(std::make_unique<internal::Shard>());
  return shards_.back().get();
}

void Registry::release_shard(internal::Shard* shard) noexcept {
  std::scoped_lock lock(mutex_);
  free_shards_.push_back(shard);
}

struct Registry::ThreadSlot {
  internal::Shard* shard;
  ThreadSlot() : shard(Registry::instance().acquire_shard()) {}
  ~ThreadSlot() { Registry::instance().release_shard(shard); }
};

internal::Shard& Registry::local_shard() {
  thread_local ThreadSlot slot;
  return *slot.shard;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::scoped_lock lock(mutex_);
  for (const auto& shard : shards_) {
    for (int c = 0; c < kCounterCount; ++c) {
      out.counters[static_cast<size_t>(c)] +=
          shard->counters[static_cast<size_t>(c)].load(
              std::memory_order_relaxed);
    }
    for (int h = 0; h < kHistogramCount; ++h) {
      const auto& src = shard->histograms[static_cast<size_t>(h)];
      auto& dst = out.histograms[static_cast<size_t>(h)];
      dst.count += src.count.load(std::memory_order_relaxed);
      dst.sum_nanos += src.sum.load(std::memory_order_relaxed);
      std::uint64_t max = src.max.load(std::memory_order_relaxed);
      if (max > dst.max_nanos) dst.max_nanos = max;
      for (int b = 0; b < kHistogramBuckets; ++b) {
        dst.buckets[static_cast<size_t>(b)] +=
            src.buckets[static_cast<size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
  }
  for (int g = 0; g < kGaugeCount; ++g) {
    out.gauges[static_cast<size_t>(g)] =
        gauges_[static_cast<size_t>(g)].load(std::memory_order_relaxed);
  }
  return out;
}

void Registry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& shard : shards_) shard->zero();
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

size_t Registry::shard_count() const {
  std::scoped_lock lock(mutex_);
  return shards_.size();
}

}  // namespace dionea::metrics
