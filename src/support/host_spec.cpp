#include "support/host_spec.hpp"

#include <sys/sysinfo.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <string>

#include "support/strings.hpp"
#include "support/temp_file.hpp"

namespace dionea {

HostSpec HostSpec::detect() {
  HostSpec spec;
  spec.logical_cores = static_cast<int>(::sysconf(_SC_NPROCESSORS_ONLN));
  spec.runtime = "dionea-cpp 1.0.0 (MiniVM)";

  if (auto cpuinfo = read_file("/proc/cpuinfo"); cpuinfo.is_ok()) {
    for (const std::string& line : strings::split(cpuinfo.value(), '\n')) {
      if (strings::starts_with(line, "model name")) {
        size_t colon = line.find(':');
        if (colon != std::string::npos) {
          spec.cpu_model = std::string(strings::trim(
              std::string_view(line).substr(colon + 1)));
        }
        break;
      }
    }
  }
  if (spec.cpu_model.empty()) spec.cpu_model = "unknown CPU";

  struct sysinfo info{};
  if (::sysinfo(&info) == 0) {
    spec.memory_mb =
        static_cast<long>((info.totalram / (1024 * 1024)) * info.mem_unit);
  }

  struct utsname uts{};
  if (::uname(&uts) == 0) {
    spec.os_release = std::string(uts.sysname) + " " + uts.release;
  }
  return spec;
}

std::string HostSpec::to_table() const {
  std::string out;
  out += strings::format("%-8s %s, %d cores\n", "CPU", cpu_model.c_str(),
                         logical_cores);
  out += strings::format("%-8s %ldMB\n", "Memory", memory_mb);
  out += strings::format("%-8s %s\n", "OS", os_release.c_str());
  out += strings::format("%-8s %s\n", "Runtime", runtime.c_str());
  return out;
}

}  // namespace dionea
