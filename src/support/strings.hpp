// Small string utilities used across modules (no locale, ASCII only,
// which matches the paper's word-count workload: "words that contain
// only letters").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dionea::strings {

std::vector<std::string> split(std::string_view text, char sep);

// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_whitespace(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

std::string to_lower(std::string_view text);

bool is_alpha_word(std::string_view word) noexcept;  // letters only, non-empty

// Parse helpers returning false on malformed input (no exceptions).
bool parse_int(std::string_view text, std::int64_t* out) noexcept;
bool parse_double(std::string_view text, double* out) noexcept;

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Canonical "file:line" rendering used by every diagnostic that names
// a MiniLang source location (tracebacks, deadlock reports, lint and
// race findings). Line 0 / an empty file mean "unknown" and render
// as "<unknown>" / the bare file.
std::string source_location(std::string_view file, int line);

// Escape non-printables for logs / protocol dumps.
std::string escape(std::string_view text);

}  // namespace dionea::strings
