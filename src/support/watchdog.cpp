#include "support/watchdog.hpp"

#include <chrono>

#include "support/metrics.hpp"

namespace dionea {

const char* Watchdog::state_name(State state) noexcept {
  switch (state) {
    case State::kHealthy: return "healthy";
    case State::kHung: return "hung";
    case State::kDegraded: return "degraded";
    case State::kDetached: return "detached";
  }
  return "?";
}

Watchdog::Watchdog(Options options, Probe probe, TransitionFn on_transition)
    : options_(options),
      probe_(std::move(probe)),
      on_transition_(std::move(on_transition)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (running_.load(std::memory_order_relaxed)) return;
  {
    std::scoped_lock lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::make_unique<std::thread>([this] { run(); });
}

void Watchdog::stop() {
  if (thread_ == nullptr) return;
  {
    std::scoped_lock lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_->joinable()) thread_->join();
  thread_.reset();
  running_.store(false, std::memory_order_relaxed);
}

void Watchdog::abandon_after_fork() noexcept {
  if (thread_ != nullptr) {
    // The OS thread behind this handle died with the parent's address
    // space; join would never return and detach-on-destroy would
    // abort. Leak the handle (one per fork, bounded like the GIL's
    // abandoned state block).
    (void)thread_.release();
  }
  running_.store(false, std::memory_order_relaxed);
  state_.store(static_cast<int>(State::kHealthy), std::memory_order_relaxed);
  stop_requested_ = false;
}

void Watchdog::run() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.tick_millis));
    if (stop_requested_) break;
    lock.unlock();
    evaluate(probe_());
    lock.lock();
    if (state() == State::kDetached) break;  // terminal: nothing to watch
  }
}

void Watchdog::tick_for_test() { evaluate(probe_()); }

void Watchdog::evaluate(const Stall& stall) {
  const State from = state();
  if (from == State::kDetached) return;

  State to = from;
  if (stall.millis <= 0) {
    to = State::kHealthy;
  } else if (stall.millis >= options_.detached_after_millis) {
    to = State::kDetached;
  } else if (stall.millis >= options_.degraded_after_millis) {
    to = State::kDegraded;
  } else if (stall.millis >= options_.hung_after_millis) {
    to = State::kHung;
  } else {
    // A stall below the first threshold neither escalates nor clears
    // an existing escalation — the probe is still reporting the same
    // stuck operation, just measured early in a tick.
    return;
  }
  if (to == from) return;
  state_.store(static_cast<int>(to), std::memory_order_relaxed);
  if (static_cast<int>(to) > static_cast<int>(from)) {
    metrics::add(metrics::Counter::kWatchdogEscalations);
  }
  if (on_transition_) on_transition_(from, to, stall);
}

}  // namespace dionea
