#include "support/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dionea::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_alpha_word(std::string_view word) noexcept {
  if (word.empty()) return false;
  for (char c : word) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool parse_int(std::string_view text, std::int64_t* out) noexcept {
  if (text.empty() || text.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool parse_double(std::string_view text, double* out) noexcept {
  if (text.empty() || text.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + text.size()) return false;
  *out = v;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string source_location(std::string_view file, int line) {
  std::string name = file.empty() ? std::string("<unknown>")
                                  : std::string(file);
  if (line <= 0) return name;
  return format("%s:%d", name.c_str(), line);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default:
        if (std::isprint(static_cast<unsigned char>(c))) {
          out += c;
        } else {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        }
    }
  }
  return out;
}

}  // namespace dionea::strings
