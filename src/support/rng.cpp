#include "support/rng.hpp"

namespace dionea {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = splitmix64(seed);
  // xoshiro must not start from all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256**
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) % bound
  while (true) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) noexcept {
  return next_double() < p_true;
}

std::string Rng::next_word(int min_len, int max_len) {
  int len = static_cast<int>(next_range(min_len, max_len));
  std::string word(static_cast<size_t>(len), 'a');
  for (char& c : word) {
    c = static_cast<char>('a' + next_below(26));
  }
  return word;
}

}  // namespace dionea
