// Runtime capture of the machine specification (Table 1 of the paper).
#pragma once

#include <string>

namespace dionea {

struct HostSpec {
  std::string cpu_model;     // e.g. "Intel(R) Core(TM) i5 CPU"
  int logical_cores = 0;
  long memory_mb = 0;
  std::string os_release;    // uname -sr
  std::string runtime;       // this library's version string

  // Best-effort probe of /proc and uname; never fails (fields that
  // cannot be read stay at defaults).
  static HostSpec detect();

  // Rows in the same format as the paper's Table 1.
  std::string to_table() const;
};

}  // namespace dionea
