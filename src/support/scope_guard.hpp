// RAII on-exit action (C++ Core Guidelines E.19 "use a final_action").
#pragma once

#include <utility>

namespace dionea {

template <typename F>
class ScopeGuard {
 public:
  explicit ScopeGuard(F fn) : fn_(std::move(fn)) {}
  ~ScopeGuard() {
    if (armed_) fn_();
  }
  ScopeGuard(ScopeGuard&& other) noexcept
      : fn_(std::move(other.fn_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
  ScopeGuard& operator=(ScopeGuard&&) = delete;

  // Cancel the pending action (e.g. on the success path).
  void dismiss() noexcept { armed_ = false; }

 private:
  F fn_;
  bool armed_ = true;
};

template <typename F>
ScopeGuard<F> on_scope_exit(F fn) {
  return ScopeGuard<F>(std::move(fn));
}

}  // namespace dionea
