#include "support/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "support/timing.hpp"

namespace dionea::log {
namespace {

std::atomic<int> g_threshold{static_cast<int>(Level::kWarn)};
std::atomic<int> g_fd{2};

thread_local char t_buffer[1024];

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level threshold() noexcept {
  return static_cast<Level>(g_threshold.load(std::memory_order_relaxed));
}

void set_threshold(Level level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_fd(int fd) noexcept { g_fd.store(fd, std::memory_order_relaxed); }

bool enabled(Level level) noexcept {
  return static_cast<int>(level) >=
         g_threshold.load(std::memory_order_relaxed);
}

void emit(Level level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  // Single buffer, single write(2): records never interleave mid-line,
  // even when parent and forked child share the terminal.
  int n = std::snprintf(
      t_buffer, sizeof(t_buffer), "[%d %.3f %s %.*s] %.*s\n",
      static_cast<int>(::getpid()), mono_seconds(), level_name(level),
      static_cast<int>(component.size()), component.data(),
      static_cast<int>(message.size()), message.data());
  if (n < 0) return;
  if (static_cast<size_t>(n) >= sizeof(t_buffer)) n = sizeof(t_buffer) - 1;
  ssize_t ignored =
      ::write(g_fd.load(std::memory_order_relaxed), t_buffer, static_cast<size_t>(n));
  (void)ignored;
}

}  // namespace dionea::log
