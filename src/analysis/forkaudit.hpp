// ForkLint pillar 2: native atfork coverage audit.
//
// The paper's fork-handler contract says every sync primitive, cache
// and listener the debugger (or VM) touches must be covered by the
// A/B/C handlers: prepare (A) pins it, parent (B) releases it, child
// (C) releases-or-reinitializes it. This registry makes that contract
// *declarative*: each fork-pinned subsystem registers a Spec naming
// which handlers it needs and which it actually wires up, plus its
// position in the prepare acquisition order. The audit then checks,
// without forking:
//
//   kAtforkUncovered        a primitive declares it needs a handler
//                           it does not have (the box64 case-004
//                           shape: a mutex pthread_atfork never heard
//                           about).
//   kAtforkOrderInversion   the declared prepare acquisition order
//                           has a cycle — two prepare handlers that
//                           could deadlock against a concurrent fork
//                           (same cycle detection as MiniSan's
//                           lock-order graph, applied to the handler
//                           chain itself).
//
// The handlers additionally call note_prepare/note_parent/note_child
// when they actually run; a *strict* audit (run by
// DebugServer::fork_self_check in the child, where the world is
// single-threaded and quiescent) cross-checks the counters:
// prepare_count == parent_count + child_count for every fully-covered
// primitive, i.e. no handler silently stopped firing.
//
// note_* are lock-free (atomics over an append-only slab) so they are
// safe from inside real fork handlers, including handler C in the
// child. track()/audit() serialize on a mutex that the registry pins
// across fork with its own pthread_atfork triple — the registry obeys
// the contract it audits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"

namespace dionea::analysis::forkaudit {

struct Spec {
  std::string name;       // unique key, e.g. "vm.gil"
  std::string subsystem;  // "vm", "debugger", "support", ...
  // Which handlers correctness requires for this primitive.
  bool needs_prepare = true;
  bool needs_parent = true;
  bool needs_child = true;
  // Which handlers the implementation actually registers.
  bool has_prepare = false;
  bool has_parent = false;
  bool has_child = false;
  // Prepare-order: this primitive is pinned before these (their
  // prepare runs after ours). Names may be registered later or never;
  // dangling edges are ignored.
  std::vector<std::string> pinned_before;
};

struct Counts {
  std::uint64_t prepare = 0;
  std::uint64_t parent = 0;
  std::uint64_t child = 0;
};

class Registry {
 public:
  static Registry& instance();

  // Idempotent by name: re-tracking replaces the Spec (counters are
  // kept). Safe to call from any thread, but not from inside a fork
  // handler.
  void track(Spec spec);
  // Remove a fixture entry (tests). The slab slot is retired, never
  // reused, so concurrent note_* stay safe.
  void untrack(const std::string& name);

  // Called from the real handlers. Lock-free; unknown names are
  // counted under nothing (a missing track() surfaces in the audit's
  // coverage check instead).
  void note_prepare(const char* name) noexcept;
  void note_parent(const char* name) noexcept;
  void note_child(const char* name) noexcept;

  // Coverage + order-cycle checks; `strict` adds the counter
  // cross-check (only meaningful when no fork is concurrently in
  // flight, e.g. from fork_self_check in the child).
  Report audit(bool strict = false) const;

  std::vector<Spec> snapshot() const;
  Counts counts(const std::string& name) const;

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // never destroyed (fork handlers outlive statics)
};

// Convenience: Registry::instance().audit(strict).
Report audit(bool strict = false);

}  // namespace dionea::analysis::forkaudit
