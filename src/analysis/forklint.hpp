// ForkLint pillar 1: bytecode fork-safety dataflow.
//
// An interprocedural pass over the CFGs from cfg.hpp that computes a
// may-held-lock set at every point where the `fork` builtin is
// reachable, and inspects the closure handed to fork-with-block for
// child-side use of parent-only resources. Three hazards:
//
//   kForkUnderLock      fork() (directly, through a callee that may
//                       fork, or via synchronize(m, f) where f forks)
//                       while a MiniLang mutex may be held. The child
//                       inherits the locked mutex with no owner thread
//                       to ever unlock it — the bytecode-level twin of
//                       the pthread_atfork hazards the paper's prepare
//                       handlers exist to prevent.
//   kForkChildResource  the fork(f) child closure joins a thread
//                       handle spawned on the parent side, or pops a
//                       queue whose only pushers are parent-side
//                       spawned threads. Those threads do not exist in
//                       the child (only the forking thread survives),
//                       so the join/pop blocks forever — the Listing 5
//                       hazard, caught statically.
//   kForkInTraceHook    `fork` reachable from a debugger-eval'd
//                       expression (forklint_eval). Eval runs inside
//                       the VM trace callback; forking there forks
//                       mid-callback with debugger locks in
//                       unknown states.
//
// Like lint_program this is a pure function of the bytecode: nothing
// is executed. Analysis is conservative (may-held, reference-graph
// reachability); try_lock is not an acquire, and a lock released on
// every path before fork is clean.
#pragma once

#include "analysis/analysis.hpp"

namespace dionea::vm {
struct FunctionProto;
}

namespace dionea::analysis {

// Run the fork-safety dataflow over <main> and every reachable proto.
Report forklint_program(const vm::FunctionProto& main);

// Check a debugger-eval'd expression: is `fork` reachable from it,
// directly or through a function bound in the debuggee program
// (`program_main`, may be null)? Returns a report with one
// kForkInTraceHook finding when it is.
Report forklint_eval(const vm::FunctionProto& eval_proto,
                     const vm::FunctionProto* program_main);

}  // namespace dionea::analysis
