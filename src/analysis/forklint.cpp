#include "analysis/forklint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "support/strings.hpp"
#include "vm/bytecode.hpp"
#include "vm/value.hpp"

namespace dionea::analysis {

namespace {

using vm::Chunk;
using vm::FunctionProto;
using vm::Op;

struct Site {
  std::string file;
  int line = 0;
};

// Symbolic value for the abstract stack/locals. Mirrors the static
// lint's model with one addition: thread handles returned by spawn.
struct Sym {
  enum Kind { kTop, kBuiltin, kSync, kFunc, kThread };
  Kind kind = kTop;
  std::string name;  // builtin name / sync identity / thread binding
  int sync_kind = 0; // 1 mutex, 2 queue, 3 cond
  const FunctionProto* proto = nullptr;  // kFunc body / kThread spawned fn

  bool same(const Sym& other) const {
    return kind == other.kind && name == other.name &&
           sync_kind == other.sync_kind && proto == other.proto;
  }
};

Sym top_sym() { return Sym{}; }

int ctor_sync_kind(const std::string& name) {
  if (name == "mutex") return 1;
  if (name == "queue") return 2;
  if (name == "cond") return 3;
  return 0;
}

bool is_relevant_builtin(const std::string& name) {
  static const std::set<std::string> kNames = {
      "mutex", "queue",   "cond", "lock",  "unlock", "try_lock",
      "close", "push",    "pop",  "try_pop", "spawn", "join",
      "fork",  "waitpid", "synchronize"};
  return kNames.count(name) != 0;
}

struct AbsState {
  std::vector<Sym> stack;
  std::vector<Sym> locals;
  // May-held lock set: sync identity -> acquisition site.
  std::map<std::string, Site> held;
};

bool merge_sym(Sym* dst, const Sym& src) {
  if (dst->same(src)) return false;
  if (dst->kind == Sym::kTop) return false;
  *dst = top_sym();
  return true;
}

// Join `src` into `dst`; returns true when `dst` changed. held joins
// by union (may-held is the conservative direction for fork hazards,
// unlike the leak check's existing per-path model).
bool merge_into(AbsState* dst, const AbsState& src) {
  bool changed = false;
  if (dst->stack.size() != src.stack.size()) {
    std::size_t keep = std::min(dst->stack.size(), src.stack.size());
    if (dst->stack.size() != keep) changed = true;
    dst->stack.resize(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      changed |= merge_sym(&dst->stack[i], src.stack[i]);
    }
  } else {
    for (std::size_t i = 0; i < dst->stack.size(); ++i) {
      changed |= merge_sym(&dst->stack[i], src.stack[i]);
    }
  }
  for (std::size_t i = 0; i < dst->locals.size() && i < src.locals.size();
       ++i) {
    changed |= merge_sym(&dst->locals[i], src.locals[i]);
  }
  for (const auto& [id, site] : src.held) {
    changed |= dst->held.emplace(id, site).second;
  }
  return changed;
}

// Per-proto direct facts, transitively closed over the reference
// graph when findings are emitted.
struct Facts {
  std::map<std::string, Site> pushes;  // queue identity -> first site
  std::map<std::string, Site> pops;
  std::map<std::string, Site> joins;   // thread binding -> first site
};

struct Ctx {
  cfg::Program program;
  std::map<std::string, int> global_syncs;     // name -> sync kind
  std::map<std::string, const FunctionProto*> global_threads;
  // Thread binding -> protos whose code performed the spawn+assign.
  std::map<std::string, std::set<const FunctionProto*>> thread_spawn_sites;
  std::set<const FunctionProto*> spawned;      // protos handed to spawn
  std::set<const FunctionProto*> may_fork;     // transitive, via fixpoint
  std::map<const FunctionProto*, Facts> facts;

  struct ForkSite {
    const FunctionProto* in = nullptr;
    Site site;
    std::map<std::string, Site> held;
    const FunctionProto* child = nullptr;  // fork-with-block closure
  };
  // Keyed by "<proto>:<offset>" so fixpoint rounds do not duplicate.
  std::map<std::string, ForkSite> fork_sites;

  bool emit = false;  // reporting round: record findings
  std::map<std::string, Finding> findings;  // dedupe key -> finding

  void add_finding(FindingKind kind, const std::string& key,
                   const std::string& message, const std::string& object,
                   Site site, Site other = {}) {
    if (!emit) return;
    auto it = findings.find(key);
    if (it != findings.end()) return;
    Finding finding;
    finding.kind = kind;
    finding.message = message;
    finding.object = object;
    finding.file = site.file;
    finding.line = site.line;
    finding.file2 = other.file;
    finding.line2 = other.line;
    findings.emplace(key, std::move(finding));
  }
};

std::string proto_label(const FunctionProto& proto) {
  return proto.name.empty() ? "<lambda>" : proto.name;
}

std::string held_description(const std::map<std::string, Site>& held) {
  std::string out;
  for (const auto& [id, site] : held) {
    (void)site;
    if (!out.empty()) out += ", ";
    out += "'" + id + "'";
  }
  return out;
}

// Simulate one call. Returns true when a monotone summary grew.
bool apply_call(Ctx* ctx, const FunctionProto& proto, AbsState* state,
                int argc, Site site, std::size_t offset) {
  bool grew = false;
  std::size_t callee_index = state->stack.size() - static_cast<size_t>(argc) - 1;
  Sym callee = state->stack[callee_index];
  std::vector<Sym> args(
      state->stack.begin() + static_cast<long>(callee_index) + 1,
      state->stack.end());
  state->stack.resize(callee_index);

  Facts& my_facts = ctx->facts[&proto];
  Sym result = top_sym();

  auto note_fork_site = [&](const FunctionProto* child) {
    grew |= ctx->may_fork.insert(&proto).second;
    std::string key = strings::format("%p:%zu", static_cast<const void*>(&proto),
                                      offset);
    auto [it, inserted] = ctx->fork_sites.try_emplace(key);
    Ctx::ForkSite& fs = it->second;
    if (inserted) {
      fs.in = &proto;
      fs.site = site;
      grew = true;
    }
    if (child != nullptr && fs.child == nullptr) {
      fs.child = child;
      grew = true;
    }
    // The may-held set can grow across fixpoint rounds; union.
    for (const auto& [id, held_site] : state->held) {
      grew |= fs.held.emplace(id, held_site).second;
    }
  };

  if (callee.kind == Sym::kBuiltin) {
    const std::string& name = callee.name;
    int ctor = ctor_sync_kind(name);
    if (ctor != 0 && argc == 0) {
      result = Sym{Sym::kSync, "", ctor, nullptr};
    } else if (name == "lock" && argc == 1 && args[0].kind == Sym::kSync &&
               !args[0].name.empty()) {
      state->held.emplace(args[0].name, site);
    } else if (name == "unlock" && argc == 1 && args[0].kind == Sym::kSync) {
      state->held.erase(args[0].name);
    } else if (name == "synchronize" && argc == 2 &&
               args[1].kind == Sym::kFunc && args[1].proto != nullptr) {
      if (ctx->may_fork.count(args[1].proto)) {
        std::map<std::string, Site> held = state->held;
        if (args[0].kind == Sym::kSync && !args[0].name.empty()) {
          held.emplace(args[0].name, site);
        }
        ctx->add_finding(
            FindingKind::kForkUnderLock,
            strings::format("sync-fork:%s:%d", site.file.c_str(), site.line),
            strings::format(
                "synchronize() runs '%s', which may fork, while holding %s; "
                "the child inherits the lock with no thread to release it",
                proto_label(*args[1].proto).c_str(),
                held_description(held).c_str()),
            args[0].name, site);
        grew |= ctx->may_fork.insert(&proto).second;
      }
    } else if (name == "spawn" && argc >= 1 && args[0].kind == Sym::kFunc &&
               args[0].proto != nullptr) {
      grew |= ctx->spawned.insert(args[0].proto).second;
      result = Sym{Sym::kThread, "", 0, args[0].proto};
    } else if (name == "join" && argc == 1 && args[0].kind == Sym::kThread &&
               !args[0].name.empty()) {
      grew |= my_facts.joins.emplace(args[0].name, site).second;
    } else if (name == "push" && argc >= 1 && !args.empty() &&
               args[0].kind == Sym::kSync && args[0].sync_kind == 2 &&
               !args[0].name.empty()) {
      grew |= my_facts.pushes.emplace(args[0].name, site).second;
    } else if ((name == "pop" || name == "try_pop") && argc >= 1 &&
               !args.empty() && args[0].kind == Sym::kSync &&
               args[0].sync_kind == 2 && !args[0].name.empty()) {
      grew |= my_facts.pops.emplace(args[0].name, site).second;
    } else if (name == "fork") {
      const FunctionProto* child =
          (argc == 1 && args[0].kind == Sym::kFunc) ? args[0].proto : nullptr;
      note_fork_site(child);
      if (!state->held.empty()) {
        ctx->add_finding(
            FindingKind::kForkUnderLock,
            strings::format("fork-lock:%s:%d", site.file.c_str(), site.line),
            strings::format(
                "fork() while holding %s; the child inherits the locked "
                "mutex with no owner thread to ever release it",
                held_description(state->held).c_str()),
            state->held.begin()->first, site, state->held.begin()->second);
      }
    }
  } else if (callee.kind == Sym::kFunc && callee.proto != nullptr) {
    if (ctx->may_fork.count(callee.proto)) {
      grew |= ctx->may_fork.insert(&proto).second;
      if (!state->held.empty()) {
        ctx->add_finding(
            FindingKind::kForkUnderLock,
            strings::format("call-fork:%s:%d", site.file.c_str(), site.line),
            strings::format(
                "call of '%s', which may fork, while holding %s",
                proto_label(*callee.proto).c_str(),
                held_description(state->held).c_str()),
            state->held.begin()->first, site, state->held.begin()->second);
      }
    }
  }
  state->stack.push_back(result);
  return grew;
}

// One dataflow pass over a single proto's CFG. Returns true when a
// monotone summary grew (drives the interprocedural fixpoint).
bool simulate(Ctx* ctx, const FunctionProto& proto) {
  auto cfg_it = ctx->program.cfgs.find(&proto);
  if (cfg_it == ctx->program.cfgs.end() || cfg_it->second.empty()) return false;
  const cfg::Cfg& graph = cfg_it->second;
  const Chunk& chunk = proto.chunk;
  bool grew = false;

  std::vector<AbsState> in_states(graph.blocks.size());
  std::vector<bool> seen(graph.blocks.size(), false);
  AbsState entry;
  entry.locals.assign(proto.local_names.size(), top_sym());
  in_states[0] = std::move(entry);
  seen[0] = true;

  std::deque<std::size_t> worklist{0};
  std::set<std::size_t> queued{0};
  auto propagate = [&](std::size_t block_idx, const AbsState& state) {
    if (block_idx >= graph.blocks.size()) return;
    bool changed;
    if (!seen[block_idx]) {
      in_states[block_idx] = state;
      seen[block_idx] = true;
      changed = true;
    } else {
      changed = merge_into(&in_states[block_idx], state);
    }
    if (changed && queued.insert(block_idx).second) {
      worklist.push_back(block_idx);
    }
  };
  auto block_index_at = [&](std::size_t offset) -> std::size_t {
    auto it = graph.block_at.upper_bound(offset);
    if (it == graph.block_at.begin()) return graph.blocks.size();
    return std::prev(it)->second;
  };

  int guard = 0;
  while (!worklist.empty() && ++guard < 20000) {
    std::size_t block_idx = worklist.front();
    worklist.pop_front();
    queued.erase(block_idx);
    const cfg::Block& block = graph.blocks[block_idx];
    AbsState state = in_states[block_idx];

    std::size_t offset = block.begin;
    bool done = false;
    while (offset < block.end && !done) {
      cfg::Insn insn = cfg::decode(chunk, offset);
      if (!insn.ok) break;  // malformed tail: stop this block
      Site site{proto.file, chunk.line_at(offset)};
      std::size_t operand = offset + 1;

      auto pop_n = [&](std::size_t n) {
        state.stack.resize(state.stack.size() >= n ? state.stack.size() - n
                                                   : 0);
      };
      auto safe_const = [&](std::size_t index) -> const vm::Value* {
        return index < chunk.constants().size() ? &chunk.constants()[index]
                                                : nullptr;
      };

      switch (insn.op) {
        case Op::kConst:
        case Op::kNil:
        case Op::kTrue:
        case Op::kFalse:
          state.stack.push_back(top_sym());
          break;
        case Op::kPop:
          pop_n(1);
          break;
        case Op::kDup:
          state.stack.push_back(state.stack.empty() ? top_sym()
                                                    : state.stack.back());
          break;
        case Op::kGetLocal: {
          std::uint16_t slot = chunk.read_u16(operand);
          state.stack.push_back(slot < state.locals.size()
                                    ? state.locals[slot]
                                    : top_sym());
          break;
        }
        case Op::kSetLocal: {
          std::uint16_t slot = chunk.read_u16(operand);
          if (!state.stack.empty() && slot < state.locals.size()) {
            Sym value = state.stack.back();
            if ((value.kind == Sym::kSync || value.kind == Sym::kThread) &&
                value.name.empty() && slot < proto.local_names.size()) {
              value.name = strings::format(
                  "%s.%s", proto.name.empty() ? "<main>" : proto.name.c_str(),
                  proto.local_names[slot].c_str());
              state.stack.back() = value;
              if (value.kind == Sym::kThread) {
                ctx->global_threads.emplace(value.name, value.proto);
                ctx->thread_spawn_sites[value.name].insert(&proto);
              }
            }
            state.locals[slot] = value;
          }
          break;
        }
        case Op::kGetGlobal: {
          const vm::Value* name = safe_const(chunk.read_u16(operand));
          Sym sym = top_sym();
          if (name != nullptr && name->is_str()) {
            const std::string& text = name->as_str();
            auto sync_it = ctx->global_syncs.find(text);
            auto func_it = ctx->program.global_funcs.find(text);
            auto thread_it = ctx->global_threads.find(text);
            if (sync_it != ctx->global_syncs.end()) {
              sym = Sym{Sym::kSync, text, sync_it->second, nullptr};
            } else if (func_it != ctx->program.global_funcs.end()) {
              sym = Sym{Sym::kFunc, text, 0, func_it->second};
            } else if (thread_it != ctx->global_threads.end()) {
              sym = Sym{Sym::kThread, text, 0, thread_it->second};
            } else if (is_relevant_builtin(text)) {
              sym = Sym{Sym::kBuiltin, text, 0, nullptr};
            }
          }
          state.stack.push_back(sym);
          break;
        }
        case Op::kSetGlobal: {
          const vm::Value* name = safe_const(chunk.read_u16(operand));
          if (name != nullptr && name->is_str() && !state.stack.empty()) {
            Sym& value = state.stack.back();
            if (value.kind == Sym::kSync && value.name.empty()) {
              value.name = name->as_str();
              ctx->global_syncs.emplace(name->as_str(), value.sync_kind);
            } else if (value.kind == Sym::kThread) {
              if (value.name.empty()) value.name = name->as_str();
              ctx->global_threads.emplace(name->as_str(), value.proto);
              bool inserted = ctx->thread_spawn_sites[name->as_str()]
                                  .insert(&proto)
                                  .second;
              grew |= inserted;
            }
          }
          break;
        }
        case Op::kGetCapture:
          state.stack.push_back(top_sym());
          break;
        case Op::kSetCapture:
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kMod:
        case Op::kEq:
        case Op::kNe:
        case Op::kLt:
        case Op::kLe:
        case Op::kGt:
        case Op::kGe:
          pop_n(2);
          state.stack.push_back(top_sym());
          break;
        case Op::kNeg:
        case Op::kNot:
          pop_n(1);
          state.stack.push_back(top_sym());
          break;
        case Op::kJumpIfFalse:
          pop_n(1);
          break;
        case Op::kJump:
        case Op::kJumpIfFalsePeek:
        case Op::kJumpIfTruePeek:
        case Op::kLoop:
          break;
        case Op::kCall: {
          int argc = chunk.read_u8(operand);
          if (state.stack.size() >= static_cast<std::size_t>(argc) + 1) {
            grew |= apply_call(ctx, proto, &state, argc, site, offset);
          } else {
            state.stack.clear();
            state.stack.push_back(top_sym());
          }
          break;
        }
        case Op::kReturn:
        case Op::kHalt:
          done = true;
          break;
        case Op::kBuildList:
          pop_n(chunk.read_u16(operand));
          state.stack.push_back(top_sym());
          break;
        case Op::kBuildMap:
          pop_n(static_cast<std::size_t>(chunk.read_u16(operand)) * 2);
          state.stack.push_back(top_sym());
          break;
        case Op::kIndexGet:
          pop_n(2);
          state.stack.push_back(top_sym());
          break;
        case Op::kIndexSet:
          pop_n(3);
          state.stack.push_back(top_sym());
          break;
        case Op::kClosure: {
          const vm::Value* fn = safe_const(chunk.read_u16(operand));
          Sym sym = top_sym();
          if (fn != nullptr && fn->is_closure() && fn->as_closure()->proto) {
            sym = Sym{Sym::kFunc, "", 0, fn->as_closure()->proto.get()};
          }
          state.stack.push_back(sym);
          break;
        }
        case Op::kIterNew:
          pop_n(1);
          state.stack.push_back(top_sym());
          break;
        case Op::kIterNext:
          // Exit path gets the state as-is; the loop-body fall-through
          // gets the iteration value pushed. Handled below via the
          // per-edge propagation.
          break;
        case Op::kTraceLine:
        case Op::kTraceLineQ:
        case Op::kSetGlobalIC:
          break;
        case Op::kLocLocBin:
        case Op::kLocConstBin:
          state.stack.push_back(top_sym());
          break;
        case Op::kConstSetLocal: {
          std::uint16_t slot = chunk.read_u16(operand + 2);
          if (slot < state.locals.size()) state.locals[slot] = top_sym();
          break;
        }
        case Op::kGetGlobalIC:
          state.stack.push_back(top_sym());
          break;
      }

      if (done) break;
      if (insn.has_target) {
        // Control transfer: propagate per edge and end the block walk.
        std::size_t target_block = block_index_at(insn.target);
        if (insn.op == Op::kIterNext) {
          propagate(target_block, state);  // exhausted: unchanged stack
          AbsState body = state;
          body.stack.push_back(top_sym());
          if (insn.falls_through && insn.next < chunk.size()) {
            propagate(block_index_at(insn.next), body);
          }
        } else {
          propagate(target_block, state);
          if (insn.falls_through && insn.next < chunk.size()) {
            propagate(block_index_at(insn.next), state);
          }
        }
        done = true;
        break;
      }
      offset = insn.next;
    }

    if (!done && offset >= block.end && offset < chunk.size()) {
      // Fell off the end of the block into its successor.
      propagate(block_index_at(offset), state);
    }
  }
  return grew;
}

// Transitive closure of a fact selector over the reference graph.
template <typename Select>
std::map<std::string, Site> trans_facts(const Ctx& ctx,
                                        const FunctionProto* root,
                                        Select select) {
  std::map<std::string, Site> out;
  for (const FunctionProto* proto : cfg::reachable(ctx.program, root)) {
    auto it = ctx.facts.find(proto);
    if (it == ctx.facts.end()) continue;
    for (const auto& [name, site] : select(it->second)) {
      out.emplace(name, site);
    }
  }
  return out;
}

void check_child_resources(Ctx* ctx) {
  // Queues fed by spawned (parent-side) threads, transitively.
  std::map<std::string, const FunctionProto*> spawn_fed;
  for (const FunctionProto* s : ctx->spawned) {
    for (const auto& [queue, site] : trans_facts(
             *ctx, s, [](const Facts& f) -> const std::map<std::string, Site>& {
               return f.pushes;
             })) {
      (void)site;
      spawn_fed.emplace(queue, s);
    }
  }

  for (const auto& [key, fs] : ctx->fork_sites) {
    (void)key;
    if (fs.child == nullptr) continue;
    std::set<const FunctionProto*> child_protos =
        cfg::reachable(ctx->program, fs.child);

    auto child_pops = trans_facts(
        *ctx, fs.child,
        [](const Facts& f) -> const std::map<std::string, Site>& {
          return f.pops;
        });
    auto child_pushes = trans_facts(
        *ctx, fs.child,
        [](const Facts& f) -> const std::map<std::string, Site>& {
          return f.pushes;
        });
    for (const auto& [queue, site] : child_pops) {
      auto fed = spawn_fed.find(queue);
      if (fed == spawn_fed.end()) continue;
      if (child_protos.count(fed->second)) continue;  // child respawns feeder
      if (child_pushes.count(queue)) continue;        // child feeds it too
      ctx->add_finding(
          FindingKind::kForkChildResource,
          strings::format("child-pop:%s:%s:%d", queue.c_str(),
                          site.file.c_str(), site.line),
          strings::format(
              "fork child pops queue '%s', which is fed only by parent-side "
              "threads; those threads do not exist in the child, so the pop "
              "blocks forever",
              queue.c_str()),
          queue, site, fs.site);
    }

    auto child_joins = trans_facts(
        *ctx, fs.child,
        [](const Facts& f) -> const std::map<std::string, Site>& {
          return f.joins;
        });
    for (const auto& [thread, site] : child_joins) {
      auto sites_it = ctx->thread_spawn_sites.find(thread);
      if (sites_it == ctx->thread_spawn_sites.end()) continue;
      bool spawned_in_child = false;
      for (const FunctionProto* spawner : sites_it->second) {
        if (child_protos.count(spawner)) spawned_in_child = true;
      }
      if (spawned_in_child) continue;
      ctx->add_finding(
          FindingKind::kForkChildResource,
          strings::format("child-join:%s:%s:%d", thread.c_str(),
                          site.file.c_str(), site.line),
          strings::format(
              "fork child joins thread '%s', which was spawned on the parent "
              "side; only the forking thread survives fork, so the join "
              "blocks forever",
              thread.c_str()),
          thread, site, fs.site);
    }
  }
}

}  // namespace

Report forklint_program(const FunctionProto& main) {
  Ctx ctx;
  ctx.program = cfg::build_program(main);

  // Interprocedural fixpoint: summaries (may_fork, spawn sites, queue
  // facts) are monotone, so the round count is bounded by call-graph
  // depth; the cap is belt-and-braces for hostile bytecode.
  for (int round = 0; round < 32; ++round) {
    bool grew = false;
    for (const FunctionProto* proto : ctx.program.protos) {
      grew |= simulate(&ctx, *proto);
    }
    if (!grew) break;
  }

  // Reporting round: summaries are stable, so held-set context and
  // may-fork callees are final.
  ctx.emit = true;
  for (const FunctionProto* proto : ctx.program.protos) {
    simulate(&ctx, *proto);
  }
  check_child_resources(&ctx);

  Report report;
  for (auto& [key, finding] : ctx.findings) {
    (void)key;
    report.findings.push_back(std::move(finding));
  }
  report.dedupe();
  return report;
}

Report forklint_eval(const FunctionProto& eval_proto,
                     const FunctionProto* program_main) {
  Report report;
  cfg::Program eval_program = cfg::build_program(eval_proto);
  bool forks = cfg::references_name(eval_program, &eval_proto, "fork");
  if (!forks && program_main != nullptr) {
    // The expression may call functions bound in the debuggee program;
    // chase those bindings through the program's reference graph.
    cfg::Program main_program = cfg::build_program(*program_main);
    for (const FunctionProto* proto :
         cfg::reachable(eval_program, &eval_proto)) {
      auto named = eval_program.named_refs.find(proto);
      if (named == eval_program.named_refs.end()) continue;
      for (const std::string& name : named->second) {
        auto bound = main_program.global_funcs.find(name);
        if (bound == main_program.global_funcs.end()) continue;
        if (cfg::references_name(main_program, bound->second, "fork")) {
          forks = true;
          break;
        }
      }
      if (forks) break;
    }
  }
  if (forks) {
    Finding finding;
    finding.kind = FindingKind::kForkInTraceHook;
    finding.message =
        "fork is reachable from a debugger-eval'd expression; eval runs "
        "inside the VM trace hook, so the fork happens mid-callback with "
        "debugger locks in unknown states";
    finding.file = eval_proto.file;
    finding.line = eval_proto.line;
    finding.object = "eval";
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace dionea::analysis
